"""Wall-clock profiling of a running simulation via the probe bus.

:class:`WallClockProfiler` subscribes to process activate/suspend and
delta begin/end probes and attributes host CPU time (``perf_counter``)
to individual processes and to points in simulated time. The result
ranks hot processes (where does the Python interpreter actually spend
its time?) and delta-cycle hotspots (which simulated instants burn the
most deltas?), and can export the activation timeline as a Chrome
``chrome://tracing`` / Perfetto JSON trace.
"""

from __future__ import annotations

import json
import time as _time
import typing

from .probes import (
    DELTA_BEGIN,
    DELTA_END,
    PROCESS_ACTIVATE,
    PROCESS_SUSPEND,
    ProbeBus,
)

#: Default Chrome-trace events kept before slices get dropped; every
#: exporter takes a ``max_trace_events`` override (no silent caps —
#: truncation is always reported in the document metadata and the
#: rendered report).
MAX_TRACE_EVENTS = 100_000


def chrome_trace_document(
    trace_events: list[dict],
    dropped_events: int = 0,
    max_trace_events: int | None = None,
) -> dict:
    """Wrap raw trace-event slices in a Chrome trace-event document.

    The ``otherData`` block always states whether (and how hard) the
    exporter truncated: ``dropped_events``, the configured cap, and an
    explicit ``truncated`` flag tools can alert on.
    """
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_events": dropped_events,
            "max_trace_events": max_trace_events,
            "truncated": dropped_events > 0,
        },
    }


def write_chrome_trace(
    path: str,
    trace_events: list[dict],
    dropped_events: int = 0,
    max_trace_events: int | None = None,
) -> None:
    """Write *trace_events* to *path* as Chrome trace-event JSON.

    Shared by the profiler, the span tracer and the flight-recorder
    replay so every exporter emits the same document shape. When the
    caller enforces a cap, events beyond it are dropped *here* (not
    silently upstream) and counted in the document metadata.
    """
    if max_trace_events is not None and len(trace_events) > max_trace_events:
        dropped_events += len(trace_events) - max_trace_events
        trace_events = trace_events[:max_trace_events]
    with open(path, "w") as handle:
        json.dump(
            chrome_trace_document(
                trace_events, dropped_events, max_trace_events
            ),
            handle,
        )


class ProcessProfile:
    """Accumulated wall-clock cost of one kernel process."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.activations = 0
        self.wall_seconds = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.wall_seconds / self.activations if self.activations else 0.0

    def to_dict(self) -> dict:
        return {
            "process": self.name,
            "activations": self.activations,
            "wall_seconds": self.wall_seconds,
            "mean_seconds": self.mean_seconds,
        }


class DeltaHotspot:
    """Delta-cycle activity at one simulated instant."""

    def __init__(self, sim_time: int) -> None:
        self.sim_time = sim_time
        self.deltas = 0
        self.wall_seconds = 0.0

    def to_dict(self) -> dict:
        return {
            "sim_time": self.sim_time,
            "deltas": self.deltas,
            "wall_seconds": self.wall_seconds,
        }


class ProfileReport:
    """Immutable snapshot of a profiling run, with renderers."""

    def __init__(
        self,
        processes: list[ProcessProfile],
        hotspots: list[DeltaHotspot],
        total_seconds: float,
        total_deltas: int,
        trace_events: list[dict],
        dropped_events: int,
        max_trace_events: int = MAX_TRACE_EVENTS,
    ) -> None:
        self.processes = processes
        self.hotspots = hotspots
        self.total_seconds = total_seconds
        self.total_deltas = total_deltas
        self.trace_events = trace_events
        self.dropped_events = dropped_events
        self.max_trace_events = max_trace_events

    def hot_processes(self, top_n: int = 10) -> list[ProcessProfile]:
        return sorted(
            self.processes,
            key=lambda p: (-p.wall_seconds, p.name),
        )[:top_n]

    def delta_hotspots(self, top_n: int = 10) -> list[DeltaHotspot]:
        return sorted(
            self.hotspots,
            key=lambda h: (-h.deltas, h.sim_time),
        )[:top_n]

    def render(self, top_n: int = 10) -> str:
        lines = [
            f"profile: {self.total_deltas} deltas, "
            f"{self.total_seconds:.3f}s wall in processes",
            "",
            "hot processes",
            f"  {'process':<32} {'activations':>11} "
            f"{'wall (s)':>9} {'mean (us)':>10} {'share':>6}",
        ]
        for profile in self.hot_processes(top_n):
            share = (
                profile.wall_seconds / self.total_seconds
                if self.total_seconds
                else 0.0
            )
            lines.append(
                f"  {profile.name:<32} {profile.activations:>11} "
                f"{profile.wall_seconds:>9.4f} "
                f"{profile.mean_seconds * 1e6:>10.1f} {share:>6.1%}"
            )
        hotspots = self.delta_hotspots(top_n)
        if hotspots:
            lines += [
                "",
                "delta-cycle hotspots",
                f"  {'sim time (fs)':>16} {'deltas':>7} {'wall (s)':>9}",
            ]
            for hotspot in hotspots:
                lines.append(
                    f"  {hotspot.sim_time:>16} {hotspot.deltas:>7} "
                    f"{hotspot.wall_seconds:>9.4f}"
                )
        if self.dropped_events:
            lines += [
                "",
                f"chrome trace truncated: {self.dropped_events} "
                "slices dropped after the first "
                f"{self.max_trace_events} "
                "(raise with --max-trace-events / "
                "WallClockProfiler(max_trace_events=...))",
            ]
        return "\n".join(lines)

    def to_dict(self, top_n: int = 50) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "total_deltas": self.total_deltas,
            "processes": [p.to_dict() for p in self.hot_processes(top_n)],
            "delta_hotspots": [h.to_dict() for h in self.delta_hotspots(top_n)],
            "dropped_trace_events": self.dropped_events,
            "max_trace_events": self.max_trace_events,
        }

    def chrome_trace(self) -> dict:
        """The activation timeline in Chrome trace-event format."""
        return chrome_trace_document(
            self.trace_events, self.dropped_events, self.max_trace_events
        )

    def write_chrome_trace(self, path: str) -> None:
        write_chrome_trace(
            path,
            self.trace_events,
            self.dropped_events,
            self.max_trace_events,
        )


class WallClockProfiler:
    """Probe-bus subscriber that times process activations.

    Attach before (or during) a run, detach or just stop the run, then
    call :meth:`report`. Nesting is not expected — the kernel runs one
    process at a time — but a stale open activation (e.g. the profiler
    attached mid-activation) is simply ignored.
    """

    def __init__(
        self,
        clock: typing.Callable[[], float] | None = None,
        max_trace_events: "int | None" = None,
    ) -> None:
        # None = the module default, resolved at construction time so
        # tests (and embedders) can retune MAX_TRACE_EVENTS globally.
        if max_trace_events is None:
            max_trace_events = MAX_TRACE_EVENTS
        if max_trace_events <= 0:
            raise ValueError(
                f"max_trace_events must be positive, got {max_trace_events}"
            )
        self._clock = clock or _time.perf_counter
        self.max_trace_events = max_trace_events
        self._origin = self._clock()
        self._processes: dict[str, ProcessProfile] = {}
        self._hotspots: dict[int, DeltaHotspot] = {}
        self._trace_events: list[dict] = []
        self._dropped = 0
        self._active: tuple[str, float] | None = None
        self._delta_started: float | None = None
        self._delta_time: int | None = None
        self._total_seconds = 0.0
        self._total_deltas = 0
        self._bus: ProbeBus | None = None

    # -- wiring ------------------------------------------------------------

    def attach(self, bus: ProbeBus) -> "WallClockProfiler":
        bus.subscribe(PROCESS_ACTIVATE, self._on_activate)
        bus.subscribe(PROCESS_SUSPEND, self._on_suspend)
        bus.subscribe(DELTA_BEGIN, self._on_delta_begin)
        bus.subscribe(DELTA_END, self._on_delta_end)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        self._bus.unsubscribe(PROCESS_ACTIVATE, self._on_activate)
        self._bus.unsubscribe(PROCESS_SUSPEND, self._on_suspend)
        self._bus.unsubscribe(DELTA_BEGIN, self._on_delta_begin)
        self._bus.unsubscribe(DELTA_END, self._on_delta_end)
        self._bus = None

    # -- handlers ------------------------------------------------------------

    def _on_activate(
        self, sim_time: int, process: object, cause: object = None
    ) -> None:
        name = getattr(process, "name", repr(process))
        self._active = (name, self._clock())

    def _on_suspend(self, sim_time: int, process: object) -> None:
        if self._active is None:
            return
        name, started = self._active
        self._active = None
        now = self._clock()
        elapsed = now - started
        profile = self._processes.get(name)
        if profile is None:
            profile = self._processes[name] = ProcessProfile(name)
        profile.activations += 1
        profile.wall_seconds += elapsed
        self._total_seconds += elapsed
        if self._delta_time is not None:
            hotspot = self._hotspots.get(self._delta_time)
            if hotspot is not None:
                hotspot.wall_seconds += elapsed
        if len(self._trace_events) < self.max_trace_events:
            self._trace_events.append(
                {
                    "name": name,
                    "cat": "process",
                    "ph": "X",
                    "ts": (started - self._origin) * 1e6,
                    "dur": elapsed * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": {"sim_time_fs": sim_time},
                }
            )
        else:
            self._dropped += 1

    def _on_delta_begin(self, sim_time: int, delta_index: int) -> None:
        self._delta_time = sim_time
        self._delta_started = self._clock()
        self._total_deltas += 1
        hotspot = self._hotspots.get(sim_time)
        if hotspot is None:
            hotspot = self._hotspots[sim_time] = DeltaHotspot(sim_time)
        hotspot.deltas += 1

    def _on_delta_end(self, sim_time: int, delta_index: int) -> None:
        self._delta_started = None
        self._delta_time = None

    # -- reporting ------------------------------------------------------------

    def report(self) -> ProfileReport:
        return ProfileReport(
            processes=list(self._processes.values()),
            hotspots=list(self._hotspots.values()),
            total_seconds=self._total_seconds,
            total_deltas=self._total_deltas,
            trace_events=list(self._trace_events),
            dropped_events=self._dropped,
            max_trace_events=self.max_trace_events,
        )
