"""Metrics aggregation over the probe bus.

:class:`MetricsCollector` subscribes to every quantitative probe kind
and maintains counters and time histograms per process, per signal, per
channel method and per transaction source — the raw material for the
``python -m repro profile`` tables and for regression assertions in
tests and benchmarks.

:class:`Histogram` keeps power-of-two buckets, so adding a sample is two
integer ops and histograms over femtosecond quantities never allocate
per-sample storage. Quantile queries delegate to the shared kernel in
:mod:`repro.telemetry.digest`, so a p95 printed by the profiler tables
and a p95 on a communication scorecard always mean the same thing.
"""

from __future__ import annotations

import typing

from ..telemetry.digest import quantile_from_pow2_buckets
from .probes import (
    DELTA_BEGIN,
    DETECTION,
    EVENT_NOTIFY,
    FAULT_ACTIVATE,
    FLOW_STAGE,
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    METHOD_GUARD_BLOCK,
    METHOD_QUEUE,
    PROCESS_ACTIVATE,
    SIGNAL_COMMIT,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
)


class Counter:
    """A labelled integer counter map (label -> count)."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.total = 0

    def add(self, label: str, amount: int = 1) -> None:
        self.counts[label] = self.counts.get(label, 0) + amount
        self.total += amount

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        return sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def __getitem__(self, label: str) -> int:
        return self.counts.get(label, 0)

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:
        return f"Counter(total={self.total}, labels={len(self.counts)})"


class Histogram:
    """Power-of-two bucketed histogram of non-negative integer samples.

    Bucket *i* holds samples whose bit length is *i* (i.e. values in
    ``[2**(i-1), 2**i)``; bucket 0 holds zeros). Exact count/total/
    min/max are tracked alongside, so means are exact and quantiles are
    bucket-resolution approximations.
    """

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self._buckets: dict[int, int] = {}

    def add(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length()
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Approximate *q*-quantile (upper bound of the matching bucket)."""
        return quantile_from_pow2_buckets(
            self._buckets, self.count, self.max, q
        )

    def buckets(self) -> list[tuple[int, int]]:
        """``(upper_bound, count)`` pairs in ascending bucket order."""
        return [
            ((1 << bucket) - 1 if bucket else 0, count)
            for bucket, count in sorted(self._buckets.items())
        ]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram(n={self.count}, mean={self.mean:.1f}, "
            f"max={self.max})"
        )


class MethodMetrics:
    """Per guarded-method traffic record (one channel + method name)."""

    def __init__(self, channel: str, method: str) -> None:
        self.channel = channel
        self.method = method
        self.calls = 0
        self.queued = 0
        self.grants = 0
        self.completions = 0
        #: Arrival -> grant femtoseconds.
        self.wait_times = Histogram()
        #: Grant -> completion femtoseconds.
        self.service_times = Histogram()
        #: Arrival -> completion femtoseconds.
        self.total_times = Histogram()

    @property
    def key(self) -> str:
        return f"{self.channel}.{self.method}"

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "method": self.method,
            "calls": self.calls,
            "queued": self.queued,
            "grants": self.grants,
            "completions": self.completions,
            "wait": self.wait_times.to_dict(),
            "service": self.service_times.to_dict(),
            "total": self.total_times.to_dict(),
        }


class DetectionLog:
    """Bus subscriber that collects detection records in firing order.

    The fault-injection classifier attaches one of these to a run's
    probe bus and reads :attr:`records` afterwards — detections travel
    over the same instrumentation plane as every other observation.
    """

    def __init__(self) -> None:
        self.records: list = []
        self._bus: ProbeBus | None = None

    def append(self, record: object) -> None:
        self.records.append(record)

    def attach(self, bus: ProbeBus) -> "DetectionLog":
        bus.subscribe(DETECTION, self.append)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(DETECTION, self.append)
            self._bus = None

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> typing.Iterator:
        return iter(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)


class MetricsCollector:
    """Counters + histograms for everything the probe bus publishes."""

    def __init__(self) -> None:
        self.deltas = 0
        self.events_notified = 0
        self.process_activations = Counter()
        self.signal_commits = Counter()
        self.method_metrics: dict[str, MethodMetrics] = {}
        self.guard_blocks = Counter()
        self.transactions = Counter()
        #: Transaction durations (fs) per source path.
        self.transaction_times: dict[str, Histogram] = {}
        self.fault_activations = Counter()
        self.detections = 0
        self.flow_stages: list[tuple[str, str, float]] = []
        self._open_transactions: dict[tuple[str, object], int] = {}
        self._bus: ProbeBus | None = None

    # -- wiring ------------------------------------------------------------

    _SUBSCRIPTIONS = (
        (DELTA_BEGIN, "_on_delta_begin"),
        (EVENT_NOTIFY, "_on_event_notify"),
        (PROCESS_ACTIVATE, "_on_process_activate"),
        (SIGNAL_COMMIT, "_on_signal_commit"),
        (METHOD_CALL, "_on_method_call"),
        (METHOD_QUEUE, "_on_method_queue"),
        (METHOD_GRANT, "_on_method_grant"),
        (METHOD_GUARD_BLOCK, "_on_guard_block"),
        (METHOD_COMPLETE, "_on_method_complete"),
        (TRANSACTION_BEGIN, "_on_transaction_begin"),
        (TRANSACTION_END, "_on_transaction_end"),
        (FAULT_ACTIVATE, "_on_fault_activate"),
        (DETECTION, "_on_detection"),
        (FLOW_STAGE, "_on_flow_stage"),
    )

    def attach(self, bus: ProbeBus) -> "MetricsCollector":
        for kind, handler in self._SUBSCRIPTIONS:
            bus.subscribe(kind, getattr(self, handler))
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind, handler in self._SUBSCRIPTIONS:
            self._bus.unsubscribe(kind, getattr(self, handler))
        self._bus = None

    # -- handlers ------------------------------------------------------------

    def _on_delta_begin(self, time: int, delta_index: int) -> None:
        self.deltas += 1

    def _on_event_notify(
        self, time: int, event: object, cause: object = None
    ) -> None:
        self.events_notified += 1

    def _on_process_activate(
        self, time: int, process: object, cause: object = None
    ) -> None:
        self.process_activations.add(getattr(process, "name", repr(process)))

    def _on_signal_commit(self, time: int, signal: object, value: object) -> None:
        self.signal_commits.add(getattr(signal, "name", repr(signal)))

    def _method(self, space: object, method: str) -> MethodMetrics:
        channel = getattr(space, "name", repr(space))
        key = f"{channel}.{method}"
        record = self.method_metrics.get(key)
        if record is None:
            record = self.method_metrics[key] = MethodMetrics(channel, method)
        return record

    def _on_method_call(self, time: int, space: object, request: object) -> None:
        self._method(space, request.method).calls += 1

    def _on_method_queue(self, time: int, space: object, request: object) -> None:
        self._method(space, request.method).queued += 1

    def _on_method_grant(self, time: int, space: object, request: object) -> None:
        record = self._method(space, request.method)
        record.grants += 1
        grant_time = getattr(request, "grant_time", None)
        arrival = getattr(request, "arrival_time", None)
        if grant_time is not None and arrival is not None:
            record.wait_times.add(grant_time - arrival)

    def _on_guard_block(self, time: int, space: object, requests: object) -> None:
        self.guard_blocks.add(getattr(space, "name", repr(space)))

    def _on_method_complete(self, time: int, space: object, request: object) -> None:
        record = self._method(space, request.method)
        record.completions += 1
        arrival = getattr(request, "arrival_time", None)
        grant = getattr(request, "grant_time", None)
        complete = getattr(request, "complete_time", None)
        if complete is None:
            complete = time
        if grant is not None:
            record.service_times.add(complete - grant)
        if arrival is not None:
            record.total_times.add(complete - arrival)

    @staticmethod
    def _txn_key(source: str, payload: object) -> tuple[str, object]:
        # Prefer the stable txn_id stamped on transaction payloads; fall
        # back to object identity for payloads that predate it.
        txn_id = getattr(payload, "txn_id", None)
        return (source, txn_id if txn_id is not None else id(payload))

    def _on_transaction_begin(self, time: int, source: str, payload: object) -> None:
        self._open_transactions[self._txn_key(source, payload)] = time

    def _on_transaction_end(self, time: int, source: str, payload: object) -> None:
        self.transactions.add(source)
        begin = self._open_transactions.pop(self._txn_key(source, payload), None)
        if begin is not None:
            histogram = self.transaction_times.get(source)
            if histogram is None:
                histogram = self.transaction_times[source] = Histogram()
            histogram.add(time - begin)

    def _on_fault_activate(self, time: int, fault: object) -> None:
        self.fault_activations.add(getattr(fault, "kind", repr(fault)))

    def _on_detection(self, record: object) -> None:
        self.detections += 1

    def _on_flow_stage(self, name: str, status: str, wall_seconds: float) -> None:
        self.flow_stages.append((name, status, wall_seconds))

    # -- reporting ------------------------------------------------------------

    def method_rows(self) -> list[MethodMetrics]:
        """Method records sorted by call count (descending)."""
        return sorted(
            self.method_metrics.values(),
            key=lambda record: (-record.calls, record.key),
        )

    def to_dict(self) -> dict:
        return {
            "deltas": self.deltas,
            "events_notified": self.events_notified,
            "process_activations": dict(self.process_activations.counts),
            "signal_commits": dict(self.signal_commits.counts),
            "methods": [record.to_dict() for record in self.method_rows()],
            "guard_blocks": dict(self.guard_blocks.counts),
            "transactions": dict(self.transactions.counts),
            "transaction_times": {
                source: histogram.to_dict()
                for source, histogram in sorted(self.transaction_times.items())
            },
            "fault_activations": dict(self.fault_activations.counts),
            "detections": self.detections,
            "flow_stages": [
                {"name": name, "status": status, "seconds": seconds}
                for name, status, seconds in self.flow_stages
            ],
        }
