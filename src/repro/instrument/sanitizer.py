"""Dynamic race sanitizer: delta-race detection over ``signal.commit``.

The static ``RACE001`` rule reports shared state that *could* be
written by several parties without arbiter serialization. This
subscriber watches the probe bus for the dynamic symptom: one signal
committing two or more *different* values at the same simulation
timestamp (successive delta cycles of one instant). Within a single
delta the kernel's staged write is last-wins — only one commit happens
— so same-timestamp multi-valued commits are exactly the observable
trace of unserialized writers interleaving through the delta loop.

Attach a :class:`RaceSanitizer` to a bus before running, then hand it
the static findings to split them into *confirmed* (the raced signal
really did multi-commit) and *unobserved* (this workload never hit the
window — the report stays a static claim). When no sanitizer is
attached the kernel's hot path pays the usual single ``None`` check;
the sanitizer is strictly opt-in.
"""

from __future__ import annotations

import typing

from .probes import SIGNAL_COMMIT, ProbeBus

#: Per-signal cap on recorded race observations (memory bound).
_MAX_OBSERVATIONS = 16


class RaceObservation:
    """One same-timestamp multi-valued commit sequence on a signal."""

    __slots__ = ("signal_name", "time", "values")

    def __init__(
        self, signal_name: str, time: int, values: typing.Sequence[object]
    ) -> None:
        self.signal_name = signal_name
        self.time = time
        #: Every value committed at this timestamp, in commit order.
        self.values = list(values)

    def __repr__(self) -> str:
        return (
            f"RaceObservation({self.signal_name}@{self.time}: "
            f"{self.values})"
        )


class RaceSanitizer:
    """Probe-bus subscriber detecting same-timestamp delta races.

    :param watch: signal names to track (e.g. from static ``RACE001``
        findings). ``None`` watches every committing signal.
    """

    def __init__(self, watch: typing.Iterable[str] | None = None) -> None:
        self.watch: set[str] | None = None if watch is None else set(watch)
        #: signal name -> recorded observations (bounded).
        self.observations: dict[str, list[RaceObservation]] = {}
        #: signal name -> total same-timestamp conflict count (unbounded
        #: tally, even past the per-signal observation cap).
        self.conflicts: dict[str, int] = {}
        self._last: dict[int, tuple[object, int, list[object]]] = {}
        self._bus: ProbeBus | None = None

    # -- wiring --------------------------------------------------------------

    def attach(self, bus: ProbeBus) -> "RaceSanitizer":
        bus.subscribe(SIGNAL_COMMIT, self._on_commit)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(SIGNAL_COMMIT, self._on_commit)
            self._bus = None

    # -- probe callback ------------------------------------------------------

    def _on_commit(self, time: int, signal: object, value: object) -> None:
        name = getattr(signal, "name", str(signal))
        if self.watch is not None and name not in self.watch:
            return
        key = id(signal)
        entry = self._last.get(key)
        if entry is None or entry[1] != time:
            self._last[key] = (signal, time, [value])
            return
        values = entry[2]
        values.append(value)
        if len(set(map(repr, values))) < 2:
            return  # re-commit of the same value: benign
        self.conflicts[name] = self.conflicts.get(name, 0) + 1
        recorded = self.observations.setdefault(name, [])
        if recorded and recorded[-1].time == time:
            recorded[-1].values = list(values)  # grow the open window
        elif len(recorded) < _MAX_OBSERVATIONS:
            recorded.append(RaceObservation(name, time, values))

    # -- queries -------------------------------------------------------------

    @property
    def racy_signals(self) -> set[str]:
        return set(self.conflicts)

    def observed(self, signal_name: str) -> bool:
        return signal_name in self.conflicts

    def verdicts(
        self, findings: typing.Iterable[object]
    ) -> list[tuple[object, str]]:
        """Pair each static finding with ``"confirmed"``/``"unobserved"``.

        *findings* are :class:`~repro.lint.diagnostics.Diagnostic`-like
        objects; a finding names its signal via ``extra["signal"]``.
        Findings without a signal cannot be dynamically checked and are
        paired with ``"unobserved"``.
        """
        results: list[tuple[object, str]] = []
        for finding in findings:
            extra = getattr(finding, "extra", None) or {}
            name = extra.get("signal")
            verdict = (
                "confirmed"
                if name is not None and self.observed(name)
                else "unobserved"
            )
            results.append((finding, verdict))
        return results

    def summary_line(self) -> str:
        if not self.conflicts:
            return "race sanitizer: no same-timestamp conflicts observed"
        total = sum(self.conflicts.values())
        return (
            f"race sanitizer: {total} same-timestamp conflict(s) on "
            f"{len(self.conflicts)} signal(s): "
            + ", ".join(sorted(self.conflicts))
        )
