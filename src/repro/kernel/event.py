"""Simulation events.

An :class:`Event` is the primitive synchronisation object of the kernel,
with the three SystemC notification flavours:

* ``notify()`` — *immediate*: waiting processes become runnable in the
  current evaluation phase;
* ``notify_delta()`` — wake waiters at the next delta cycle;
* ``notify_after(delay)`` — wake waiters *delay* femtoseconds from now.

Processes wait on events either dynamically (a thread yields the event)
or statically (a method process lists it in its sensitivity).
"""

from __future__ import annotations

import typing

from ..errors import SimulationError
from .simtime import check_delay

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process
    from .scheduler import Scheduler


class Event:
    """A notifiable synchronisation point.

    :param scheduler: the kernel this event belongs to.
    :param name: optional label used in traces and error messages.
    """

    def __init__(self, scheduler: "Scheduler", name: str = "") -> None:
        self._scheduler = scheduler
        self.name = name
        self._dynamic_waiters: list["Process"] = []
        self._static_waiters: list["Process"] = []
        self._callbacks: list[typing.Callable[[], None]] = []
        self._pending_timed: bool = False
        #: Set while queued for the next delta (O(1) dedup in
        #: Scheduler._schedule_delta_event).
        self._delta_pending: bool = False
        #: Causal edge for the probe bus: the Process that requested the
        #: pending notification. Recorded only while a bus is attached
        #: (probes-off runs never touch it) and consumed by _trigger.
        self._notify_cause: "Process | None" = None

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"Event({label})"

    # -- registration -----------------------------------------------------

    def _add_dynamic(self, process: "Process") -> None:
        self._dynamic_waiters.append(process)

    def _remove_dynamic(self, process: "Process") -> None:
        try:
            self._dynamic_waiters.remove(process)
        except ValueError:
            pass

    def add_static(self, process: "Process") -> None:
        """Register *process* for static sensitivity on this event."""
        if process not in self._static_waiters:
            self._static_waiters.append(process)

    def add_callback(self, callback: typing.Callable[[], None]) -> None:
        """Run *callback* once, at the next trigger of this event.

        Callbacks fire during the triggering phase (no process context);
        they must not wait — intended for lightweight plumbing such as
        delayed signal writes.
        """
        self._callbacks.append(callback)

    # -- notification -----------------------------------------------------

    def notify(self) -> None:
        """Immediately wake all waiting processes (same evaluation phase)."""
        if self._scheduler._probes is not None:
            self._notify_cause = self._scheduler.current_process
        self._trigger()

    def notify_delta(self) -> None:
        """Schedule a wake-up of all waiting processes at the next delta."""
        if self._scheduler._probes is not None:
            self._notify_cause = self._scheduler.current_process
        self._scheduler._schedule_delta_event(self)

    def notify_after(self, delay: int) -> None:
        """Schedule a wake-up *delay* femtoseconds in the future."""
        check_delay(delay)
        if delay == 0:
            self.notify_delta()
        else:
            if self._scheduler._probes is not None:
                self._notify_cause = self._scheduler.current_process
            self._scheduler._schedule_timed_event(self, delay)

    def _trigger(self) -> None:
        """Make every waiter runnable; called by the scheduler or notify()."""
        probes = self._scheduler._probes
        if probes is not None:
            cause, self._notify_cause = self._notify_cause, None
            probes.event_notify(self._scheduler._time, self, cause)
        waiters, self._dynamic_waiters = self._dynamic_waiters, []
        for process in waiters:
            process._wake(self)
        for process in self._static_waiters:
            process._wake_static(self)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()


class EventList:
    """Base for composite waits on several events (``AnyOf`` / ``AllOf``)."""

    def __init__(self, *events: Event) -> None:
        if not events:
            raise SimulationError("composite wait needs at least one event")
        for event in events:
            if not isinstance(event, Event):
                raise SimulationError(f"expected Event, got {event!r}")
        self.events: tuple[Event, ...] = tuple(events)


class AnyOf(EventList):
    """Wait until *any one* of the given events is notified."""


class AllOf(EventList):
    """Wait until *all* of the given events have been notified."""
