"""Simulation processes.

Two SystemC-like process kinds are supported:

* **thread** — a Python generator that ``yield``\\ s wait specifications
  (:class:`Timeout`, an :class:`~repro.kernel.event.Event`, ``AnyOf``,
  ``AllOf``). The kernel resumes it when the wait completes. Threads
  compose naturally: helper coroutines are invoked with ``yield from``,
  which is how blocking guarded-method calls are built.
* **method** — a plain callable re-invoked from the top whenever an event
  in its static sensitivity triggers. Methods cannot wait.
"""

from __future__ import annotations

import typing
from collections.abc import Generator

from ..errors import SimulationError
from .event import AllOf, AnyOf, Event
from .simtime import check_delay

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import Scheduler


class Timeout:
    """Wait specification: suspend for a fixed number of femtoseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: int) -> None:
        self.delay = check_delay(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


#: What a thread may yield to the kernel.
WaitSpec = typing.Union[Timeout, Event, AnyOf, AllOf]

#: Type alias for the generator a thread function must return.
ThreadGenerator = Generator[WaitSpec, object, object]


class Process:
    """Kernel bookkeeping for one thread or method process."""

    THREAD = "thread"
    METHOD = "method"

    def __init__(
        self,
        scheduler: "Scheduler",
        name: str,
        func: typing.Callable[[], object],
        kind: str = THREAD,
    ) -> None:
        if kind not in (self.THREAD, self.METHOD):
            raise SimulationError(f"unknown process kind {kind!r}")
        self._scheduler = scheduler
        self.name = name
        self.kind = kind
        self._func = func
        self._generator: ThreadGenerator | None = None
        self._waiting_on: list[Event] = []
        self._all_of_pending: set[Event] = set()
        self._timeout_event: Event | None = None
        self.done = False
        self.started = False
        #: Notified when the process terminates (thread return / StopIteration).
        self.terminated_event = Event(scheduler, f"{name}.terminated")
        self._static_sensitivity: list[Event] = []
        self._runnable = False
        self.exception: BaseException | None = None
        #: Causal edge for the probe bus: the Event whose trigger made
        #: this process runnable (None for the initial activation).
        #: Recorded only while a bus is attached; consumed and reset by
        #: the scheduler's instrumented evaluation loop.
        self._wake_trigger: Event | None = None

    def __repr__(self) -> str:
        return f"Process({self.name}, {self.kind})"

    # -- static sensitivity -------------------------------------------------

    def add_sensitivity(self, event: Event) -> None:
        """Statically sensitise this process to *event*."""
        self._static_sensitivity.append(event)
        event.add_static(self)

    # -- waking ---------------------------------------------------------------

    def _wake(self, trigger: Event) -> None:
        """Called by an event this process dynamically waits on."""
        if self.done:
            return
        if self._all_of_pending:
            self._all_of_pending.discard(trigger)
            if self._all_of_pending:
                return
        self._clear_waits(keep=trigger)
        if self._scheduler._probes is not None:
            self._wake_trigger = trigger
        self._make_runnable()

    def _wake_static(self, trigger: Event) -> None:
        """Called by an event in the static sensitivity list."""
        if self.done:
            return
        if self.kind == self.THREAD and self._waiting_on:
            # A thread with an explicit dynamic wait ignores static triggers.
            return
        if self._scheduler._probes is not None:
            self._wake_trigger = trigger
        self._make_runnable()

    def _make_runnable(self) -> None:
        if not self._runnable:
            self._runnable = True
            self._scheduler._make_runnable(self)

    def _clear_waits(self, keep: Event | None = None) -> None:
        for event in self._waiting_on:
            if event is not keep:
                event._remove_dynamic(self)
        self._waiting_on = []
        self._all_of_pending = set()
        self._timeout_event = None

    # -- execution ------------------------------------------------------------

    def _execute(self) -> None:
        """Run one activation; called only by the scheduler."""
        self._runnable = False
        if self.done:
            return
        if self.kind == self.METHOD:
            self.started = True
            self._func()
            return
        if self._generator is None:
            self.started = True
            result = self._func()
            if result is None:
                # A thread function with no yields runs to completion at start.
                self._finish()
                return
            if not isinstance(result, Generator):
                raise SimulationError(
                    f"thread {self.name!r} must be a generator function, "
                    f"got {result!r}"
                )
            self._generator = result
        try:
            wait_spec = self._generator.send(None)
        except StopIteration:
            self._finish()
            return
        self._register_wait(wait_spec)

    def _register_wait(self, wait_spec: object) -> None:
        if isinstance(wait_spec, Timeout):
            event = Event(self._scheduler, f"{self.name}.timeout")
            event.notify_after(wait_spec.delay)
            self._timeout_event = event
            self._waiting_on = [event]
            event._add_dynamic(self)
            return
        if isinstance(wait_spec, Event):
            self._waiting_on = [wait_spec]
            wait_spec._add_dynamic(self)
            return
        if isinstance(wait_spec, AnyOf):
            self._waiting_on = list(wait_spec.events)
            for event in wait_spec.events:
                event._add_dynamic(self)
            return
        if isinstance(wait_spec, AllOf):
            self._waiting_on = list(wait_spec.events)
            self._all_of_pending = set(wait_spec.events)
            for event in wait_spec.events:
                event._add_dynamic(self)
            return
        raise SimulationError(
            f"thread {self.name!r} yielded {wait_spec!r}, which is not a "
            "wait specification (Timeout, Event, AnyOf or AllOf)"
        )

    def _finish(self) -> None:
        self.done = True
        self._clear_waits()
        self.terminated_event.notify_delta()

    def kill(self) -> None:
        """Forcefully terminate the process (it never runs again)."""
        if self.done:
            return
        if self._generator is not None:
            self._generator.close()
        self._finish()
