"""Simulation time representation.

Time is kept as a plain non-negative integer number of *femtoseconds*,
mirroring SystemC's 64-bit integral time with a default resolution fine
enough that nanosecond- and picosecond-scale models never need fractions.
The :data:`FS` .. :data:`SEC` constants are multipliers, so ``10 * NS``
reads like the SystemC literal ``sc_time(10, SC_NS)``.
"""

from __future__ import annotations

from ..errors import SimulationError

#: One femtosecond — the base resolution.
FS = 1
#: One picosecond.
PS = 1_000 * FS
#: One nanosecond.
NS = 1_000 * PS
#: One microsecond.
US = 1_000 * NS
#: One millisecond.
MS = 1_000 * US
#: One second.
SEC = 1_000 * MS

_UNIT_NAMES = [(SEC, "s"), (MS, "ms"), (US, "us"), (NS, "ns"), (PS, "ps"), (FS, "fs")]


def check_delay(delay: int) -> int:
    """Validate a relative delay, returning it unchanged.

    :raises SimulationError: if *delay* is negative or not an integer.
    """
    if not isinstance(delay, int) or isinstance(delay, bool):
        raise SimulationError(f"delay must be an int number of fs, got {delay!r}")
    if delay < 0:
        raise SimulationError(f"delay must be non-negative, got {delay}")
    return delay


def format_time(time_fs: int) -> str:
    """Render *time_fs* with the largest unit that divides it exactly.

    >>> format_time(25_000_000)
    '25 ns'
    >>> format_time(0)
    '0 fs'
    """
    if time_fs == 0:
        return "0 fs"
    for factor, suffix in _UNIT_NAMES:
        if time_fs % factor == 0:
            return f"{time_fs // factor} {suffix}"
    return f"{time_fs} fs"
