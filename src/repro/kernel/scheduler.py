"""The discrete-event scheduler.

Implements the SystemC evaluation/update/delta-notification cycle:

1. **Evaluate** — run every runnable process until it waits. Immediate
   notifications during this phase make further processes runnable in
   the *same* phase.
2. **Update** — commit staged primitive-channel writes (signals). A
   committed change performs delta notification of the channel's
   value-changed events.
3. **Delta notify** — trigger delta-notified events, waking waiters. If
   anything became runnable, start a new delta cycle at the same time.
4. **Time advance** — otherwise pop the earliest timed notifications,
   advance simulation time, and evaluate again.
"""

from __future__ import annotations

import heapq
import typing
from collections import deque

from ..errors import SimulationError
from .event import Event
from .process import Process
from .simtime import check_delay, format_time

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..instrument.probes import ProbeBus
    from .signal_base import UpdateTarget


class Scheduler:
    """Event queues and the simulation main loop.

    :param max_deltas_per_timestep: safety limit that turns a
        combinational feedback loop into a diagnosable error instead of
        a hang.
    """

    def __init__(self, max_deltas_per_timestep: int = 10_000) -> None:
        self._time = 0
        self._delta_count = 0
        self._runnable: deque[Process] = deque()
        self._delta_events: list[Event] = []
        self._timed: list[tuple[int, int, Event]] = []
        self._timed_seq = 0
        self._update_queue: list["UpdateTarget"] = []
        self._processes: list[Process] = []
        self._max_deltas = max_deltas_per_timestep
        self._stop_requested = False
        self.running = False
        #: The process being evaluated right now (None between activations).
        self.current_process: Process | None = None
        #: Probe bus attached by the owning Simulator; None keeps every
        #: probe site on the single-truthiness-check fast path.
        self._probes: "ProbeBus | None" = None

    # -- introspection ------------------------------------------------------

    @property
    def time(self) -> int:
        """Current simulation time in femtoseconds."""
        return self._time

    @property
    def delta_count(self) -> int:
        """Total number of delta cycles executed so far."""
        return self._delta_count

    @property
    def processes(self) -> tuple[Process, ...]:
        return tuple(self._processes)

    def time_str(self) -> str:
        return format_time(self._time)

    # -- construction ---------------------------------------------------------

    def register_process(self, process: Process, initialize: bool = True) -> None:
        """Add *process* to the kernel.

        :param initialize: if true (the SystemC default), the process is
            runnable in the first delta of the simulation (or of the next
            step when registered mid-run).
        """
        self._processes.append(process)
        if initialize:
            process._make_runnable()

    def spawn(
        self,
        func: typing.Callable[[], object],
        name: str = "spawned",
        initialize: bool = True,
    ) -> Process:
        """Create and register a thread process in one call."""
        process = Process(self, name, func, Process.THREAD)
        self.register_process(process, initialize=initialize)
        return process

    # -- internal hooks used by Event / Signal --------------------------------

    def _make_runnable(self, process: Process) -> None:
        self._runnable.append(process)

    def _schedule_delta_event(self, event: Event) -> None:
        # O(1) dedup flag, mirroring request_update: a linear `in` scan
        # over the pending list is quadratic when many events collapse
        # into one delta.
        if not event._delta_pending:
            event._delta_pending = True
            self._delta_events.append(event)

    def _schedule_timed_event(self, event: Event, delay: int) -> None:
        self._timed_seq += 1
        heapq.heappush(self._timed, (self._time + delay, self._timed_seq, event))

    def request_update(self, target: "UpdateTarget") -> None:
        """Queue *target* for the update phase of the current delta."""
        if not target._update_requested:
            target._update_requested = True
            self._update_queue.append(target)

    # -- control ---------------------------------------------------------------

    def stop(self) -> None:
        """Request the main loop to stop at the end of the current delta."""
        self._stop_requested = True

    def run(self, duration: int | None = None) -> int:
        """Run the simulation.

        :param duration: femtoseconds to simulate; ``None`` runs until no
            activity remains (event starvation) or :meth:`stop` is called.
        :returns: the simulation time when the run ended.
        """
        if duration is not None:
            check_delay(duration)
        deadline = None if duration is None else self._time + duration
        self._stop_requested = False
        self.running = True
        try:
            while True:
                self._run_delta_cycles()
                if self._stop_requested:
                    break
                if not self._timed:
                    break
                next_time = self._timed[0][0]
                if deadline is not None and next_time > deadline:
                    self._time = deadline
                    break
                self._advance_to(next_time)
            if deadline is not None and self._time < deadline and not self._stop_requested:
                self._time = deadline
            return self._time
        finally:
            self.running = False

    def _advance_to(self, next_time: int) -> None:
        self._time = next_time
        while self._timed and self._timed[0][0] == next_time:
            __, __, event = heapq.heappop(self._timed)
            event._trigger()

    def _run_delta_cycles(self) -> None:
        deltas_this_step = 0
        while self._runnable or self._delta_events or self._update_queue:
            deltas_this_step += 1
            if deltas_this_step > self._max_deltas:
                raise SimulationError(
                    f"more than {self._max_deltas} delta cycles at time "
                    f"{self.time_str()}: probable zero-delay feedback loop"
                )
            self._delta_count += 1
            probes = self._probes
            # Evaluation phase.
            if probes is not None:
                probes.delta_begin(self._time, self._delta_count)
                while self._runnable:
                    process = self._runnable.popleft()
                    self.current_process = process
                    cause, process._wake_trigger = process._wake_trigger, None
                    probes.process_activate(self._time, process, cause)
                    try:
                        process._execute()
                    finally:
                        self.current_process = None
                        probes.process_suspend(self._time, process)
            else:
                while self._runnable:
                    process = self._runnable.popleft()
                    self.current_process = process
                    try:
                        process._execute()
                    finally:
                        self.current_process = None
            # Update phase.
            updates, self._update_queue = self._update_queue, []
            for target in updates:
                target._update_requested = False
                target._perform_update()
            # Delta notification phase. Clear the dedup flag before the
            # trigger so a callback may re-notify for the next delta.
            events, self._delta_events = self._delta_events, []
            for event in events:
                event._delta_pending = False
                event._trigger()
            if probes is not None:
                probes.delta_end(self._time, self._delta_count)
            if self._stop_requested:
                return
