"""Update-target protocol shared by primitive channels.

A primitive channel (signal, FIFO, resolved bus) stages writes during the
evaluation phase and commits them in the update phase. The scheduler only
needs the small protocol defined here; the concrete channels live in
:mod:`repro.hdl`.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .scheduler import Scheduler


class UpdateTarget:
    """Base class for anything committed during the update phase."""

    def __init__(self, scheduler: "Scheduler") -> None:
        self._scheduler = scheduler
        self._update_requested = False

    def _request_update(self) -> None:
        self._scheduler.request_update(self)

    def _perform_update(self) -> None:
        """Commit the staged value; implemented by concrete channels."""
        raise NotImplementedError
