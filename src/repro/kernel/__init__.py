"""Discrete-event simulation kernel (SystemC-like scheduler in Python).

Public surface::

    from repro.kernel import Simulator, Timeout, AnyOf, AllOf, NS, US

    sim = Simulator()

    def producer():
        yield Timeout(10 * NS)
        ...

    sim.spawn(producer, "producer")
    sim.run(1 * US)
"""

from .event import AllOf, AnyOf, Event
from .process import Process, Timeout
from .scheduler import Scheduler
from .signal_base import UpdateTarget
from .simtime import FS, MS, NS, PS, SEC, US, format_time
from .simulator import BlockedProcess, DetectionRecord, IdleRun, Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "BlockedProcess",
    "DetectionRecord",
    "Event",
    "FS",
    "IdleRun",
    "MS",
    "NS",
    "PS",
    "Process",
    "SEC",
    "Scheduler",
    "Simulator",
    "Timeout",
    "US",
    "UpdateTarget",
    "format_time",
]
