"""Simulator facade.

:class:`Simulator` bundles the scheduler with the design registry,
elaboration and tracing hooks, and is the single object a model builder
passes around. The typical session::

    sim = Simulator()
    top = MySystem(sim, "top")
    sim.run(1 * US)
"""

from __future__ import annotations

import typing

from ..errors import ElaborationError, SimulationError
from ..instrument.metrics import DetectionLog
from ..instrument.probes import DETECTION, SIGNAL_COMMIT, ProbeBus, default_bus
from .event import Event
from .process import Process
from .scheduler import Scheduler
from .simtime import format_time

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hdl.module import Module


class DetectionRecord:
    """One checker/scoreboard/monitor firing, as seen by the simulator.

    The fault-injection classifier consumes these: a run during which any
    detection was recorded counts as *detected* even when the reporting
    checker was non-strict (i.e. did not raise).
    """

    __slots__ = ("source", "message", "time")

    def __init__(self, source: str, message: str, time: int) -> None:
        self.source = source
        self.message = message
        self.time = time

    def __repr__(self) -> str:
        return f"DetectionRecord({self.source}: {self.message})"


class BlockedProcess:
    """A process stuck on a guarded-method call when the run ended."""

    __slots__ = ("process_name", "client", "object_path", "method", "arrival_time")

    def __init__(
        self,
        process_name: str,
        client: str,
        object_path: str,
        method: str,
        arrival_time: int,
    ) -> None:
        self.process_name = process_name
        self.client = client
        self.object_path = object_path
        self.method = method
        self.arrival_time = arrival_time

    def __repr__(self) -> str:
        return (
            f"BlockedProcess({self.process_name} waiting on "
            f"{self.object_path}.{self.method} since {self.arrival_time})"
        )


class IdleRun(int):
    """Result of :meth:`Simulator.run_until_idle`.

    Behaves as the plain end-time integer older callers expect, but also
    carries the processes still blocked on guarded-method calls at the
    end of the run — the signal the fault classifier and the GRD
    deadlock rules consume instead of silently losing it.
    """

    blocked_processes: tuple[BlockedProcess, ...] = ()

    def __new__(cls, time: int, blocked: typing.Sequence[BlockedProcess] = ()):
        value = super().__new__(cls, time)
        value.blocked_processes = tuple(blocked)
        return value

    @property
    def quiescent(self) -> bool:
        """True when no process was left blocked on a guard."""
        return not self.blocked_processes


class Simulator:
    """One simulation context: scheduler + design hierarchy + tracing.

    :param probe_bus: an optional :class:`~repro.instrument.ProbeBus` to
        attach at construction. When omitted, the process-wide default
        bus (:func:`repro.instrument.set_default_bus`) is attached if one
        is installed; otherwise no bus is attached and every probe site
        stays on its null fast path until :attr:`probes` is first used.
    """

    def __init__(
        self,
        max_deltas_per_timestep: int = 10_000,
        probe_bus: "ProbeBus | None" = None,
    ) -> None:
        self.scheduler = Scheduler(max_deltas_per_timestep)
        self._named: dict[str, object] = {}
        self._top_modules: list["Module"] = []
        self._tracers: list[typing.Any] = []
        self.elaborated = False
        self._detection_log = DetectionLog()
        self._probes: ProbeBus | None = None
        bus = probe_bus if probe_bus is not None else default_bus()
        if bus is not None:
            self.attach_probe_bus(bus)

    # -- time / control -------------------------------------------------------

    @property
    def time(self) -> int:
        """Current simulation time in femtoseconds."""
        return self.scheduler.time

    @property
    def delta_count(self) -> int:
        return self.scheduler.delta_count

    def time_str(self) -> str:
        return format_time(self.scheduler.time)

    def run(self, duration: int | None = None) -> int:
        """Elaborate on first use, then run the scheduler."""
        if not self.elaborated:
            self.elaborate()
        return self.scheduler.run(duration)

    def stop(self) -> None:
        self.scheduler.stop()

    # -- construction helpers ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self.scheduler, name)

    def spawn(
        self,
        func: typing.Callable[[], object],
        name: str = "spawned",
        initialize: bool = True,
    ) -> Process:
        """Register a free-standing thread process (outside any module)."""
        return self.scheduler.spawn(func, name, initialize=initialize)

    # -- hierarchy --------------------------------------------------------------

    def _add_top_module(self, module: "Module") -> None:
        if self.elaborated:
            raise ElaborationError(
                f"cannot add module {module.name!r} after elaboration"
            )
        self._top_modules.append(module)

    @property
    def top_modules(self) -> tuple["Module", ...]:
        return tuple(self._top_modules)

    def register_named(self, path: str, obj: object) -> None:
        """Record *obj* under its full hierarchical *path*."""
        if path in self._named:
            raise ElaborationError(f"duplicate hierarchical name {path!r}")
        self._named[path] = obj

    def lookup(self, path: str) -> object:
        """Find a design object by full hierarchical name."""
        try:
            return self._named[path]
        except KeyError:
            raise ElaborationError(f"no design object named {path!r}") from None

    def iter_named(self) -> typing.Iterator[tuple[str, object]]:
        return iter(sorted(self._named.items()))

    def elaborate(self) -> None:
        """Finalise the hierarchy: bind ports, run end-of-elaboration hooks."""
        if self.elaborated:
            return
        for module in self._top_modules:
            module._elaborate()
        self.elaborated = True
        for module in self._top_modules:
            module._end_of_elaboration()

    # -- instrumentation -----------------------------------------------------------

    @property
    def probes(self) -> ProbeBus:
        """This simulator's probe bus, created and attached on first use.

        Reading this property is the supported way to subscribe an
        observer; until it is read (and no bus was passed in or
        installed as default), the kernel's probe sites stay on their
        zero-cost null path.
        """
        if self._probes is None:
            self.attach_probe_bus(ProbeBus())
        assert self._probes is not None
        return self._probes

    def attach_probe_bus(self, bus: ProbeBus) -> ProbeBus:
        """Attach *bus* to this simulator and its scheduler."""
        self._probes = bus
        self.scheduler._probes = bus
        return bus

    # -- tracing ------------------------------------------------------------------

    def add_tracer(self, tracer: typing.Any) -> None:
        """Attach a tracer (e.g. a VCD writer); it is told of value changes.

        Internally this subscribes ``tracer.record_change`` to the
        ``signal.commit`` probe; adding the same tracer twice is a no-op.
        """
        if tracer in self._tracers:
            return
        self._tracers.append(tracer)
        self.probes.subscribe(SIGNAL_COMMIT, tracer.record_change)

    def remove_tracer(self, tracer: typing.Any) -> None:
        """Detach *tracer*; idempotent (unknown tracers are ignored)."""
        if tracer not in self._tracers:
            return
        self._tracers.remove(tracer)
        if self._probes is not None:
            self._probes.unsubscribe(SIGNAL_COMMIT, tracer.record_change)

    def _notify_trace(self, signal: typing.Any, value: typing.Any) -> None:
        """Publish an out-of-band value change (``force``, fault override).

        Ordinary commits emit the probe inline from the update phase;
        this shim exists for code that bypasses the staging machinery.
        """
        probes = self._probes
        if probes is not None:
            probes.signal_commit(self.scheduler.time, signal, value)

    # -- detection plumbing ------------------------------------------------------

    @property
    def detections(self) -> list[DetectionRecord]:
        """Checker/scoreboard/monitor firings, in reporting order.

        A thin view over this simulator's detection log; external
        consumers (e.g. the fault classifier) subscribe to the
        ``detection`` probe instead of scraping this list.
        """
        return self._detection_log.records

    def report_detection(self, source: str, message: str) -> None:
        """Record that a runtime checker fired.

        Called by the verify checkers, scoreboards and bus monitors on
        every violation (strict or not), so the fault-injection
        classifier can tell *detected* misbehaviour apart from silent
        corruption without depending on exception propagation. The
        record lands in this simulator's own log and, when a probe bus
        is attached, is published as a ``detection`` probe.
        """
        record = DetectionRecord(source, message, self.scheduler.time)
        self._detection_log.append(record)
        probes = self._probes
        if probes is not None:
            probes.emit(DETECTION, record)

    # -- checkpoint / restore -----------------------------------------------------

    def checkpoint(self):
        """Snapshot signal values, shared states and process status.

        Delegates to :func:`repro.resilience.checkpoint.capture`; the
        simulator must be quiescent (no pending guarded calls). Returns
        a :class:`~repro.resilience.checkpoint.KernelCheckpoint`.
        """
        from ..resilience.checkpoint import capture

        return capture(self)

    def restore(self, checkpoint) -> None:
        """Push a checkpoint's state back into this simulator.

        Delegates to :func:`repro.resilience.checkpoint.restore`; the
        hierarchy must match the one the checkpoint was taken from.
        """
        from ..resilience.checkpoint import restore

        restore(self, checkpoint)

    # -- convenience ---------------------------------------------------------------

    def blocked_processes(self) -> list[BlockedProcess]:
        """Processes currently stuck on guarded-method calls.

        A call is *blocked* when its request is still pending in some
        shared state space: either the guard is false, or arbitration
        never granted it. The caller process is resolved through the
        request's completion event; when the caller cannot be identified
        (e.g. a timed-out and cancelled call) the request's client id is
        still reported.
        """
        blocked: list[BlockedProcess] = []
        seen_spaces: set[int] = set()
        for __, obj in self.iter_named():
            space = getattr(obj, "_space", None)
            if space is None or id(space) in seen_spaces:
                continue
            seen_spaces.add(id(space))
            for request in getattr(space, "pending", []):
                waiter = None
                for process in self.scheduler.processes:
                    if request.done_event in process._waiting_on:
                        waiter = process
                        break
                blocked.append(
                    BlockedProcess(
                        waiter.name if waiter is not None else request.client,
                        request.client,
                        space.name,
                        request.method,
                        request.arrival_time,
                    )
                )
        return blocked

    def run_until_idle(self, max_time: int | None = None) -> IdleRun:
        """Run until event starvation; optionally bounded by *max_time*.

        :returns: an :class:`IdleRun` — the end time (usable as a plain
            ``int``) carrying :attr:`IdleRun.blocked_processes`, the
            guarded-method calls still stuck when the run ended.
        """
        if max_time is not None and max_time < self.time:
            raise SimulationError("max_time is in the past")
        duration = None if max_time is None else max_time - self.time
        end_time = self.run(duration)
        return IdleRun(end_time, self.blocked_processes())
