"""Simulator facade.

:class:`Simulator` bundles the scheduler with the design registry,
elaboration and tracing hooks, and is the single object a model builder
passes around. The typical session::

    sim = Simulator()
    top = MySystem(sim, "top")
    sim.run(1 * US)
"""

from __future__ import annotations

import typing

from ..errors import ElaborationError, SimulationError
from .event import Event
from .process import Process
from .scheduler import Scheduler
from .simtime import format_time

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hdl.module import Module


class Simulator:
    """One simulation context: scheduler + design hierarchy + tracing."""

    def __init__(self, max_deltas_per_timestep: int = 10_000) -> None:
        self.scheduler = Scheduler(max_deltas_per_timestep)
        self._named: dict[str, object] = {}
        self._top_modules: list["Module"] = []
        self._tracers: list[typing.Any] = []
        self.elaborated = False

    # -- time / control -------------------------------------------------------

    @property
    def time(self) -> int:
        """Current simulation time in femtoseconds."""
        return self.scheduler.time

    @property
    def delta_count(self) -> int:
        return self.scheduler.delta_count

    def time_str(self) -> str:
        return format_time(self.scheduler.time)

    def run(self, duration: int | None = None) -> int:
        """Elaborate on first use, then run the scheduler."""
        if not self.elaborated:
            self.elaborate()
        return self.scheduler.run(duration)

    def stop(self) -> None:
        self.scheduler.stop()

    # -- construction helpers ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self.scheduler, name)

    def spawn(
        self,
        func: typing.Callable[[], object],
        name: str = "spawned",
        initialize: bool = True,
    ) -> Process:
        """Register a free-standing thread process (outside any module)."""
        return self.scheduler.spawn(func, name, initialize=initialize)

    # -- hierarchy --------------------------------------------------------------

    def _add_top_module(self, module: "Module") -> None:
        if self.elaborated:
            raise ElaborationError(
                f"cannot add module {module.name!r} after elaboration"
            )
        self._top_modules.append(module)

    @property
    def top_modules(self) -> tuple["Module", ...]:
        return tuple(self._top_modules)

    def register_named(self, path: str, obj: object) -> None:
        """Record *obj* under its full hierarchical *path*."""
        if path in self._named:
            raise ElaborationError(f"duplicate hierarchical name {path!r}")
        self._named[path] = obj

    def lookup(self, path: str) -> object:
        """Find a design object by full hierarchical name."""
        try:
            return self._named[path]
        except KeyError:
            raise ElaborationError(f"no design object named {path!r}") from None

    def iter_named(self) -> typing.Iterator[tuple[str, object]]:
        return iter(sorted(self._named.items()))

    def elaborate(self) -> None:
        """Finalise the hierarchy: bind ports, run end-of-elaboration hooks."""
        if self.elaborated:
            return
        for module in self._top_modules:
            module._elaborate()
        self.elaborated = True
        for module in self._top_modules:
            module._end_of_elaboration()

    # -- tracing ------------------------------------------------------------------

    def add_tracer(self, tracer: typing.Any) -> None:
        """Attach a tracer (e.g. a VCD writer); it is told of value changes."""
        self._tracers.append(tracer)

    def remove_tracer(self, tracer: typing.Any) -> None:
        self._tracers.remove(tracer)

    def _notify_trace(self, signal: typing.Any, value: typing.Any) -> None:
        for tracer in self._tracers:
            tracer.record_change(self.scheduler.time, signal, value)

    # -- convenience ---------------------------------------------------------------

    def run_until_idle(self, max_time: int | None = None) -> int:
        """Run until event starvation; optionally bounded by *max_time*."""
        if max_time is not None and max_time < self.time:
            raise SimulationError("max_time is in the past")
        duration = None if max_time is None else max_time - self.time
        return self.run(duration)
