"""Module ports.

A :class:`Port` is a typed connection point declared by a module and
bound to a :class:`~repro.hdl.signal.Signal` (or, for ``INOUT`` ports,
a :class:`~repro.hdl.resolved.ResolvedSignal`) during hierarchy
construction. Reads and writes are delegated to the bound channel, so
module code is written against its ports and stays independent of the
wiring above it.
"""

from __future__ import annotations

import typing

from ..errors import ElaborationError
from ..kernel.event import Event
from .resolved import BusDriver, ResolvedSignal
from .signal import Signal

#: Port directions.
IN = "in"
OUT = "out"
INOUT = "inout"


class Port:
    """A directional connection point owned by a module.

    :param owner_path: hierarchical path of the owning module.
    :param name: port name.
    :param direction: :data:`IN`, :data:`OUT` or :data:`INOUT`.
    :param width: expected signal width (``None`` = unchecked).
    """

    def __init__(
        self,
        owner_path: str,
        name: str,
        direction: str,
        width: int | None = None,
    ) -> None:
        if direction not in (IN, OUT, INOUT):
            raise ElaborationError(f"invalid port direction {direction!r}")
        self.owner_path = owner_path
        self.name = name
        self.direction = direction
        self.width = width
        self._signal: Signal | ResolvedSignal | None = None
        self._driver: BusDriver | None = None

    def __repr__(self) -> str:
        bound = self._signal.name if self._signal is not None else "<unbound>"
        return f"Port({self.owner_path}.{self.name} {self.direction} -> {bound})"

    @property
    def path(self) -> str:
        return f"{self.owner_path}.{self.name}"

    # -- binding ------------------------------------------------------------

    def bind(self, signal: "Signal | ResolvedSignal | Port") -> None:
        """Connect this port to *signal* (or to another bound port)."""
        if isinstance(signal, Port):
            if signal._signal is None:
                raise ElaborationError(
                    f"cannot bind {self.path} to unbound port {signal.path}"
                )
            signal = signal._signal
        if self.width is not None and signal.width is not None:
            if signal.width != self.width:
                raise ElaborationError(
                    f"port {self.path} is {self.width} bits wide but signal "
                    f"{signal.name} is {signal.width}"
                )
        if isinstance(signal, ResolvedSignal):
            if self.direction != INOUT:
                raise ElaborationError(
                    f"resolved signal {signal.name} needs an INOUT port, "
                    f"but {self.path} is {self.direction}"
                )
            self._driver = signal.get_driver(self.path)
        self._signal = signal

    @property
    def bound(self) -> bool:
        return self._signal is not None

    @property
    def signal(self) -> "Signal | ResolvedSignal":
        if self._signal is None:
            raise ElaborationError(f"port {self.path} is not bound")
        return self._signal

    # -- access ---------------------------------------------------------------

    def read(self) -> typing.Any:
        return self.signal.read()

    @property
    def value(self) -> typing.Any:
        return self.signal.read()

    def write(self, value: object) -> None:
        if self.direction == IN:
            raise ElaborationError(f"cannot write input port {self.path}")
        if self._driver is not None:
            self._driver.write(value)  # type: ignore[arg-type]
        else:
            typing.cast(Signal, self.signal).write(value)

    def release(self) -> None:
        """Tri-state an INOUT port (drive all-Z)."""
        if self._driver is None:
            raise ElaborationError(
                f"port {self.path} is not bound to a resolved signal"
            )
        self._driver.release()

    # -- events ------------------------------------------------------------------

    @property
    def changed(self) -> Event:
        return self.signal.changed

    @property
    def posedge(self) -> Event:
        return typing.cast(Signal, self.signal).posedge

    @property
    def negedge(self) -> Event:
        return typing.cast(Signal, self.signal).negedge

    def to_int(self) -> int:
        value = self.read()
        if hasattr(value, "to_int"):
            return value.to_int()
        return int(value)
