"""Clock and reset generators."""

from __future__ import annotations

from ..errors import SimulationError
from ..kernel.event import Event
from ..kernel.process import Timeout
from ..kernel.simulator import Simulator
from .logic import L0, L1
from .module import Module


class Clock(Module):
    """A free-running clock.

    The clock level lives on the 1-bit signal :attr:`clk`; the
    convenience events :attr:`posedge` / :attr:`negedge` come from it.

    :param period: full period in femtoseconds.
    :param duty: high fraction of the period (default 0.5).
    :param start_high: initial level.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        period: int,
        duty: float = 0.5,
        start_high: bool = False,
    ) -> None:
        super().__init__(parent, name)
        if period <= 1:
            raise SimulationError(f"clock period must be > 1 fs, got {period}")
        if not 0.0 < duty < 1.0:
            raise SimulationError(f"duty cycle must be in (0, 1), got {duty}")
        self.period = period
        self.high_time = max(1, int(period * duty))
        self.low_time = period - self.high_time
        if self.low_time < 1:
            raise SimulationError(
                f"duty cycle {duty} leaves no low time at period {period}"
            )
        self.start_high = start_high
        self.clk = self.signal("clk", width=1, init=L1 if start_high else L0)
        self.cycle_count = 0
        self.thread(self._toggle, "toggle")

    @property
    def posedge(self) -> Event:
        return self.clk.posedge

    @property
    def negedge(self) -> Event:
        return self.clk.negedge

    def _toggle(self):
        if self.start_high:
            while True:
                yield Timeout(self.high_time)
                self.clk.write(0)
                yield Timeout(self.low_time)
                self.clk.write(1)
                self.cycle_count += 1
        else:
            while True:
                yield Timeout(self.low_time)
                self.clk.write(1)
                self.cycle_count += 1
                yield Timeout(self.high_time)
                self.clk.write(0)


class ResetGenerator(Module):
    """Asserts an (active-low by default) reset for a fixed duration."""

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        duration: int,
        active_low: bool = True,
    ) -> None:
        super().__init__(parent, name)
        if duration <= 0:
            raise SimulationError(f"reset duration must be positive, got {duration}")
        self.duration = duration
        self.active_low = active_low
        asserted = 0 if active_low else 1
        self.rst = self.signal("rst", width=1, init=asserted)
        self.done = self.event("reset_done")
        self.thread(self._run, "run")

    def _run(self):
        yield Timeout(self.duration)
        self.rst.write(1 if self.active_low else 0)
        self.done.notify_delta()
