"""Fixed-width four-valued bit vectors.

:class:`LogicVector` is the workhorse datatype for buses (PCI AD lines,
command codes, addresses). It is immutable and stores the value as three
bit masks — ``ones``, ``x`` and ``z`` — so vector operations are integer
operations rather than per-bit loops.

Bit 0 is the least-significant bit. String literals are written
MSB-first, as in waveforms: ``LogicVector.from_string("10ZX")`` has bit 3
= '1' and bit 0 = 'X'.
"""

from __future__ import annotations

import typing

from ..errors import LogicValueError, WidthError
from .logic import L0, L1, LX, LZ, Logic


class LogicVector:
    """An immutable fixed-width vector of four-valued logic."""

    __slots__ = ("_width", "_ones", "_x", "_z")

    def __init__(
        self,
        width: int,
        value: "int | str | Logic | LogicVector | None" = 0,
    ) -> None:
        if width <= 0:
            raise WidthError(f"vector width must be positive, got {width}")
        self._width = width
        mask = (1 << width) - 1
        if value is None:
            # All-X: the canonical power-on value of an uninitialised register.
            self._ones, self._x, self._z = 0, mask, 0
        elif isinstance(value, LogicVector):
            if value._width != width:
                value = value.resized(width)
            self._ones, self._x, self._z = value._ones, value._x, value._z
        elif isinstance(value, Logic):
            # A scalar fills every bit, as in VHDL's (others => value).
            ones, x, z = _masks_from_char(value.char)
            self._ones = mask if ones else 0
            self._x = mask if x else 0
            self._z = mask if z else 0
        elif isinstance(value, str):
            ones, x, z = _parse_literal(value, width)
            self._ones, self._x, self._z = ones, x, z
        elif isinstance(value, bool):
            self._ones = 1 if value else 0
            self._x = self._z = 0
        elif isinstance(value, int):
            self._ones = value & mask
            self._x = self._z = 0
        else:
            raise LogicValueError(f"cannot build LogicVector from {value!r}")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def _raw(cls, width: int, ones: int, x: int, z: int) -> "LogicVector":
        vector = cls.__new__(cls)
        mask = (1 << width) - 1
        object.__setattr__(vector, "_width", width)
        object.__setattr__(vector, "_ones", ones & mask & ~(x | z))
        object.__setattr__(vector, "_x", x & mask)
        object.__setattr__(vector, "_z", z & mask & ~x)
        return vector

    @classmethod
    def from_string(cls, literal: str) -> "LogicVector":
        """Build from an MSB-first literal such as ``"10XZ"`` or ``"0b1010"``."""
        text = literal[2:] if literal.lower().startswith("0b") else literal
        text = text.replace("_", "")
        return cls(len(text), text)

    @classmethod
    def ones(cls, width: int) -> "LogicVector":
        return cls(width, (1 << width) - 1)

    @classmethod
    def zeros(cls, width: int) -> "LogicVector":
        return cls(width, 0)

    @classmethod
    def unknown(cls, width: int) -> "LogicVector":
        """All bits X."""
        return cls(width, None)

    @classmethod
    def high_z(cls, width: int) -> "LogicVector":
        """All bits Z — a released tri-state bus."""
        return cls._raw(width, 0, 0, (1 << width) - 1)

    # -- basic properties ----------------------------------------------------------

    @property
    def width(self) -> int:
        return self._width

    def __len__(self) -> int:
        return self._width

    @property
    def is_fully_defined(self) -> bool:
        return self._x == 0 and self._z == 0

    @property
    def has_x(self) -> bool:
        return self._x != 0

    @property
    def has_z(self) -> bool:
        return self._z != 0

    @property
    def is_all_z(self) -> bool:
        return self._z == (1 << self._width) - 1

    # -- conversion ------------------------------------------------------------------

    def to_int(self) -> int:
        """Unsigned integer value; raises on any X/Z bit."""
        if self._x or self._z:
            raise LogicValueError(f"vector {self} contains X/Z bits")
        return self._ones

    def to_signed(self) -> int:
        """Two's-complement signed value; raises on any X/Z bit."""
        raw = self.to_int()
        sign_bit = 1 << (self._width - 1)
        return raw - (1 << self._width) if raw & sign_bit else raw

    def to_int_default(self, default: int = 0) -> int:
        """Unsigned integer value, or *default* if any bit is X/Z."""
        if self._x or self._z:
            return default
        return self._ones

    def __int__(self) -> int:
        return self.to_int()

    def __index__(self) -> int:
        return self.to_int()

    def __str__(self) -> str:
        chars = []
        for i in reversed(range(self._width)):
            bit = 1 << i
            if self._x & bit:
                chars.append("X")
            elif self._z & bit:
                chars.append("Z")
            elif self._ones & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)

    def __repr__(self) -> str:
        return f"LogicVector({self._width}, '{self}')"

    def to_hex(self) -> str:
        """Hex rendering with per-nibble X/Z marks (as a waveform viewer shows)."""
        nibbles = []
        for lo in range(0, self._width, 4):
            piece = self.slice(min(lo + 3, self._width - 1), lo)
            if piece._x:
                nibbles.append("x")
            elif piece._z and piece._z == (1 << piece._width) - 1:
                nibbles.append("z")
            elif piece._z:
                nibbles.append("x")
            else:
                nibbles.append(format(piece._ones, "x"))
        return "".join(reversed(nibbles))

    # -- bit access --------------------------------------------------------------------

    def bit(self, index: int) -> Logic:
        """The :class:`Logic` value of bit *index* (0 = LSB)."""
        if not 0 <= index < self._width:
            raise WidthError(f"bit index {index} out of range for width {self._width}")
        mask = 1 << index
        if self._x & mask:
            return LX
        if self._z & mask:
            return LZ
        return L1 if self._ones & mask else L0

    def __getitem__(self, index: "int | slice") -> "Logic | LogicVector":
        if isinstance(index, slice):
            start, stop, step = index.indices(self._width)
            if step != 1:
                raise WidthError("vector slices must have step 1")
            if stop <= start:
                raise WidthError(f"empty slice [{index.start}:{index.stop}]")
            return self.slice(stop - 1, start)
        return self.bit(index)

    def slice(self, high: int, low: int) -> "LogicVector":
        """Bits *high* down to *low* inclusive, as a new vector."""
        if not (0 <= low <= high < self._width):
            raise WidthError(
                f"slice [{high}:{low}] out of range for width {self._width}"
            )
        width = high - low + 1
        return LogicVector._raw(
            width, self._ones >> low, self._x >> low, self._z >> low
        )

    def with_bit(self, index: int, value: "Logic | str | int") -> "LogicVector":
        """A copy with bit *index* replaced."""
        if not 0 <= index < self._width:
            raise WidthError(f"bit index {index} out of range for width {self._width}")
        char = Logic(value).char
        mask = 1 << index
        ones = self._ones & ~mask
        x = self._x & ~mask
        z = self._z & ~mask
        if char == "1":
            ones |= mask
        elif char == "X":
            x |= mask
        elif char == "Z":
            z |= mask
        return LogicVector._raw(self._width, ones, x, z)

    def with_slice(self, high: int, low: int, value: "LogicVector | int | str") -> "LogicVector":
        """A copy with bits *high*..*low* replaced by *value*."""
        if not (0 <= low <= high < self._width):
            raise WidthError(
                f"slice [{high}:{low}] out of range for width {self._width}"
            )
        width = high - low + 1
        piece = value if isinstance(value, LogicVector) else LogicVector(width, value)
        if piece._width != width:
            raise WidthError(
                f"slice [{high}:{low}] is {width} bits, value is {piece._width}"
            )
        clear = ((1 << width) - 1) << low
        return LogicVector._raw(
            self._width,
            (self._ones & ~clear) | (piece._ones << low),
            (self._x & ~clear) | (piece._x << low),
            (self._z & ~clear) | (piece._z << low),
        )

    # -- structure ----------------------------------------------------------------------

    def resized(self, width: int) -> "LogicVector":
        """Zero-extended or truncated copy of the given *width*."""
        if width == self._width:
            return self
        return LogicVector._raw(width, self._ones, self._x, self._z)

    def concat(self, low_part: "LogicVector") -> "LogicVector":
        """``self`` in the high bits, *low_part* in the low bits."""
        shift = low_part._width
        return LogicVector._raw(
            self._width + shift,
            (self._ones << shift) | low_part._ones,
            (self._x << shift) | low_part._x,
            (self._z << shift) | low_part._z,
        )

    # -- comparison ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        other_vec = _coerce(other, self._width)
        if other_vec is None:
            return NotImplemented
        return (
            self._width == other_vec._width
            and self._ones == other_vec._ones
            and self._x == other_vec._x
            and self._z == other_vec._z
        )

    def __hash__(self) -> int:
        return hash((self._width, self._ones, self._x, self._z))

    def same_defined_value(self, other: "LogicVector | int") -> bool:
        """True when both are fully defined and numerically equal."""
        other_vec = _coerce(other, self._width)
        if other_vec is None:
            raise LogicValueError(f"cannot compare with {other!r}")
        return (
            self.is_fully_defined
            and other_vec.is_fully_defined
            and self._ones == other_vec._ones
        )

    # -- bitwise operators (X/Z propagate) --------------------------------------------------

    def __invert__(self) -> "LogicVector":
        mask = (1 << self._width) - 1
        unknown = self._x | self._z
        return LogicVector._raw(
            self._width, ~self._ones & mask & ~unknown, unknown, 0
        )

    def _binary(self, other: object, op: str) -> "LogicVector":
        other_vec = _coerce(other, self._width)
        if other_vec is None:
            return NotImplemented  # type: ignore[return-value]
        if other_vec._width != self._width:
            raise WidthError(
                f"width mismatch: {self._width} vs {other_vec._width}"
            )
        unknown = self._x | self._z | other_vec._x | other_vec._z
        a, b = self._ones, other_vec._ones
        if op == "and":
            value = a & b
            # 0 AND anything is 0, even unknown.
            unknown &= ~((~a & ~(self._x | self._z)) | (~b & ~(other_vec._x | other_vec._z)))
        elif op == "or":
            value = a | b
            # 1 OR anything is 1, even unknown.
            unknown &= ~(a | b)
        else:  # xor
            value = a ^ b
        return LogicVector._raw(self._width, value & ~unknown, unknown, 0)

    def __and__(self, other: object) -> "LogicVector":
        return self._binary(other, "and")

    __rand__ = __and__

    def __or__(self, other: object) -> "LogicVector":
        return self._binary(other, "or")

    __ror__ = __or__

    def __xor__(self, other: object) -> "LogicVector":
        return self._binary(other, "xor")

    __rxor__ = __xor__

    def __lshift__(self, amount: int) -> "LogicVector":
        return LogicVector._raw(
            self._width, self._ones << amount, self._x << amount, self._z << amount
        )

    def __rshift__(self, amount: int) -> "LogicVector":
        return LogicVector._raw(
            self._width, self._ones >> amount, self._x >> amount, self._z >> amount
        )

    # -- arithmetic (defined values only) ----------------------------------------------------

    def __add__(self, other: object) -> "LogicVector":
        other_vec = _coerce(other, self._width)
        if other_vec is None:
            return NotImplemented  # type: ignore[return-value]
        return LogicVector(self._width, self.to_int() + other_vec.to_int())

    __radd__ = __add__

    def __sub__(self, other: object) -> "LogicVector":
        other_vec = _coerce(other, self._width)
        if other_vec is None:
            return NotImplemented  # type: ignore[return-value]
        return LogicVector(self._width, self.to_int() - other_vec.to_int())

    def reduce_or(self) -> Logic:
        """OR of all bits."""
        if self._ones:
            return L1
        if self._x or self._z:
            return LX
        return L0

    def reduce_and(self) -> Logic:
        """AND of all bits."""
        mask = (1 << self._width) - 1
        if self._ones == mask:
            return L1
        if (self._ones | self._x | self._z) == mask and (self._x or self._z):
            return LX
        return L0

    def popcount(self) -> int:
        """Number of '1' bits (X/Z not counted)."""
        return bin(self._ones).count("1")


def _masks_from_char(char: str) -> tuple[int, int, int]:
    return (char == "1", char == "X", char == "Z")


def _parse_literal(text: str, width: int) -> tuple[int, int, int]:
    body = text[2:] if text.lower().startswith("0b") else text
    body = body.replace("_", "")
    if len(body) != width:
        raise WidthError(
            f"literal {text!r} has {len(body)} bits, expected {width}"
        )
    ones = x = z = 0
    for char in body:
        ones <<= 1
        x <<= 1
        z <<= 1
        upper = char.upper()
        if upper == "1":
            ones |= 1
        elif upper == "X":
            x |= 1
        elif upper == "Z":
            z |= 1
        elif upper != "0":
            raise LogicValueError(f"invalid character {char!r} in literal {text!r}")
    return ones, x, z


def _coerce(value: object, width: int) -> "LogicVector | None":
    if isinstance(value, LogicVector):
        return value
    if isinstance(value, bool):
        return LogicVector(width, int(value))
    if isinstance(value, int):
        return LogicVector(width, value)
    if isinstance(value, str):
        return LogicVector(width, value)
    return None


def resolve_vectors(width: int, drivers: typing.Sequence[LogicVector]) -> LogicVector:
    """Per-bit bus resolution over several drivers (see :func:`repro.hdl.logic.resolve`)."""
    mask = (1 << width) - 1
    if not drivers:
        return LogicVector.high_z(width)
    driven = 0
    value = 0
    x = 0
    for driver in drivers:
        if driver.width != width:
            raise WidthError(
                f"driver width {driver.width} does not match bus width {width}"
            )
        drive_mask = mask & ~driver._z
        overlap = driven & drive_mask
        fresh = drive_mask & ~driven
        conflict = overlap & ((value ^ driver._ones) | x | driver._x)
        x |= conflict | (driver._x & fresh)
        value |= driver._ones & fresh
        driven |= drive_mask
    value &= ~x
    z = mask & ~driven
    return LogicVector._raw(width, value, x, z)
