"""Resolved (multi-driver, tri-state) signals.

PCI multiplexes address and data on the AD lines, which several agents
drive at different times, releasing them to ``Z`` in turnaround cycles.
:class:`ResolvedSignal` models such a wire: every agent obtains its own
:class:`BusDriver`, and the committed value is the per-bit resolution of
all driver contributions.
"""

from __future__ import annotations

import typing

from ..errors import WidthError
from ..kernel.event import Event
from ..kernel.signal_base import UpdateTarget
from .bitvector import LogicVector, resolve_vectors

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.simulator import Simulator


class BusDriver:
    """One agent's contribution to a resolved bus."""

    def __init__(self, bus: "ResolvedSignal", name: str) -> None:
        self._bus = bus
        self.name = name
        self._contribution = LogicVector.high_z(bus.width)

    def __repr__(self) -> str:
        return f"BusDriver({self._bus.name}:{self.name}={self._contribution})"

    @property
    def contribution(self) -> LogicVector:
        return self._contribution

    def write(self, value: "LogicVector | int | str") -> None:
        """Drive *value* onto the bus (committed at the update phase)."""
        if not isinstance(value, LogicVector):
            value = LogicVector(self._bus.width, value)
        if value.width != self._bus.width:
            raise WidthError(
                f"driver {self.name!r}: value width {value.width} != bus "
                f"width {self._bus.width}"
            )
        self._contribution = value
        self._bus._request_update()

    def release(self) -> None:
        """Stop driving: contribute all-Z."""
        self.write(LogicVector.high_z(self._bus.width))


class ResolvedSignal(UpdateTarget):
    """A multi-driver bus wire with per-bit 0/1/X/Z resolution."""

    def __init__(self, sim: "Simulator", name: str, width: int) -> None:
        super().__init__(sim.scheduler)
        self._sim = sim
        self.name = name
        self.width = width
        self._drivers: dict[str, BusDriver] = {}
        self._value = LogicVector.high_z(width)
        self._changed: Event | None = None

    def __repr__(self) -> str:
        return f"ResolvedSignal({self.name}={self._value})"

    # -- drivers ------------------------------------------------------------

    def get_driver(self, name: str) -> BusDriver:
        """The (per-agent) driver handle called *name*, created on demand."""
        try:
            return self._drivers[name]
        except KeyError:
            driver = BusDriver(self, name)
            self._drivers[name] = driver
            return driver

    @property
    def driver_names(self) -> tuple[str, ...]:
        return tuple(self._drivers)

    # -- access ---------------------------------------------------------------

    def read(self) -> LogicVector:
        return self._value

    @property
    def value(self) -> LogicVector:
        return self._value

    @property
    def changed(self) -> Event:
        if self._changed is None:
            self._changed = Event(self._scheduler, f"{self.name}.changed")
        return self._changed

    # -- update phase ------------------------------------------------------------

    def _perform_update(self) -> None:
        resolved = resolve_vectors(
            self.width, [driver.contribution for driver in self._drivers.values()]
        )
        if resolved == self._value:
            return
        self._value = resolved
        if self._changed is not None:
            self._changed.notify_delta()
        probes = self._sim._probes
        if probes is not None:
            probes.signal_commit(self._scheduler._time, self, resolved)
