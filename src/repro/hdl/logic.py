"""Four-valued scalar logic.

The value set is the simplified IEEE-1164 quartet used by most RTL
simulators: ``0``, ``1``, ``X`` (unknown/conflict) and ``Z``
(high-impedance). ``Z`` participates in bus resolution; in boolean
operators it behaves like ``X``, as in VHDL's ``std_logic``.

The four values are module-level singletons (:data:`L0`, :data:`L1`,
:data:`LX`, :data:`LZ`); ``Logic("1") is L1`` holds.
"""

from __future__ import annotations

from ..errors import LogicValueError

_VALID = ("0", "1", "X", "Z")


class Logic:
    """One scalar logic value. Immutable and interned."""

    __slots__ = ("_char",)
    _instances: dict[str, "Logic"] = {}

    def __new__(cls, value: "Logic | str | int | bool") -> "Logic":
        char = _to_char(value)
        try:
            return cls._instances[char]
        except KeyError:
            instance = super().__new__(cls)
            object.__setattr__(instance, "_char", char)
            cls._instances[char] = instance
            return instance

    # -- representation -----------------------------------------------------

    @property
    def char(self) -> str:
        """The canonical single-character form: '0', '1', 'X' or 'Z'."""
        return self._char

    def __repr__(self) -> str:
        return f"Logic('{self._char}')"

    def __str__(self) -> str:
        return self._char

    def __hash__(self) -> int:
        return hash(self._char)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Logic):
            return self._char == other._char
        if isinstance(other, (int, bool, str)):
            try:
                return self._char == _to_char(other)
            except LogicValueError:
                return NotImplemented
        return NotImplemented

    def __bool__(self) -> bool:
        if self._char == "1":
            return True
        if self._char == "0":
            return False
        raise LogicValueError(f"cannot convert Logic('{self._char}') to bool")

    def to_int(self) -> int:
        """Return 0 or 1; raise :class:`LogicValueError` on X/Z."""
        return 1 if bool(self) else 0

    # -- predicates -----------------------------------------------------------

    @property
    def is_defined(self) -> bool:
        """True for '0' and '1'."""
        return self._char in ("0", "1")

    # -- operators (X/Z propagate as unknown) -----------------------------------

    def __invert__(self) -> "Logic":
        if self._char == "0":
            return L1
        if self._char == "1":
            return L0
        return LX

    def __and__(self, other: "Logic | str | int | bool") -> "Logic":
        other = Logic(other)
        if self._char == "0" or other._char == "0":
            return L0
        if self._char == "1" and other._char == "1":
            return L1
        return LX

    __rand__ = __and__

    def __or__(self, other: "Logic | str | int | bool") -> "Logic":
        other = Logic(other)
        if self._char == "1" or other._char == "1":
            return L1
        if self._char == "0" and other._char == "0":
            return L0
        return LX

    __ror__ = __or__

    def __xor__(self, other: "Logic | str | int | bool") -> "Logic":
        other = Logic(other)
        if self.is_defined and other.is_defined:
            return L1 if self._char != other._char else L0
        return LX

    __rxor__ = __xor__


def _to_char(value: "Logic | str | int | bool") -> str:
    if isinstance(value, Logic):
        return value._char
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        if value in (0, 1):
            return "01"[value]
        raise LogicValueError(f"integer logic value must be 0 or 1, got {value}")
    if isinstance(value, str):
        upper = value.upper()
        if upper in _VALID:
            return upper
        raise LogicValueError(f"invalid logic literal {value!r}")
    raise LogicValueError(f"cannot interpret {value!r} as a logic value")


#: Logic zero.
L0 = Logic("0")
#: Logic one.
L1 = Logic("1")
#: Unknown / conflict.
LX = Logic("X")
#: High impedance.
LZ = Logic("Z")


def resolve(*values: "Logic | str | int | bool") -> Logic:
    """Resolve several drivers of one wire (std_logic resolution, no weaks).

    All Z → Z; exactly one non-Z → that value; conflicting or X drivers → X.
    """
    result = LZ
    for raw in values:
        value = Logic(raw)
        if value._char == "Z":
            continue
        if result._char == "Z":
            result = value
        elif result._char != value._char or value._char == "X":
            return LX
    return result
