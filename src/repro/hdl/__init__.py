"""Hardware modeling layer: logic values, signals, ports, modules, clocks."""

from .bitvector import LogicVector, resolve_vectors
from .clock import Clock, ResetGenerator
from .logic import L0, L1, LX, LZ, Logic, resolve
from .module import Module
from .port import IN, INOUT, OUT, Port
from .resolved import BusDriver, ResolvedSignal
from .signal import Signal

__all__ = [
    "BusDriver",
    "Clock",
    "IN",
    "INOUT",
    "L0",
    "L1",
    "LX",
    "LZ",
    "Logic",
    "LogicVector",
    "Module",
    "OUT",
    "Port",
    "ResetGenerator",
    "ResolvedSignal",
    "Signal",
    "resolve",
    "resolve_vectors",
]
