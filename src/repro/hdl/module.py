"""Hierarchical modules.

:class:`Module` is the structural unit of a design, mirroring
``sc_module``: it owns signals, ports, processes and child modules, and
gives everything a hierarchical name. Subclasses build their contents in
``__init__`` using the declaration helpers (:meth:`signal`,
:meth:`in_port`, :meth:`thread`, ...)::

    class Counter(Module):
        def __init__(self, parent, name):
            super().__init__(parent, name)
            self.clk = self.in_port("clk", width=1)
            self.count = self.signal("count", width=8, init=0)
            self.thread(self._run)

        def _run(self):
            while True:
                yield self.clk.posedge
                self.count.write(self.count.read() + 1)
"""

from __future__ import annotations

import typing

from ..errors import ElaborationError
from ..kernel.event import Event
from ..kernel.process import Process
from ..kernel.simulator import Simulator
from .port import IN, INOUT, OUT, Port
from .resolved import ResolvedSignal
from .signal import Signal


class Module:
    """Base class for all structural design units."""

    def __init__(self, parent: "Module | Simulator", name: str) -> None:
        self.name = name
        if isinstance(parent, Module):
            self.sim: Simulator = parent.sim
            self.parent: "Module | None" = parent
            self.path = f"{parent.path}.{name}"
            parent._children.append(self)
        elif isinstance(parent, Simulator):
            self.sim = parent
            self.parent = None
            self.path = name
            parent._add_top_module(self)
        else:
            raise ElaborationError(
                f"module parent must be a Module or Simulator, got {parent!r}"
            )
        self._children: list[Module] = []
        self._ports: list[Port] = []
        self._processes: list[Process] = []
        self.sim.register_named(self.path, self)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.path})"

    # -- declaration helpers ---------------------------------------------------

    def signal(
        self,
        name: str,
        width: int | None = None,
        init: object = None,
        single_writer: bool = False,
    ) -> Signal:
        """Declare a child signal with hierarchical name ``<path>.<name>``."""
        signal = Signal(
            self.sim, f"{self.path}.{name}", width, init, single_writer
        )
        self.sim.register_named(signal.name, signal)
        return signal

    def resolved_signal(self, name: str, width: int) -> ResolvedSignal:
        """Declare a child tri-state bus wire."""
        signal = ResolvedSignal(self.sim, f"{self.path}.{name}", width)
        self.sim.register_named(signal.name, signal)
        return signal

    def event(self, name: str) -> Event:
        return Event(self.sim.scheduler, f"{self.path}.{name}")

    def in_port(self, name: str, width: int | None = None) -> Port:
        return self._make_port(name, IN, width)

    def out_port(self, name: str, width: int | None = None) -> Port:
        return self._make_port(name, OUT, width)

    def inout_port(self, name: str, width: int | None = None) -> Port:
        return self._make_port(name, INOUT, width)

    def _make_port(self, name: str, direction: str, width: int | None) -> Port:
        port = Port(self.path, name, direction, width)
        self._ports.append(port)
        return port

    def thread(
        self,
        func: typing.Callable[[], object],
        name: str | None = None,
        initialize: bool = True,
    ) -> Process:
        """Register a thread process (a generator method of this module)."""
        label = name or func.__name__.lstrip("_")
        process = Process(
            self.sim.scheduler, f"{self.path}.{label}", func, Process.THREAD
        )
        self.sim.scheduler.register_process(process, initialize=initialize)
        self._processes.append(process)
        return process

    def method(
        self,
        func: typing.Callable[[], object],
        sensitivity: typing.Sequence["Event | Signal | Port"] = (),
        name: str | None = None,
        initialize: bool = True,
    ) -> Process:
        """Register a method process with static *sensitivity*."""
        label = name or func.__name__.lstrip("_")
        process = Process(
            self.sim.scheduler, f"{self.path}.{label}", func, Process.METHOD
        )
        for item in sensitivity:
            process.add_sensitivity(_as_event(item))
        self.sim.scheduler.register_process(process, initialize=initialize)
        self._processes.append(process)
        return process

    # -- hierarchy --------------------------------------------------------------

    @property
    def children(self) -> tuple["Module", ...]:
        return tuple(self._children)

    @property
    def ports(self) -> tuple[Port, ...]:
        return tuple(self._ports)

    def iter_modules(self) -> typing.Iterator["Module"]:
        """Depth-first iteration over this module and all descendants."""
        yield self
        for child in self._children:
            yield from child.iter_modules()

    # -- elaboration ---------------------------------------------------------------

    def _elaborate(self) -> None:
        for port in self._ports:
            if not port.bound:
                raise ElaborationError(f"port {port.path} was never bound")
        for child in self._children:
            child._elaborate()

    def _end_of_elaboration(self) -> None:
        self.end_of_elaboration()
        for child in self._children:
            child._end_of_elaboration()

    def end_of_elaboration(self) -> None:
        """Hook for subclasses; runs once after the hierarchy is final."""


def _as_event(item: "Event | Signal | Port") -> Event:
    if isinstance(item, Event):
        return item
    if isinstance(item, (Signal, Port)):
        return item.changed
    if isinstance(item, ResolvedSignal):
        return item.changed
    raise ElaborationError(f"cannot use {item!r} in a sensitivity list")
