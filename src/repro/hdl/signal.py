"""Single-driver signals with SystemC write semantics.

A :class:`Signal` stages writes during the evaluation phase and commits
them in the update phase, so every process in a delta cycle observes the
same pre-update value. The value type is either

* a :class:`~repro.hdl.bitvector.LogicVector` of fixed ``width`` (writes
  accept ints / string literals and are coerced), or
* an arbitrary Python value when ``width is None`` (booleans, enums,
  transaction objects — useful for functional models).
"""

from __future__ import annotations

import typing

from ..errors import MultipleDriverError, SimulationError
from ..kernel.event import Event
from ..kernel.signal_base import UpdateTarget
from .bitvector import LogicVector
from .logic import Logic

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.simulator import Simulator


class Signal(UpdateTarget):
    """A primitive channel carrying one value with deferred update.

    :param sim: owning simulator.
    :param name: hierarchical name (used in traces).
    :param width: bit width for :class:`LogicVector` signals, or ``None``
        for plain Python values.
    :param init: initial value (defaults to all-X for vectors, ``False``
        otherwise).
    :param single_writer: when true, two different processes writing in
        the same delta cycle raise :class:`MultipleDriverError`.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        width: int | None = None,
        init: object = None,
        single_writer: bool = False,
    ) -> None:
        super().__init__(sim.scheduler)
        self._sim = sim
        self.name = name
        self.width = width
        if width is not None:
            self._value: object = LogicVector(width, init)
        else:
            self._value = False if init is None else init
        self._next = self._value
        self._has_next = False
        self._changed: Event | None = None
        self._posedge: Event | None = None
        self._negedge: Event | None = None
        self._single_writer = single_writer
        self._delta_writer: object = None

    def __repr__(self) -> str:
        return f"Signal({self.name}={self._value!r})"

    # -- events -----------------------------------------------------------

    @property
    def changed(self) -> Event:
        """Event notified (delta) whenever the committed value changes."""
        if self._changed is None:
            self._changed = Event(self._scheduler, f"{self.name}.changed")
        return self._changed

    @property
    def posedge(self) -> Event:
        """Event notified when the value becomes truthy/'1'."""
        if self._posedge is None:
            self._posedge = Event(self._scheduler, f"{self.name}.posedge")
        return self._posedge

    @property
    def negedge(self) -> Event:
        """Event notified when the value becomes falsy/'0'."""
        if self._negedge is None:
            self._negedge = Event(self._scheduler, f"{self.name}.negedge")
        return self._negedge

    # -- access ---------------------------------------------------------------

    def read(self) -> typing.Any:
        """The committed (current) value."""
        return self._value

    @property
    def value(self) -> typing.Any:
        return self._value

    def write(self, value: object) -> None:
        """Stage *value* for commit at the end of the current delta."""
        if self.width is not None and not isinstance(value, LogicVector):
            value = LogicVector(self.width, value)  # type: ignore[arg-type]
        if self._single_writer:
            writer = self._scheduler.current_process
            if (
                self._has_next
                and self._delta_writer is not None
                and writer is not None
                and writer is not self._delta_writer
            ):
                raise MultipleDriverError(
                    f"signal {self.name!r} written by {self._delta_writer!r} "
                    f"and {writer!r} in the same delta cycle"
                )
            self._delta_writer = writer
        self._next = value
        self._has_next = True
        self._request_update()

    def write_after(self, value: object, delay: int) -> None:
        """Schedule a write *delay* femtoseconds in the future.

        Transport-delay semantics: the value is staged when the delay
        elapses, overriding whatever was staged for that delta (later
        schedules for the same instant win, like successive writes).
        """
        if self.width is not None and not isinstance(value, LogicVector):
            value = LogicVector(self.width, value)  # type: ignore[arg-type]
        from ..kernel.simtime import check_delay

        check_delay(delay)
        if delay == 0:
            self.write(value)
            return
        trigger = Event(self._scheduler, f"{self.name}.write_after")
        trigger.add_callback(lambda: self.write(value))
        trigger.notify_after(delay)

    def force(self, value: object) -> None:
        """Set the committed value immediately (test fixtures only)."""
        if self.width is not None and not isinstance(value, LogicVector):
            value = LogicVector(self.width, value)  # type: ignore[arg-type]
        old = self._value
        self._value = value
        self._next = value
        if old != value:
            self._fire_edges(old, value)
            self._sim._notify_trace(self, value)

    # -- update phase -------------------------------------------------------------

    def _perform_update(self) -> None:
        self._delta_writer = None
        if not self._has_next:
            return
        self._has_next = False
        old, new = self._value, self._next
        if old == new:
            return
        self._value = new
        self._fire_edges(old, new)
        # Inline the signal-commit probe: this is the hottest observation
        # point in the kernel, so it must cost one None check when no bus
        # is attached.
        probes = self._sim._probes
        if probes is not None:
            probes.signal_commit(self._scheduler._time, self, new)

    def _fire_edges(self, old: object, new: object) -> None:
        if self._changed is not None:
            self._changed.notify_delta()
        if self._posedge is None and self._negedge is None:
            return
        old_level = _level(old)
        new_level = _level(new)
        if self._posedge is not None and new_level is True and old_level is not True:
            self._posedge.notify_delta()
        if self._negedge is not None and new_level is False and old_level is not False:
            self._negedge.notify_delta()

    # -- convenience -------------------------------------------------------------

    def to_int(self) -> int:
        value = self._value
        if isinstance(value, LogicVector):
            return value.to_int()
        if isinstance(value, Logic):
            return value.to_int()
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        raise SimulationError(f"signal {self.name!r} value {value!r} is not integral")


def _level(value: object) -> bool | None:
    """Map a signal value to a boolean level for edge detection."""
    if isinstance(value, bool):
        return value
    if isinstance(value, Logic):
        if value.char == "1":
            return True
        if value.char == "0":
            return False
        return None
    if isinstance(value, LogicVector):
        if value.width == 1:
            char = value.bit(0).char
            if char == "1":
                return True
            if char == "0":
                return False
        return None
    if isinstance(value, int):
        return bool(value)
    return None
