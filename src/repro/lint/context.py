"""Analysis context over a built (not necessarily elaborated) design.

:class:`DesignContext` wraps a :class:`~repro.kernel.simulator.Simulator`
and precomputes, for every registered process, the facts the module- and
guard-level rules consume:

* which :class:`~repro.hdl.signal.Signal` objects the process writes
  (resolved from ``self.<chain>.write(...)`` call sites against the live
  module instance);
* which :class:`~repro.kernel.event.Event` objects it waits on, notifies
  or lets escape into unanalyzable contexts;
* the ordered sequence of guarded-method channel calls it performs
  (following ``yield from self.helper(...)`` and plain method calls a
  few levels deep, across object boundaries).

Resolution is identity-based: an attribute chain in the source is
resolved with ``getattr`` on the process's bound instance, so aliasing
through ports and nested objects is handled for free, and anything that
cannot be resolved is simply skipped (no false positives from dynamic
code).
"""

from __future__ import annotations

import ast
import typing

from ..hdl.port import Port
from ..hdl.signal import Signal
from ..kernel.event import Event
from ..kernel.process import Process
from ..kernel.simulator import Simulator
from ..osss.global_object import GlobalObject
from . import astutils
from .astutils import UNRESOLVED

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..hdl.module import Module

#: Signal method names that stage a value change.
_WRITE_METHODS = ("write", "write_after", "force")
#: Event method names that fire the event.
_NOTIFY_METHODS = ("notify", "notify_delta", "notify_after")
#: How deep `yield from self.helper()` chains are followed.
_HELPER_DEPTH = 3


class ChannelCall:
    """One guarded-method call site inside a thread."""

    def __init__(self, handle: GlobalObject, method: str, order: int) -> None:
        self.handle = handle
        self.method = method
        self.order = order

    def __repr__(self) -> str:
        return f"ChannelCall({self.handle.path}.{self.method}@{self.order})"


class _ScanContext:
    """Resolution context for one scanned function body."""

    def __init__(self, node: astutils.FunctionNode, instance: object) -> None:
        self.node = node
        self.instance = instance
        self.self_name = astutils.first_arg_name(node)

    def resolve(self, expr: ast.AST) -> object:
        chain = astutils.attr_chain(expr)
        if not chain or chain[0] != self.self_name:
            return UNRESOLVED
        return astutils.resolve_chain(self.instance, chain)


class ProcessInfo:
    """Static facts about one registered kernel process."""

    def __init__(self, process: Process) -> None:
        self.process = process
        self.func = process._func
        self.instance = getattr(self.func, "__self__", None)
        self.node = astutils.callable_ast(self.func)
        self.self_name = (
            astutils.first_arg_name(self.node) if self.node is not None else None
        )
        self.signal_writes: set[int] = set()
        self.signal_write_names: dict[int, str] = {}
        self.event_waits: set[int] = set()
        self.event_notifies: set[int] = set()
        self.event_escapes: set[int] = set()
        self.channel_calls: list[ChannelCall] = []
        self.analyzable = self.node is not None and self.instance is not None
        if self.analyzable:
            self._scan(
                _ScanContext(self.node, self.instance), depth=0, seen=set()
            )

    def _note_signal(self, target: object) -> None:
        if isinstance(target, Port):
            target = target._signal  # may be None pre-binding
        if isinstance(target, Signal):
            self.signal_writes.add(id(target))
            self.signal_write_names[id(target)] = target.name

    # -- AST scan ------------------------------------------------------------

    def _scan(self, ctx: _ScanContext, depth: int, seen: set[int]) -> None:
        for sub in ast.walk(ctx.node):
            if isinstance(sub, ast.YieldFrom):
                self._scan_yield_from(ctx, sub.value, depth, seen)
            elif isinstance(sub, ast.Call):
                self._scan_call(ctx, sub, depth, seen)
            elif isinstance(sub, ast.Yield) and sub.value is not None:
                self._scan_yield(ctx, sub.value)
        # Any event reachable by a resolvable chain that appears outside a
        # recognised wait/notify position is treated as escaping analysis.
        recognised = self.event_waits | self.event_notifies
        for sub in ast.walk(ctx.node):
            if isinstance(sub, ast.Attribute):
                resolved = ctx.resolve(sub)
                if isinstance(resolved, Event) and id(resolved) not in recognised:
                    self.event_escapes.add(id(resolved))

    def _scan_call(
        self, ctx: _ScanContext, call: ast.Call, depth: int, seen: set[int]
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _WRITE_METHODS:
            self._note_signal(ctx.resolve(func.value))
        elif func.attr in _NOTIFY_METHODS:
            resolved = ctx.resolve(func.value)
            if isinstance(resolved, Event):
                self.event_notifies.add(id(resolved))
        else:
            # Plain call: follow into resolvable bound methods so
            # notifies/writes buried in helpers (submit(), transact())
            # are attributed to the calling process.
            self._follow(ctx.resolve(func), depth, seen)

    def _scan_yield(self, ctx: _ScanContext, value: ast.AST) -> None:
        resolved = ctx.resolve(value)
        if isinstance(resolved, Event):
            self.event_waits.add(id(resolved))
            return
        # yield AnyOf(a, b) / AllOf(a, b): the arguments are waited on.
        if isinstance(value, ast.Call):
            callee = value.func
            callee_name = callee.id if isinstance(callee, ast.Name) else (
                callee.attr if isinstance(callee, ast.Attribute) else ""
            )
            if callee_name in ("AnyOf", "AllOf"):
                for arg in value.args:
                    argument = ctx.resolve(arg)
                    if isinstance(argument, Event):
                        self.event_waits.add(id(argument))

    def _scan_yield_from(
        self, ctx: _ScanContext, value: ast.AST, depth: int, seen: set[int]
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        func = value.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = ctx.resolve(func.value)
        if isinstance(receiver, GlobalObject):
            method = func.attr
            if method == "call":
                if value.args and isinstance(value.args[0], ast.Constant) \
                        and isinstance(value.args[0].value, str):
                    method = value.args[0].value
                else:
                    return
            self.channel_calls.append(
                ChannelCall(receiver, method, len(self.channel_calls))
            )
            return
        # yield from obj.helper(...): follow resolvable generator methods,
        # module-local or not (transact() lives on another module).
        self._follow(ctx.resolve(func), depth, seen)

    def _follow(self, resolved: object, depth: int, seen: set[int]) -> None:
        """Recurse into a resolved bound method's body, bounded."""
        if depth >= _HELPER_DEPTH or resolved is UNRESOLVED:
            return
        inner = getattr(resolved, "__func__", resolved)
        code = getattr(inner, "__code__", None)
        if code is None or id(code) in seen:
            return
        helper_node = astutils.callable_ast(inner)
        if helper_node is None:
            return
        helper_instance = getattr(resolved, "__self__", None)
        if helper_instance is None:
            return
        seen.add(id(code))
        self._scan(_ScanContext(helper_node, helper_instance), depth + 1, seen)


class DesignContext:
    """Cached static view of one design for the module/guard rules."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.processes = [ProcessInfo(p) for p in sim.scheduler.processes]
        self.modules: list["Module"] = []
        for top in sim.top_modules:
            self.modules.extend(top.iter_modules())
        self.signals: list[Signal] = [
            obj for __, obj in sim.iter_named() if isinstance(obj, Signal)
        ]
        self.global_objects: list[GlobalObject] = [
            obj for __, obj in sim.iter_named() if isinstance(obj, GlobalObject)
        ]
        self._cache: dict[str, object] = {}

    def cached(self, key: str, factory: typing.Callable[[], object]) -> object:
        """Memoize ``factory()`` under *key* for this context's lifetime.

        Rules running over the same context share expensive derived
        analyses through this (guard group views, channel call sites),
        so each is computed once per lint run instead of once per rule.
        """
        if key not in self._cache:
            self._cache[key] = factory()
        return self._cache[key]

    # -- derived maps ---------------------------------------------------------

    def connection_groups(self) -> list[list[GlobalObject]]:
        """Handles grouped by shared state space, sorted by path."""
        by_root: dict[int, list[GlobalObject]] = {}
        for handle in self.global_objects:
            by_root.setdefault(id(handle._root()), []).append(handle)
        groups = [sorted(h, key=lambda x: x.path) for h in by_root.values()]
        return sorted(groups, key=lambda g: g[0].path)

    def signal_writers(self) -> dict[int, list[ProcessInfo]]:
        """``id(signal) -> processes that statically write it``."""
        writers: dict[int, list[ProcessInfo]] = {}
        for info in self.processes:
            for signal_id in info.signal_writes:
                writers.setdefault(signal_id, []).append(info)
        return writers

    def module_events(self) -> list[tuple["Module", str, Event]]:
        """Module-attribute events, as ``(module, attr_name, event)``."""
        found: list[tuple["Module", str, Event]] = []
        for module in self.modules:
            for attr_name, value in sorted(vars(module).items()):
                if isinstance(value, Event):
                    found.append((module, attr_name, value))
        return found
