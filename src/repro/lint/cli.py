"""``python -m repro lint`` — lint the canonical example platforms.

Builds each checked-in platform (functional, PCI pin-accurate, PCI
post-synthesis, Wishbone), runs the design-level rules over the built
models and the IR-level rules over every synthesized netlist, and exits
non-zero when any error-severity finding survives the suppression list.
This is the command CI runs to keep the examples lint-clean.
"""

from __future__ import annotations

import argparse
import typing

from .diagnostics import LintReport
from .engine import (
    LintConfig,
    LintRuleError,
    default_registry,
    validate_suppressions,
)
from .runner import lint_design, lint_synthesis
from .sarif import render_json, render_sarif

#: Canonical platform labels, in lint order.
TARGETS = ("functional", "pci", "pci-synth", "wishbone", "axi4lite", "tlmgp")


def _workloads(seed: int, n_commands: int):
    from ..core import generate_workload

    return [generate_workload(seed=seed, n_commands=n_commands,
                              address_span=0x400, max_burst=4)]


def _lint_target(
    target: str, config: LintConfig, seed: int, n_commands: int
) -> list[LintReport]:
    from ..flow import build_platform

    workloads = _workloads(seed, n_commands)
    if target == "pci-synth":
        bundle = build_platform(workloads, bus="pci", synthesize=True)
        return [
            lint_design(bundle.handle.sim, config, label=target),
            lint_synthesis(bundle.synthesis, config, label=f"{target} netlists"),
        ]
    if target in ("functional", "pci", "wishbone", "axi4lite", "tlmgp"):
        bundle = build_platform(workloads, bus=target)
        return [lint_design(bundle.handle.sim, config, label=target)]
    raise ValueError(f"unknown lint target {target!r}")


def _split_suppressions(entries: typing.Iterable[str]) -> list[str]:
    result: list[str] = []
    for entry in entries:
        result.extend(part for part in entry.split(",") if part.strip())
    return result


def list_rules() -> str:
    """Human-readable rule catalogue (``--list-rules``)."""
    lines = []
    for rule in default_registry.rules():
        lines.append(
            f"{rule.rule_id}  {rule.default_severity.label():7s} "
            f"{rule.name:22s} [{rule.target}] {rule.description}"
        )
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors",
    )
    parser.add_argument(
        "--suppress", action="append", default=[], metavar="RULE[@GLOB]",
        help="suppress a rule, optionally limited to paths matching the "
             "glob (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--target", action="append", choices=TARGETS, default=None,
        help="platform(s) to lint (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "sarif"), default="table",
        help="output format: human-readable table (default), plain "
             "JSON, or SARIF 2.1.0 for code-scanning upload",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(list_rules())
        return 0
    entries = _split_suppressions(args.suppress)
    try:
        unknown = validate_suppressions(entries)
        if unknown:
            known = sorted(r.rule_id for r in default_registry.rules())
            print(
                "error: unknown rule in --suppress: "
                + ", ".join(repr(u) for u in unknown)
                + f" (known ids: {', '.join(known)})"
            )
            return 2
        config = LintConfig(suppress=entries, strict=args.strict)
    except LintRuleError as exc:
        print(f"error: {exc}")
        return 2
    targets = args.target or list(TARGETS)
    failed = False
    reports: list[LintReport] = []
    for target in targets:
        for report in _lint_target(target, config, args.seed, args.commands):
            reports.append(report)
            if report.has_errors:
                failed = True
    if args.format == "sarif":
        text = render_sarif(reports)
    elif args.format == "json":
        text = render_json(reports)
    else:
        text = "\n".join(report.render() for report in reports)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        for report in reports:
            print(report.summary_line())
    else:
        print(text)
    return 1 if failed else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="static design-rule checks over the example platforms",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--commands", type=int, default=20)
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
