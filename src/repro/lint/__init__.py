"""Static design-rule checking (``repro.lint``).

A rule-based analyzer over the three artefact levels of the flow:

* the elaborated **module hierarchy** (MOD0xx rules — unbound ports,
  write conflicts, dead event waits, combinational loops);
* the **OSSS global objects** (GRD0xx rules — impure guards, statically
  dead guards, cross-object wait cycles, non-bool guards);
* the **synthesis IR** (IR0xx rules — unreachable FSM states, width
  mismatches, undriven storage and wires, driver conflicts).

Entry points: :func:`lint_design`, :func:`lint_rtl_module`,
:func:`lint_synthesis`, and ``python -m repro lint`` on the CLI.
"""

from .diagnostics import Diagnostic, LintReport, Severity, worst_severity
from .engine import (
    CAMPAIGN,
    DESIGN,
    IR,
    LintConfig,
    LintEngine,
    LintRule,
    LintRuleError,
    RuleRegistry,
    Suppression,
    default_registry,
    register,
)
from .context import DesignContext
from .runner import lint_campaign, lint_design, lint_rtl_module, lint_synthesis

__all__ = [
    "CAMPAIGN",
    "DESIGN",
    "IR",
    "DesignContext",
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "LintReport",
    "LintRule",
    "LintRuleError",
    "RuleRegistry",
    "Severity",
    "Suppression",
    "default_registry",
    "lint_campaign",
    "lint_design",
    "lint_rtl_module",
    "lint_synthesis",
    "register",
    "worst_severity",
]
