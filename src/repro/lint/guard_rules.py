"""Guard and arbitration-hazard rules over OSSS global objects (GRD0xx).

The paper's safety argument rests on guards being *pure predicates over
the shared state* that some method eventually makes true. These rules
check exactly that, statically, per connection group:

* **GRD001** — a guard that mutates state or depends on simulation
  objects (signals, ports, events) is impure: its value can change
  between the scheduler's guard evaluation and the method grant.
* **GRD002** — a guard over attributes no method ever writes can never
  change; if it is also false initially, every caller deadlocks.
* **GRD003** — guarded calls whose enabling writers are themselves stuck
  behind guarded calls, cyclically (the classic two-channel deadlock).
* **GRD004** — a guard returning a non-bool (tolerated at runtime when
  0/1-like, see :meth:`GuardedMethodDescriptor.guard_true`, but worth
  fixing at the source).
"""

from __future__ import annotations

import ast
import copy
import typing

from ..hdl.port import Port
from ..hdl.signal import Signal
from ..kernel.event import Event
from ..kernel.process import Process
from ..osss.global_object import GlobalObject
from . import astutils
from .astutils import UNRESOLVED
from .context import DesignContext
from .diagnostics import Diagnostic, Severity
from .engine import DESIGN, LintRule, register


class _GroupView:
    """Pre-chewed facts about one connection group."""

    def __init__(self, handles: list[GlobalObject]) -> None:
        self.handles = handles
        self.root = handles[0]._root()
        self.space = self.root.space
        self.cls = type(self.space.state)
        self.state = self.space.state
        self.path = self.root.path
        self.method_asts = astutils.class_method_asts(self.cls)
        #: method name -> attributes it writes (mutation heuristic).
        self.method_writes: dict[str, set[str]] = {
            name: astutils.self_attr_writes(node)
            for name, node in self.method_asts.items()
            if name != "__init__"
        }
        self._reads_cache: dict[int, set[str] | None] = {}
        self._eval_cache: dict[int, object] = {}

    def guarded(self) -> list[tuple[str, typing.Any]]:
        """``(name, descriptor)`` for methods that carry a guard."""
        return sorted(
            (name, descriptor)
            for name, descriptor in self.space.methods.items()
            if descriptor.guard is not None
        )

    def guard_reads(self, descriptor: typing.Any) -> set[str] | None:
        """State attributes the guard depends on (property-expanded).

        ``None`` when the guard source is unavailable.
        """
        key = id(descriptor)
        if key not in self._reads_cache:
            node = astutils.callable_ast(descriptor.guard)
            self._reads_cache[key] = None if node is None else (
                astutils.expand_guard_reads(
                    self.cls, astutils.self_attr_reads(node)
                )
            )
        return self._reads_cache[key]

    def enabling_writers(self, reads: set[str]) -> set[str]:
        """Methods whose writes intersect the guard's read set."""
        return {
            name
            for name, writes in self.method_writes.items()
            if writes & reads
        }

    def eval_guard(self, descriptor: typing.Any) -> object:
        """Evaluate the guard on a copy of the *initial* state.

        Returns :data:`UNRESOLVED` when the state cannot be copied or the
        guard raises (both mean "cannot tell statically"). The verdict
        is deterministic over the initial state, so it is memoized per
        descriptor (one deepcopy per guard per run, however many rules
        ask).
        """
        key = id(descriptor)
        if key not in self._eval_cache:
            self._eval_cache[key] = self._eval_guard_uncached(descriptor)
        return self._eval_cache[key]

    def _eval_guard_uncached(self, descriptor: typing.Any) -> object:
        try:
            probe = copy.deepcopy(self.state)
        except Exception:
            return UNRESOLVED
        try:
            return descriptor.guard(probe)
        except Exception:
            return UNRESOLVED


def _group_views(design: DesignContext) -> list[_GroupView]:
    """Group views, built once per :class:`DesignContext` and shared by
    every GRD/RES rule through :meth:`DesignContext.cached`."""
    return design.cached(
        "guard.group_views",
        lambda: [_GroupView(handles) for handles in design.connection_groups()],
    )


@register
class ImpureGuardRule(LintRule):
    """A guard mutates state or reads live simulation objects."""

    rule_id = "GRD001"
    name = "impure-guard"
    target = DESIGN
    default_severity = Severity.WARNING
    description = "guards must be pure predicates over the shared state"

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        for group in _group_views(design):
            for method_name, descriptor in group.guarded():
                node = astutils.callable_ast(descriptor.guard)
                if node is None:
                    continue
                path = f"{group.path}.{method_name}"
                for finding in astutils.find_impurities(node):
                    yield self.emit(
                        path,
                        f"guard is impure ({finding.kind}: {finding.detail})",
                        "restrict the guard to reads of plain state "
                        "attributes and pure builtins",
                    )
                for detail in self._simulation_reads(group, node):
                    yield self.emit(
                        path,
                        f"guard reads a simulation object ({detail}); its "
                        "value can change between evaluation and grant",
                        "mirror the signal into a plain attribute updated "
                        "by a method, and guard on that",
                    )

    @staticmethod
    def _simulation_reads(group: _GroupView, node: astutils.FunctionNode
                          ) -> list[str]:
        self_name = astutils.first_arg_name(node)
        found: list[str] = []
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Attribute):
                continue
            chain = astutils.attr_chain(sub)
            if not chain or chain[0] != self_name:
                continue
            resolved = astutils.resolve_chain(group.state, chain)
            if isinstance(resolved, (Signal, Port, Event)):
                found.append(".".join(chain[1:]))
        return sorted(set(found))


@register
class DeadGuardRule(LintRule):
    """A statically-false guard no method can ever make true."""

    rule_id = "GRD002"
    name = "dead-guard"
    target = DESIGN
    default_severity = Severity.ERROR
    description = (
        "a guard over never-written attributes that starts false blocks "
        "every caller forever"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        for group in _group_views(design):
            for method_name, descriptor in group.guarded():
                reads = group.guard_reads(descriptor)
                if reads is None:
                    continue
                writers = group.enabling_writers(reads) if reads else set()
                if writers:
                    continue
                value = group.eval_guard(descriptor)
                if value is UNRESOLVED or value:
                    continue
                what = (
                    "depends on no state attribute" if not reads else
                    "reads only attributes no method writes "
                    f"({', '.join(sorted(reads))})"
                )
                yield self.emit(
                    f"{group.path}.{method_name}",
                    f"guard is false initially and {what}: it can never "
                    "become true (static deadlock)",
                    "make some method of the shared class write the "
                    "guarded attributes, or fix the guard predicate",
                )


@register
class GuardWaitCycleRule(LintRule):
    """Guarded calls that transitively wait on each other (deadlock risk)."""

    rule_id = "GRD003"
    name = "guard-wait-cycle"
    target = DESIGN
    default_severity = Severity.WARNING
    description = (
        "every path that could enable a blocked guard is itself behind a "
        "blocked guard, cyclically"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        sites = self._call_sites(design)
        blocking = [site for site in sites if site["blocking"]]
        if not blocking:
            return
        edges: dict[int, set[int]] = {}
        labels: dict[int, str] = {}
        for site in blocking:
            key = id(site)
            labels[key] = (
                f"{site['info'].process.name} -> "
                f"{site['group'].path}.{site['method']}"
            )
            dependencies = self._dependencies(site, sites)
            if dependencies is None:
                continue
            edges[key] = {id(dep) for dep in dependencies}
        from .module_rules import _find_cycles

        for cycle in _find_cycles(edges):
            chain = sorted(labels[node] for node in cycle)
            yield self.emit(
                chain[0].split(" -> ")[1],
                "potential guard deadlock cycle: " + "; ".join(chain),
                "reorder the calls, or enable one guard from an "
                "always-runnable process",
            )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _call_sites(design: DesignContext) -> list[dict]:
        """Channel call sites, computed once per context (RES001 shares
        this with GRD003 through the context cache)."""
        return design.cached(
            "guard.call_sites",
            lambda: GuardWaitCycleRule._build_call_sites(design),
        )

    @staticmethod
    def _build_call_sites(design: DesignContext) -> list[dict]:
        groups = {id(g.root): g for g in _group_views(design)}
        sites: list[dict] = []
        for info in design.processes:
            if not info.analyzable or info.process.kind != Process.THREAD:
                continue
            for call in info.channel_calls:
                group = groups.get(id(call.handle._root()))
                if group is None:
                    continue
                descriptor = group.space.methods.get(call.method)
                blocking = False
                if descriptor is not None and descriptor.guard is not None:
                    value = group.eval_guard(descriptor)
                    blocking = value is not UNRESOLVED and not value
                sites.append({
                    "info": info,
                    "order": call.order,
                    "group": group,
                    "method": call.method,
                    "descriptor": descriptor,
                    "blocking": blocking,
                })
        return sites

    @staticmethod
    def _dependencies(site: dict, sites: list[dict]) -> "list[dict] | None":
        """Blocking sites *site* waits on; ``None`` when it can proceed."""
        group: _GroupView = site["group"]
        descriptor = site["descriptor"]
        reads = group.guard_reads(descriptor) if descriptor else None
        if not reads:
            return None
        writers = group.enabling_writers(reads)
        # A guarded method cannot enable itself: its body (and therefore
        # its writes) only runs after its own guard has already passed.
        # app_data_get popping the response queue must not make it its
        # own "enabling writer".
        writers.discard(site["method"])
        if not writers:
            return None  # GRD002 territory, not a cycle
        occurrences = [
            other for other in sites
            if other["group"] is group and other["method"] in writers
        ]
        if not occurrences:
            return None
        dependencies: list[dict] = []
        for occurrence in occurrences:
            same_thread = occurrence["info"] is site["info"]
            if same_thread and occurrence["order"] >= site["order"]:
                # The enabler sits behind this very call in program order.
                dependencies.append(site)
                continue
            prefix = [
                other for other in sites
                if other["info"] is occurrence["info"]
                and other["order"] < occurrence["order"]
                and other["blocking"]
            ]
            if not prefix:
                return None  # an unobstructed enabler exists
            dependencies.extend(prefix)
        return dependencies


@register
class NonBoolGuardRule(LintRule):
    """A guard returns something other than a bool."""

    rule_id = "GRD004"
    name = "non-bool-guard"
    target = DESIGN
    default_severity = Severity.WARNING
    description = (
        "guards should return bool; 0/1-like values are coerced at "
        "runtime, everything else raises"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        for group in _group_views(design):
            for method_name, descriptor in group.guarded():
                value = group.eval_guard(descriptor)
                if value is UNRESOLVED or isinstance(value, bool):
                    continue
                path = f"{group.path}.{method_name}"
                try:
                    zero_one_like = (
                        value == int(value) and int(value) in (0, 1)
                    )
                except (TypeError, ValueError, OverflowError):
                    zero_one_like = False
                if zero_one_like:
                    yield self.emit(
                        path,
                        f"guard returns {type(value).__name__} "
                        f"({value!r}), coerced to bool at runtime",
                        "end the guard with a comparison or bool(...)",
                    )
                else:
                    yield self.emit(
                        path,
                        f"guard returns non-boolean {type(value).__name__} "
                        f"({value!r}); the runtime will reject it",
                        "return a bool from the guard predicate",
                    )
