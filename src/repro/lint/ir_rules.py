"""Sanity rules over the synthesis IR (IR0xx).

The :class:`~repro.synthesis.ir.RtlModule` constructors already validate
widths at build time, so these rules mostly guard against *post-
construction* surgery (netlist transformations, hand-patched IR) and
against structural gaps no constructor can see: states the FSM can never
reach, storage nothing clocks, wires nothing drives. They run on every
module right before HDL emission.
"""

from __future__ import annotations

import typing

from ..synthesis import ir
from .diagnostics import Diagnostic, Severity
from .engine import IR, LintRule, register


def _walk_exprs(module: ir.RtlModule) -> typing.Iterator[tuple[str, ir.Expr]]:
    """Every expression site in *module*, as ``(site_label, expr)``."""
    for site in module.iter_expr_sites():
        yield site.label, site.expr


def _referenced_nets(module: ir.RtlModule) -> dict[int, ir.Net]:
    """Nets read by at least one expression, keyed by identity."""
    nets: dict[int, ir.Net] = {}
    for __, expr in _walk_exprs(module):
        for net in expr.referenced_nets():
            nets[id(net)] = net
    return nets


@register
class UnreachableFsmStateRule(LintRule):
    """FSM states no transition path from reset can ever enter."""

    rule_id = "IR001"
    name = "unreachable-fsm-state"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "dead states cost state-register bits and hide intent errors"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for fsm in module.fsms:
            successors: dict[str, set[str]] = {s: set() for s in fsm.states}
            for transition in fsm.transitions:
                successors[transition.source].add(transition.target)
            reachable = {fsm.reset_state}
            frontier = [fsm.reset_state]
            while frontier:
                state = frontier.pop()
                for nxt in successors[state]:
                    if nxt not in reachable:
                        reachable.add(nxt)
                        frontier.append(nxt)
            for state in fsm.states:
                if state not in reachable:
                    yield self.emit(
                        f"{module.name}.{fsm.name}.{state}",
                        "state is unreachable from the reset state "
                        f"{fsm.reset_state!r}",
                        "add a transition into the state or delete it",
                    )


@register
class WidthMismatchRule(LintRule):
    """Expression trees whose cached widths no longer add up."""

    rule_id = "IR002"
    name = "width-mismatch"
    target = IR
    default_severity = Severity.ERROR
    description = (
        "recomputes every expression width bottom-up; catches IR mutated "
        "after construction"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for site, expr in _walk_exprs(module):
            for problem in self._validate(expr):
                yield self.emit(
                    f"{module.name}: {site}",
                    problem,
                    "rebuild the expression instead of mutating it in place",
                )
        for assign in module.assigns:
            if assign.target.width != assign.expr.width:
                yield self.emit(
                    f"{module.name}.{assign.target.name}",
                    f"assign width mismatch: target is {assign.target.width} "
                    f"bits, expression is {assign.expr.width}",
                    "match the driver expression to the net width",
                )
        for clocked in module.clocked_assigns:
            if clocked.target.width != clocked.expr.width:
                yield self.emit(
                    f"{module.name}.{clocked.target.name}",
                    "clocked assign width mismatch: target is "
                    f"{clocked.target.width} bits, expression is "
                    f"{clocked.expr.width}",
                    "match the driver expression to the register width",
                )
            if clocked.enable is not None and clocked.enable.width != 1:
                yield self.emit(
                    f"{module.name}.{clocked.target.name}",
                    f"clocked-assign enable is {clocked.enable.width} bits "
                    "(must be 1)",
                    "reduce the enable to a single bit",
                )
        for fsm in module.fsms:
            for state, outputs in fsm.moore_outputs.items():
                for net, value in outputs:
                    if not 0 <= value < (1 << net.width):
                        yield self.emit(
                            f"{module.name}.{fsm.name}.{state}",
                            f"moore output {value} does not fit "
                            f"{net.width}-bit net {net.name!r}",
                            "widen the net or shrink the output value",
                        )

    def _validate(self, expr: ir.Expr) -> list[str]:
        problems: list[str] = []

        def expect(node: ir.Expr, expected: int, label: str) -> None:
            if node.width != expected:
                problems.append(
                    f"{label} caches width {node.width}, expected {expected}"
                )

        def visit(node: ir.Expr) -> None:
            for child in node.children():
                visit(child)
            if isinstance(node, ir.Const):
                if not 0 <= node.value < (1 << node.width):
                    problems.append(
                        f"constant {node.value} does not fit in "
                        f"{node.width} bits"
                    )
            elif isinstance(node, ir.Ref):
                expect(node, node.net.width, f"ref to {node.net.name!r}")
            elif isinstance(node, ir.UnOp):
                expected = node.operand.width if node.op == "~" else 1
                expect(node, expected, f"unary {node.op!r}")
            elif isinstance(node, ir.BinOp):
                if node.left.width != node.right.width:
                    problems.append(
                        f"binary {node.op!r} operand widths differ: "
                        f"{node.left.width} vs {node.right.width}"
                    )
                expected = (
                    1 if node.op in ("==", "!=", "<") else node.left.width
                )
                expect(node, expected, f"binary {node.op!r}")
            elif isinstance(node, ir.Mux):
                if node.select.width != 1:
                    problems.append(
                        f"mux select is {node.select.width} bits (must be 1)"
                    )
                if node.if_true.width != node.if_false.width:
                    problems.append(
                        f"mux arm widths differ: {node.if_true.width} vs "
                        f"{node.if_false.width}"
                    )
                expect(node, node.if_true.width, "mux")
            elif isinstance(node, ir.BitSelect):
                if not 0 <= node.index < node.operand.width:
                    problems.append(
                        f"bit index {node.index} out of range for width "
                        f"{node.operand.width}"
                    )
                expect(node, 1, "bit select")
            elif isinstance(node, ir.Concat):
                expect(
                    node,
                    sum(part.width for part in node.parts),
                    "concat",
                )

        visit(expr)
        return problems


@register
class UndrivenRegisterRule(LintRule):
    """A register no clocked process ever updates."""

    rule_id = "IR003"
    name = "undriven-register"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "a register with no clocked assign (and no FSM owning it) holds "
        "its reset value forever"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        clocked = {id(c.target) for c in module.clocked_assigns}
        fsm_owned = {id(f.state_register) for f in module.fsms}
        for register in module.registers:
            if id(register) in clocked or id(register) in fsm_owned:
                continue
            held = (
                "X" if register.reset_value is None else register.reset_value
            )
            yield self.emit(
                f"{module.name}.{register.name}",
                "register is never clocked; it will hold its reset value "
                f"({held}) forever",
                "add a clocked assign, or demote it to a constant net",
            )


@register
class UndrivenNetRule(LintRule):
    """A wire is read somewhere but nothing drives it."""

    rule_id = "IR004"
    name = "undriven-net"
    target = IR
    default_severity = Severity.ERROR
    description = (
        "reading an undriven net emits an X/dangling wire in the HDL"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        driven = _driver_counts(module)
        for net in _referenced_nets(module).values():
            if isinstance(net, ir.Register):
                continue  # clocked storage: IR003's concern
            if isinstance(net, ir.Port) and net.direction == "in":
                continue  # driven from outside
            if driven.get(id(net), 0) == 0:
                kind = "output port" if isinstance(net, ir.Port) else "net"
                yield self.emit(
                    f"{module.name}.{net.name}",
                    f"{kind} is read but has no driver",
                    "add a continuous assign or an FSM moore output "
                    "driving it",
                )


@register
class MultiplyDrivenNetRule(LintRule):
    """Two structural drivers contend for the same wire."""

    rule_id = "IR005"
    name = "multiply-driven-net"
    target = IR
    default_severity = Severity.ERROR
    description = "a net may have exactly one structural driver"

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        nets = {id(n): n for n in module.nets}
        nets.update((id(p), p) for p in module.ports)
        for net_id, count in _driver_counts(module).items():
            net = nets.get(net_id)
            if net is None:
                continue
            if isinstance(net, ir.Port) and net.direction == "in":
                if count > 0:
                    yield self.emit(
                        f"{module.name}.{net.name}",
                        "input port is driven from inside the module",
                        "drop the internal driver or flip the port "
                        "direction",
                    )
                continue
            if count > 1:
                yield self.emit(
                    f"{module.name}.{net.name}",
                    f"net has {count} structural drivers",
                    "merge the drivers into one assign (mux the sources)",
                )


def _driver_counts(module: ir.RtlModule) -> dict[int, int]:
    """``id(net) -> number of structural drivers`` (combinational only).

    Each continuous assign counts once; an FSM counts once per driven
    net regardless of how many states set it (its output decoder is one
    mux tree).
    """
    counts: dict[int, int] = {}
    for assign in module.assigns:
        counts[id(assign.target)] = counts.get(id(assign.target), 0) + 1
    for fsm in module.fsms:
        fsm_nets: set[int] = set()
        for outputs in fsm.moore_outputs.values():
            for net, __ in outputs:
                fsm_nets.add(id(net))
        for net_id in fsm_nets:
            counts[net_id] = counts.get(net_id, 0) + 1
    return counts
