"""Structural rules over the elaborated module hierarchy (MOD0xx).

These run on a *built* design — after construction, before (or instead
of) elaboration — so structural mistakes surface as diagnostics with
hierarchical paths rather than as mid-elaboration exceptions or, worse,
silently wrong simulations.
"""

from __future__ import annotations

import typing

from ..kernel.process import Process
from .context import DesignContext, ProcessInfo
from .diagnostics import Diagnostic, Severity
from .engine import DESIGN, LintRule, register


@register
class UnboundPortRule(LintRule):
    """A declared port was never bound to a signal."""

    rule_id = "MOD001"
    name = "unbound-port"
    target = DESIGN
    default_severity = Severity.ERROR
    description = "every port must be bound to a signal before elaboration"

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        for module in design.modules:
            for port in module.ports:
                if not port.bound:
                    yield self.emit(
                        port.path,
                        f"{port.direction} port was never bound",
                        "bind the port to a signal (port.bind(signal)) "
                        "during hierarchy construction",
                    )


@register
class MultipleWriterRule(LintRule):
    """Two different processes statically write a single-writer signal."""

    rule_id = "MOD002"
    name = "multiple-writers"
    target = DESIGN
    default_severity = Severity.ERROR
    description = (
        "a single-writer signal must be driven by exactly one process"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        writers = design.signal_writers()
        for signal in design.signals:
            if not getattr(signal, "_single_writer", False):
                continue
            writing = writers.get(id(signal), [])
            if len(writing) > 1:
                names = ", ".join(sorted(w.process.name for w in writing))
                yield self.emit(
                    signal.name,
                    f"single-writer signal is written by {len(writing)} "
                    f"processes: {names}",
                    "drive the signal from one process, or mux the sources "
                    "explicitly",
                )


@register
class DeadEventWaitRule(LintRule):
    """A process waits on a module event that nothing ever notifies."""

    rule_id = "MOD003"
    name = "dead-event-wait"
    target = DESIGN
    default_severity = Severity.WARNING
    description = (
        "waiting on an event with no notifier suspends the process forever"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        waited: dict[int, list[ProcessInfo]] = {}
        notified: set[int] = set()
        escaped: set[int] = set()
        for info in design.processes:
            if not info.analyzable:
                continue
            for event_id in info.event_waits:
                waited.setdefault(event_id, []).append(info)
            notified |= info.event_notifies
            escaped |= info.event_escapes
        for module, attr_name, event in design.module_events():
            event_id = id(event)
            if event_id not in waited:
                continue
            if event_id in notified or event_id in escaped:
                continue
            waiters = ", ".join(
                sorted(w.process.name for w in waited[event_id])
            )
            yield self.emit(
                event.name or f"{module.path}.{attr_name}",
                f"event is waited on (by {waiters}) but never notified",
                "notify the event from some process, or remove the wait",
            )


@register
class CombinationalLoopRule(LintRule):
    """Zero-delay method processes form a feedback loop through signals."""

    rule_id = "MOD004"
    name = "combinational-loop"
    target = DESIGN
    default_severity = Severity.ERROR
    description = (
        "method processes whose writes re-trigger their own sensitivity "
        "loop forever within one time step"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        # Map each signal's change/edge events back to the signal so a
        # method's sensitivity list can be expressed in signal identities.
        event_to_signal: dict[int, object] = {}
        for signal in design.signals:
            for attr in ("_changed", "_posedge", "_negedge"):
                event = getattr(signal, attr, None)
                if event is not None:
                    event_to_signal[id(event)] = signal

        methods = [
            info for info in design.processes
            if info.analyzable and info.process.kind == Process.METHOD
        ]
        reads: dict[int, set[int]] = {}    # id(info) -> sensitivity signal ids
        writes: dict[int, set[int]] = {}
        for info in methods:
            sensitivity: set[int] = set()
            for event in info.process._static_sensitivity:
                signal = event_to_signal.get(id(event))
                if signal is not None:
                    sensitivity.add(id(signal))
            reads[id(info)] = sensitivity
            writes[id(info)] = set(info.signal_writes)

        # Edge P -> Q when P writes a signal Q is sensitive to.
        edges: dict[int, set[int]] = {id(info): set() for info in methods}
        by_id = {id(info): info for info in methods}
        for producer in methods:
            for consumer in methods:
                if writes[id(producer)] & reads[id(consumer)]:
                    edges[id(producer)].add(id(consumer))

        for cycle in _find_cycles(edges):
            names = [by_id[node].process.name for node in cycle]
            anchor = min(names)
            yield self.emit(
                anchor,
                "combinational loop through zero-delay method processes: "
                + " -> ".join(sorted(names)),
                "break the loop with a registered (clocked) stage or "
                "convert one process to a thread with an explicit wait",
            )


@register
class InterfaceElementShapeRule(LintRule):
    """A library interface element drifted from the base contract."""

    rule_id = "MOD005"
    name = "interface-element-shape"
    target = DESIGN
    default_severity = Severity.ERROR
    description = (
        "an InterfaceElement must carry library tags, own exactly one "
        "channel global object, and run at least one protocol process"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        from ..iface.element import InterfaceElement
        from ..osss.global_object import GlobalObject

        for module in design.modules:
            if not isinstance(module, InterfaceElement):
                continue
            if module.BUS_NAME == "abstract" or module.ABSTRACTION == "abstract":
                yield self.emit(
                    module.path,
                    "element keeps the abstract BUS_NAME/ABSTRACTION tags",
                    "set the BUS_NAME and ABSTRACTION class attributes so "
                    "the interface library can index the element",
                )
            channels = [
                value for __, value in sorted(vars(module).items())
                if isinstance(value, GlobalObject)
            ]
            named = [c for c in channels if c.name == "channel"]
            if len(named) != 1:
                yield self.emit(
                    module.path,
                    f"element owns {len(named)} global objects named "
                    f"'channel' (expected exactly 1)",
                    "keep the application-facing channel the base class "
                    "creates; add protocol state as plain attributes, not "
                    "extra channels",
                )
            extras = [c for c in channels if c.name != "channel"]
            if extras:
                paths = ", ".join(c.path for c in extras)
                yield self.emit(
                    module.path,
                    f"element owns extra global objects: {paths}",
                    "an interface element exposes exactly one channel "
                    "towards the application; move other shared objects "
                    "out of the element",
                )
            owned = [
                info for info in design.processes
                if info.instance is module
            ]
            if not owned:
                yield self.emit(
                    module.path,
                    "element registers no process of its own",
                    "spawn the protocol dispatcher (self.thread(...)) in "
                    "the element's __init__",
                )


def _find_cycles(edges: dict[int, set[int]]) -> list[tuple[int, ...]]:
    """Strongly connected components with >1 node, plus self-loops."""
    index_counter = [0]
    stack: list[int] = []
    lowlink: dict[int, int] = {}
    index: dict[int, int] = {}
    on_stack: set[int] = set()
    cycles: list[tuple[int, ...]] = []

    def strongconnect(node: int) -> None:
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for successor in edges.get(node, ()):
            if successor not in index:
                strongconnect(successor)
                lowlink[node] = min(lowlink[node], lowlink[successor])
            elif successor in on_stack:
                lowlink[node] = min(lowlink[node], index[successor])
        if lowlink[node] == index[node]:
            component: list[int] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            if len(component) > 1 or node in edges.get(node, ()):
                cycles.append(tuple(component))

    for node in list(edges):
        if node not in index:
            strongconnect(node)
    return cycles
