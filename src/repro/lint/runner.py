"""High-level lint entry points.

These are what the flow, the synthesis tool and the CLI call:

* :func:`lint_design` — run the module- and guard-level rules over a
  built :class:`~repro.kernel.simulator.Simulator`;
* :func:`lint_rtl_module` — run the IR rules over one
  :class:`~repro.synthesis.ir.RtlModule`;
* :func:`lint_synthesis` — run the IR rules over every netlist of a
  :class:`~repro.synthesis.tool.SynthesisResult`;
* :func:`lint_campaign` — run the FLT rules over a fault
  :class:`~repro.fault.spec.CampaignSpec` before spending runs on it.

Importing this module pulls in the rule modules, which register into the
default registry as a side effect.
"""

from __future__ import annotations

import typing

from ..kernel.simulator import Simulator
from .context import DesignContext
from .diagnostics import LintReport
from .engine import CAMPAIGN, DESIGN, IR, LintConfig, LintEngine, RuleRegistry
from . import fault_rules as _fault_rules    # noqa: F401  (rule registration)
from . import fsm_rules as _fsm_rules        # noqa: F401
from . import guard_rules as _guard_rules    # noqa: F401
from . import ir_rules as _ir_rules          # noqa: F401
from . import module_rules as _module_rules  # noqa: F401
from . import net_rules as _net_rules        # noqa: F401
from . import race_rules as _race_rules      # noqa: F401
from . import resilience_rules as _resilience_rules  # noqa: F401

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fault.spec import CampaignSpec
    from ..synthesis.ir import RtlModule
    from ..synthesis.tool import SynthesisResult


def lint_design(
    sim: Simulator,
    config: LintConfig | None = None,
    registry: RuleRegistry | None = None,
    label: str = "design",
) -> LintReport:
    """Run every design-level rule over a built simulator."""
    engine = LintEngine(config, registry)
    return engine.run(DesignContext(sim), DESIGN, label)


def lint_rtl_module(
    module: "RtlModule",
    config: LintConfig | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Run every IR-level rule over one synthesized netlist."""
    engine = LintEngine(config, registry)
    return engine.run(module, IR, module.name)


def lint_campaign(
    spec: "CampaignSpec",
    config: LintConfig | None = None,
    registry: RuleRegistry | None = None,
) -> LintReport:
    """Run the campaign rules (FLT0xx) over a fault campaign spec.

    Builds one probe instance of the campaign's platform to resolve the
    target globs and enumerate the observers; nothing is simulated.
    """
    from ..fault.campaign import build_campaign_platform
    from .fault_rules import CampaignContext

    bundle = build_campaign_platform(spec)
    engine = LintEngine(config, registry)
    return engine.run(CampaignContext(spec, bundle), CAMPAIGN, spec.name)


def lint_synthesis(
    result: "SynthesisResult",
    config: LintConfig | None = None,
    registry: RuleRegistry | None = None,
    label: str = "synthesis",
) -> LintReport:
    """Run the IR rules over every netlist a synthesis run produced."""
    engine = LintEngine(config, registry)
    report = LintReport(label)
    for group in result.groups:
        modules = [group.channel_ir, group.object_ir, *group.dispatch_irs]
        for module in modules:
            report.extend(engine.run(module, IR, module.name))
    return report
