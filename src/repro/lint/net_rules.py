"""Netlist dataflow rules over the synthesis IR (NET0xx).

These run off the :mod:`repro.analyze` driver/reader graph and cover
the hazards the constructor-level IR0xx rules cannot see: conflicting
driver *kinds* on one net (NET001), dead driven-but-unread wires
(NET002), combinational loops (NET003) and X-propagation from unreset
registers to primary outputs (NET004). Like every IR rule they run
automatically right before HDL emission and inside
``python -m repro analyze``.
"""

from __future__ import annotations

import typing

from ..analyze.graph import NetGraph
from ..analyze.schedule import levelize
from ..analyze.xprop import find_x_propagation
from ..synthesis import ir
from .diagnostics import Diagnostic, Severity
from .engine import IR, LintRule, register


@register
class DriverConflictRule(LintRule):
    """Conflicting driver kinds (or widths) contending for one net."""

    rule_id = "NET001"
    name = "driver-conflict"
    target = IR
    default_severity = Severity.ERROR
    description = (
        "a net must be driven by one kind of logic: combinational "
        "drivers, one clocked process, or one FSM — never a mix"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        graph = NetGraph(module)
        for net in graph.nets():
            drivers = graph.drivers_of(net)
            if len(drivers) < 2 and not any(
                d.kind in ("assign", "fsm-output")
                and isinstance(net, ir.Register)
                for d in drivers
            ):
                continue
            comb = [d for d in drivers if d.is_combinational]
            seq = [d for d in drivers if not d.is_combinational]
            if comb and seq:
                yield self.emit(
                    f"{module.name}.{net.name}",
                    "net is driven both combinationally "
                    f"({', '.join(d.label for d in comb)}) and by clocked "
                    f"logic ({', '.join(d.label for d in seq)})",
                    "pick one driver kind; mux the sources into it",
                )
                continue
            if comb and isinstance(net, ir.Register):
                yield self.emit(
                    f"{module.name}.{net.name}",
                    "register is driven by combinational logic "
                    f"({', '.join(d.label for d in comb)})",
                    "drive registers from clocked assigns only",
                )
            if len(seq) > 1:
                yield self.emit(
                    f"{module.name}.{net.name}",
                    f"register has {len(seq)} clocked drivers "
                    f"({', '.join(d.label for d in seq)}); last writer "
                    "wins in simulation, synthesis gives a short",
                    "merge the clocked assigns into one (mux on the "
                    "enables)",
                )
            widths = {
                d.expr_width for d in drivers if d.expr_width is not None
            }
            if len(widths) > 1:
                yield self.emit(
                    f"{module.name}.{net.name}",
                    f"{len(drivers)} drivers disagree on width: "
                    f"{sorted(widths)} bits onto a {net.width}-bit net",
                    "make every driver produce the net's width",
                )


@register
class UnreadNetRule(LintRule):
    """A wire is driven but nothing ever reads it (dead logic)."""

    rule_id = "NET002"
    name = "unread-net"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "a driven wire with no reader is dead logic; registers are "
        "storage (IR003/IR005 territory) and ports face outward"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        graph = NetGraph(module)
        for net in module.nets:
            if isinstance(net, (ir.Register, ir.Port)):
                continue
            if not graph.drivers_of(net):
                continue  # IR004's concern
            if graph.readers_of(net):
                continue
            yield self.emit(
                f"{module.name}.{net.name}",
                "net is driven but never read by any expression",
                "delete the net and its driver, or wire it to a reader",
            )


@register
class CombLoopRule(LintRule):
    """The combinational netlist has a cycle: no evaluation order exists."""

    rule_id = "NET003"
    name = "comb-loop"
    target = IR
    default_severity = Severity.ERROR
    description = (
        "a combinational cycle oscillates or latches; the netlist "
        "cannot be levelized into an evaluation schedule"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        result = levelize(module)
        for loop in result.loops:
            yield self.emit(
                f"{module.name}.{loop.nets[0].name}",
                f"combinational loop: {loop.describe()}",
                "break the cycle with a register, or restructure the "
                "priority logic",
            )


@register
class XPropagationRule(LintRule):
    """An unreset register's X reaches a primary output."""

    rule_id = "NET004"
    name = "x-propagation"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "registers without a reset assign power up unknown; outputs "
        "computed from them expose X to the neighbours right after "
        "reset"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for finding in find_x_propagation(module):
            yield self.emit(
                f"{module.name}.{finding.port.name}",
                f"output is X after reset: register "
                f"{finding.source.name!r} has no reset assign and "
                f"reaches the port via {finding.describe_path()}",
                f"give {finding.source.name!r} a reset value, or gate "
                "the output until it is first written",
                extra={"source": finding.source.name,
                       "path": finding.describe_path()},
            )
