"""Source-level introspection helpers shared by the lint rules.

The static rules reason about *Python functions as hardware
descriptions*: process bodies, guard lambdas and shared-class methods.
This module turns live callables back into ``ast`` nodes (parsing each
source file once) and extracts the facts the rules need — attribute
reads/writes, ``self.<chain>`` resolution against a live instance,
mutation heuristics for purity checking.

Everything here is best-effort: builtins, C extensions and exec'd code
have no retrievable source, in which case helpers return ``None`` /
empty results and the rules silently skip the object (a lint pass must
never crash on code it cannot see).
"""

from __future__ import annotations

import ast
import inspect
import typing

#: Sentinel for "the attribute chain could not be resolved".
UNRESOLVED = object()

#: Method names treated as mutating their receiver (purity heuristic).
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "remove", "discard", "pop", "popleft", "clear", "update",
    "setdefault", "sort", "reverse", "write", "write_after", "force",
    "notify", "notify_delta", "notify_after", "push", "put", "submit",
})

#: Builtins a guard may call and remain pure.
PURE_BUILTINS = frozenset({
    "len", "bool", "int", "float", "abs", "min", "max", "sum", "all",
    "any", "isinstance", "issubclass", "getattr", "hasattr", "tuple",
    "sorted", "repr", "str", "id", "type", "round", "divmod", "ord",
})

_module_ast_cache: dict[str, "ast.Module | None"] = {}

#: Counters behind ``benchmarks/bench_lint_parse.py``: how many source
#: files were actually parsed and how many whole-module AST walks
#: ``callable_ast`` performed (vs. answered from its memo). Snapshot
#: with :func:`parse_counters` before/after a run and diff.
parse_stats = {"module_parses": 0, "ast_walks": 0, "cache_hits": 0}


def parse_counters() -> dict[str, int]:
    """A snapshot copy of :data:`parse_stats`."""
    return dict(parse_stats)


def _module_ast(filename: str) -> "ast.Module | None":
    if filename not in _module_ast_cache:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                _module_ast_cache[filename] = ast.parse(handle.read())
            parse_stats["module_parses"] += 1
        except (OSError, SyntaxError, ValueError):
            _module_ast_cache[filename] = None
    return _module_ast_cache[filename]


FunctionNode = typing.Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: ``code object -> resolved AST node``: one whole-module walk per
#: distinct function, ever, no matter how many rules ask. Keyed by the
#: code object (not the callable) so every bound method of a class and
#: each re-wrapped descriptor of the same function hit one entry.
_callable_ast_cache: dict[typing.Any, "FunctionNode | None"] = {}


def callable_ast(func: typing.Callable) -> FunctionNode | None:
    """The AST node defining *func* (function, method or lambda).

    Works for lambdas buried in decorator expressions by parsing the
    whole source file and matching on name/line instead of relying on
    ``inspect.getsource`` (which returns unparseable fragments there).
    Results are memoized per code object.
    """
    func = inspect.unwrap(func)
    func = getattr(func, "__func__", func)
    code = getattr(func, "__code__", None)
    if code is None:
        return None
    if code in _callable_ast_cache:
        parse_stats["cache_hits"] += 1
        return _callable_ast_cache[code]
    filename = code.co_filename
    tree = _module_ast(filename)
    if tree is None:
        _callable_ast_cache[code] = None
        return None
    parse_stats["ast_walks"] += 1
    lineno = code.co_firstlineno
    is_lambda = func.__name__ == "<lambda>"
    best: FunctionNode | None = None
    best_distance = 1 << 30
    for node in ast.walk(tree):
        if is_lambda:
            if not isinstance(node, ast.Lambda):
                continue
        else:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name != func.__name__:
                continue
        anchor_lines = [node.lineno]
        if not isinstance(node, ast.Lambda):
            anchor_lines += [d.lineno for d in node.decorator_list]
        distance = min(abs(line - lineno) for line in anchor_lines)
        if distance < best_distance:
            best, best_distance = node, distance
    # Only accept a close match; distant same-named functions are not it.
    result = best if best is not None and best_distance <= 2 else None
    _callable_ast_cache[code] = result
    return result


def first_arg_name(node: FunctionNode) -> str | None:
    """Name of the function's first positional argument (its ``self``)."""
    args = node.args.posonlyargs + node.args.args
    return args[0].arg if args else None


def body_nodes(node: FunctionNode) -> list[ast.AST]:
    if isinstance(node, ast.Lambda):
        return [node.body]
    return list(node.body)


def attr_chain(node: ast.AST) -> list[str] | None:
    """``self.a.b`` -> ``["self", "a", "b"]``; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def resolve_chain(instance: object, chain: typing.Sequence[str]) -> object:
    """Walk ``chain[1:]`` attribute accesses on *instance*.

    The first element is the function's self-name and is skipped. Returns
    :data:`UNRESOLVED` when any step fails (including raising properties).
    """
    target = instance
    for name in chain[1:]:
        try:
            target = getattr(target, name)
        except Exception:
            return UNRESOLVED
    return target


def self_attr_reads(node: FunctionNode, self_name: str | None = None) -> set[str]:
    """First-level attribute names read off the self argument."""
    if self_name is None:
        self_name = first_arg_name(node)
    if self_name is None:
        return set()
    reads: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == self_name
        ):
            reads.add(sub.attr)
    return reads


def self_attr_writes(node: FunctionNode, self_name: str | None = None) -> set[str]:
    """Attributes assigned, aug-assigned, deleted or mutated-in-place.

    ``self.x = ...``, ``self.x += ...`` and ``self.x.append(...)`` all
    count as writes of ``x`` (the last via the mutating-call heuristic).
    """
    if self_name is None:
        self_name = first_arg_name(node)
    if self_name is None:
        return set()

    def direct_attr(target: ast.AST) -> str | None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            return target.attr
        return None

    writes: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                for leaf in ast.walk(target):
                    attr = direct_attr(leaf)
                    if attr:
                        writes.add(attr)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            attr = direct_attr(sub.target)
            if attr:
                writes.add(attr)
        elif isinstance(sub, ast.Delete):
            for target in sub.targets:
                attr = direct_attr(target)
                if attr:
                    writes.add(attr)
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            if sub.func.attr in MUTATING_METHODS:
                chain = attr_chain(sub.func.value)
                if chain and chain[0] == self_name and len(chain) >= 2:
                    writes.add(chain[1])
    return writes


class MutationFinding:
    """One impurity detected inside a guard expression."""

    def __init__(self, kind: str, detail: str) -> None:
        self.kind = kind       # "assignment" | "mutating-call" | "call"
        self.detail = detail

    def __repr__(self) -> str:
        return f"MutationFinding({self.kind}: {self.detail})"


def find_impurities(node: FunctionNode) -> list[MutationFinding]:
    """Constructs that make a guard expression impure.

    Guards must be pure predicates over the shared state: no assignments
    (walrus included), no calls to mutating methods, no calls to
    functions outside a small pure-builtin whitelist.
    """
    findings: list[MutationFinding] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.NamedExpr):
            findings.append(MutationFinding(
                "assignment", ast.unparse(sub.target)
            ))
        elif isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Attribute):
                if sub.func.attr in MUTATING_METHODS:
                    findings.append(MutationFinding(
                        "mutating-call", ast.unparse(sub.func)
                    ))
            elif isinstance(sub.func, ast.Name):
                if sub.func.id not in PURE_BUILTINS:
                    findings.append(MutationFinding(
                        "call", sub.func.id
                    ))
    return findings


def class_method_asts(cls: type) -> dict[str, FunctionNode]:
    """ASTs of every plain method and guarded-method body of *cls*."""
    from ..osss.guarded_method import GuardedMethodDescriptor

    result: dict[str, FunctionNode] = {}
    for klass in reversed(cls.__mro__):
        if klass is object:
            continue
        for name, attr in vars(klass).items():
            func: typing.Callable | None = None
            if isinstance(attr, GuardedMethodDescriptor):
                func = attr.func
            elif inspect.isfunction(attr):
                func = attr
            if func is None:
                continue
            node = callable_ast(func)
            if node is not None:
                result[name] = node
    return result


def class_property_asts(cls: type) -> dict[str, FunctionNode]:
    """ASTs of every property getter of *cls* (guards read these)."""
    result: dict[str, FunctionNode] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, property) and attr.fget is not None:
                node = callable_ast(attr.fget)
                if node is not None:
                    result[name] = node
    return result


def expand_guard_reads(cls: type, reads: set[str]) -> set[str]:
    """Close *reads* over property getters: a guard reading a property
    really depends on the data attributes the getter reads."""
    properties = class_property_asts(cls)
    expanded = set(reads)
    frontier = list(reads)
    while frontier:
        name = frontier.pop()
        getter = properties.get(name)
        if getter is None:
            continue
        for dependency in self_attr_reads(getter):
            if dependency not in expanded:
                expanded.add(dependency)
                frontier.append(dependency)
    return expanded
