"""Structured lint diagnostics.

A :class:`Diagnostic` records one design-rule finding: the rule that
fired, its severity, the hierarchical path of the offending object, a
human-readable message and (where the rule can tell) a fix hint. A
:class:`LintReport` collects the diagnostics of one analysis run and
renders them compiler-style::

    error[MOD001] top.consumer.data_in: port was never bound
        hint: bind the port to a signal before elaboration
"""

from __future__ import annotations

import enum
import typing


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def label(self) -> str:
        return {
            Severity.INFO: "info",
            Severity.WARNING: "warning",
            Severity.ERROR: "error",
        }[self]


class Diagnostic:
    """One design-rule finding.

    :param rule_id: stable identifier (e.g. ``"MOD001"``).
    :param severity: effective severity after engine adjustments.
    :param path: hierarchical path of the offending design object.
    :param message: what is wrong.
    :param hint: how to fix it (optional).
    :param rule_name: the rule's symbolic name (e.g. ``"unbound-port"``).
    :param extra: machine-readable facts about the finding (e.g. the
        raced signal name) for downstream tooling; JSON-serializable.
    """

    def __init__(
        self,
        rule_id: str,
        severity: Severity,
        path: str,
        message: str,
        hint: str = "",
        rule_name: str = "",
        extra: typing.Mapping[str, typing.Any] | None = None,
    ) -> None:
        self.rule_id = rule_id
        self.severity = severity
        self.path = path
        self.message = message
        self.hint = hint
        self.rule_name = rule_name
        self.extra: dict[str, typing.Any] = dict(extra or {})

    def to_dict(self) -> dict[str, typing.Any]:
        """JSON-ready form (used by ``--format json`` and SARIF)."""
        payload: dict[str, typing.Any] = {
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "severity": self.severity.label(),
            "path": self.path,
            "message": self.message,
            "hint": self.hint,
        }
        if self.extra:
            payload["extra"] = dict(self.extra)
        return payload

    def render(self) -> str:
        lines = [f"{self.severity.label()}[{self.rule_id}] {self.path}: {self.message}"]
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Diagnostic({self.rule_id}, {self.severity.label()}, "
            f"{self.path!r}, {self.message!r})"
        )


class LintReport:
    """The outcome of one lint run: kept diagnostics plus suppression stats."""

    def __init__(self, subject: str = "design") -> None:
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []
        self.suppressed = 0
        #: Rule ids the engine actually evaluated (for --list-rules style output).
        self.rules_run: list[str] = []

    # -- collection ---------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintReport") -> None:
        """Merge *other*'s findings into this report."""
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        for rule_id in other.rules_run:
            if rule_id not in self.rules_run:
                self.rules_run.append(rule_id)

    # -- queries ------------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def clean(self) -> bool:
        """No diagnostics of any severity survived."""
        return not self.diagnostics

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule_id == rule_id]

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}`` over kept diagnostics."""
        counts = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity.label()] += 1
        return counts

    # -- rendering ----------------------------------------------------------

    def summary_line(self) -> str:
        counts = self.counts()
        parts = [f"{n} {label}{'s' if n != 1 else ''}"
                 for label, n in (("error", counts["error"]),
                                  ("warning", counts["warning"]),
                                  ("info", counts["info"]))
                 if n]
        body = ", ".join(parts) if parts else "clean"
        if self.suppressed:
            body += f" ({self.suppressed} suppressed)"
        return f"lint {self.subject}: {body}"

    def render(self) -> str:
        lines = [self.summary_line()]
        for diagnostic in sorted(
            self.diagnostics,
            key=lambda d: (-int(d.severity), d.rule_id, d.path),
        ):
            lines.append(diagnostic.render())
        return "\n".join(lines)

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"LintReport({self.subject}: {counts['error']}E "
            f"{counts['warning']}W {counts['info']}I)"
        )


def worst_severity(diagnostics: typing.Iterable[Diagnostic]) -> Severity | None:
    items = list(diagnostics)
    if not items:
        return None
    return max(d.severity for d in items)
