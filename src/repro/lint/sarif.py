"""SARIF 2.1.0 rendering of lint/analysis reports.

Static Analysis Results Interchange Format — the JSON dialect GitHub
code scanning ingests. One run per report; every distinct rule that
fired becomes a ``tool.driver.rules`` entry, every diagnostic a
``result`` whose location carries the hierarchical design path as a
logical location (design objects have no file/line, which SARIF
handles via ``logicalLocations``).
"""

from __future__ import annotations

import json
import typing

from .diagnostics import Diagnostic, LintReport, Severity

#: SARIF result levels by diagnostic severity.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_entry(diagnostic: Diagnostic) -> dict:
    entry: dict = {"id": diagnostic.rule_id}
    if diagnostic.rule_name:
        entry["name"] = diagnostic.rule_name
    if diagnostic.hint:
        entry["help"] = {"text": diagnostic.hint}
    return entry


def _result(diagnostic: Diagnostic, rule_index: int) -> dict:
    message = diagnostic.message
    if diagnostic.hint:
        message += f" (hint: {diagnostic.hint})"
    result: dict = {
        "ruleId": diagnostic.rule_id,
        "ruleIndex": rule_index,
        "level": _LEVELS[diagnostic.severity],
        "message": {"text": message},
        "locations": [{
            "logicalLocations": [{
                "fullyQualifiedName": diagnostic.path,
            }],
        }],
    }
    if diagnostic.extra:
        result["properties"] = dict(diagnostic.extra)
    return result


def sarif_log(
    reports: typing.Iterable[LintReport],
    tool_name: str = "repro-lint",
) -> dict:
    """One SARIF log with one run covering all *reports*."""
    rules: list[dict] = []
    rule_index: dict[str, int] = {}
    results: list[dict] = []
    for report in reports:
        for diagnostic in report.diagnostics:
            index = rule_index.get(diagnostic.rule_id)
            if index is None:
                index = len(rules)
                rule_index[diagnostic.rule_id] = index
                rules.append(_rule_entry(diagnostic))
            results.append(_result(diagnostic, index))
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": tool_name,
                    "informationUri": "https://example.invalid/repro",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(
    reports: typing.Iterable[LintReport],
    tool_name: str = "repro-lint",
) -> str:
    """The SARIF log as an indented JSON string."""
    return json.dumps(sarif_log(reports, tool_name), indent=2)


def render_json(reports: typing.Iterable[LintReport]) -> str:
    """Plain-JSON rendering: one object per report, stable field names."""
    payload = [
        {
            "subject": report.subject,
            "counts": report.counts(),
            "suppressed": report.suppressed,
            "rules_run": list(report.rules_run),
            "diagnostics": [d.to_dict() for d in report.diagnostics],
        }
        for report in reports
    ]
    return json.dumps(payload, indent=2)
