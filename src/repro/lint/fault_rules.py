"""Fault-campaign rules (FLT0xx).

These run over a :class:`CampaignContext` — a declarative
:class:`~repro.fault.spec.CampaignSpec` paired with a probe build of its
platform — and catch campaign specifications that cannot produce useful
coverage numbers before a single faulty run is spent.
"""

from __future__ import annotations

import typing

from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal
from .diagnostics import Diagnostic, Severity
from .engine import CAMPAIGN, LintRule, register

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..fault.spec import CampaignSpec
    from ..flow.platforms import PlatformBundle


def _signals_of(obj: object) -> list:
    """All Signal/ResolvedSignal attributes of a design object."""
    found = []
    for value in vars(obj).values():
        if isinstance(value, (Signal, ResolvedSignal)):
            found.append(value)
    return found


class CampaignContext:
    """One campaign spec resolved against a probe build of its platform."""

    def __init__(self, spec: "CampaignSpec", bundle: "PlatformBundle") -> None:
        self.spec = spec
        self.bundle = bundle
        self.sim = bundle.handle.sim
        from ..fault.campaign import injectable_targets

        self.signal_paths, self.channel_paths = injectable_targets(bundle)

    def observed_signal_paths(self) -> set:
        """Signals some runtime checker actually watches.

        Two observer families exist today:

        * bus monitors — any design object carrying both a
          ``violations`` list and a ``bus``; every wire of that bus is
          under its eye;
        * invariant/one-hot checkers — objects with a ``watched``
          signal (or list of signals).
        """
        observed: set = set()
        for __, obj in self.sim.iter_named():
            if hasattr(obj, "violations") and hasattr(obj, "bus"):
                for signal in _signals_of(obj.bus):
                    observed.add(signal.name)
            watched = getattr(obj, "watched", None)
            if isinstance(watched, (Signal, ResolvedSignal)):
                observed.add(watched.name)
            elif isinstance(watched, (list, tuple)):
                for signal in watched:
                    if isinstance(signal, (Signal, ResolvedSignal)):
                        observed.add(signal.name)
        return observed


@register
class UnobservedFaultTargetRule(LintRule):
    """FLT001: a signal-fault line no runtime checker can ever see.

    A fault injected on a wire that neither a bus monitor nor an
    invariant checker observes can only ever classify as *silent* or
    *benign* — the campaign spends runs proving a detection gap that is
    already knowable statically. Either the fault line or the
    platform's checker set should change.
    """

    rule_id = "FLT001"
    name = "unobserved-fault-target"
    target = CAMPAIGN
    default_severity = Severity.WARNING
    description = (
        "a campaign fault line targets only signals that no checker or "
        "bus monitor observes (guaranteed-silent faults)"
    )

    def check(self, subject: CampaignContext) -> typing.Iterator[Diagnostic]:
        from ..fault.models import SIGNAL_TARGET
        from ..fault.spec import match_targets

        observed = subject.observed_signal_paths()
        for fault in subject.spec.faults:
            if fault.target_kind != SIGNAL_TARGET:
                continue
            matched = match_targets(fault.target, subject.signal_paths)
            if not matched:
                # expand_campaign already rejects empty matches loudly.
                continue
            unobserved = [path for path in matched if path not in observed]
            if len(unobserved) < len(matched):
                continue
            shown = ", ".join(unobserved[:3])
            if len(unobserved) > 3:
                shown += f", ... ({len(unobserved) - 3} more)"
            yield self.emit(
                fault.target,
                f"{fault.kind} fault targets only unobserved signals: "
                f"{shown}",
                hint=(
                    "attach a monitor or invariant checker to the wire, "
                    "or aim the fault at an observed one — every run on "
                    "this line is guaranteed to classify silent/benign"
                ),
            )
