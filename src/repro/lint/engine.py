"""The rule engine: registry, suppression and severity policy.

Rules are small classes with a ``check(target)`` generator; the engine
decides which apply to a given target kind, filters findings through the
suppression list and applies ``--strict`` (warnings become errors).

Suppression syntax (one entry per rule, comma-separable on the CLI):

* ``MOD003`` — drop every finding of that rule;
* ``MOD003@top.iface.*`` — drop findings whose hierarchical path matches
  the ``fnmatch`` pattern after ``@``;
* the rule's symbolic name works everywhere its id does
  (``dead-event-wait@top.*``).
"""

from __future__ import annotations

import fnmatch
import typing

from ..errors import ReproError
from .diagnostics import Diagnostic, LintReport, Severity

#: Target kinds a rule can apply to.
DESIGN = "design"     # an elaboratable Simulator + module hierarchy
IR = "ir"             # a synthesis RtlModule
CAMPAIGN = "campaign"  # a fault CampaignSpec against a probe platform


class LintRuleError(ReproError):
    """A lint rule or configuration is itself invalid."""


class LintRule:
    """Base class for all design rules.

    Subclasses set :attr:`rule_id`, :attr:`name`, :attr:`target`,
    :attr:`default_severity` and :attr:`description`, and implement
    :meth:`check` yielding :class:`Diagnostic` objects.
    """

    rule_id: str = ""
    name: str = ""
    target: str = DESIGN
    default_severity: Severity = Severity.WARNING
    description: str = ""

    def check(self, subject: typing.Any) -> typing.Iterator[Diagnostic]:
        raise NotImplementedError

    def emit(
        self,
        path: str,
        message: str,
        hint: str = "",
        extra: typing.Mapping[str, typing.Any] | None = None,
    ) -> Diagnostic:
        """Build a diagnostic pre-filled with this rule's identity."""
        return Diagnostic(
            self.rule_id, self.default_severity, path, message, hint,
            rule_name=self.name, extra=extra,
        )


class Suppression:
    """One parsed suppression entry."""

    def __init__(self, rule: str, path_pattern: str | None = None) -> None:
        self.rule = rule
        self.path_pattern = path_pattern

    @classmethod
    def parse(cls, text: str) -> "Suppression":
        text = text.strip()
        if not text:
            raise LintRuleError("empty suppression entry")
        if "@" in text:
            rule, __, pattern = text.partition("@")
            if not rule or not pattern:
                raise LintRuleError(
                    f"bad suppression {text!r}; expected RULE or RULE@glob"
                )
            return cls(rule, pattern)
        return cls(text)

    def matches(self, diagnostic: Diagnostic) -> bool:
        if self.rule not in (diagnostic.rule_id, diagnostic.rule_name):
            return False
        if self.path_pattern is None:
            return True
        return fnmatch.fnmatchcase(diagnostic.path, self.path_pattern)

    def __repr__(self) -> str:
        suffix = f"@{self.path_pattern}" if self.path_pattern else ""
        return f"Suppression({self.rule}{suffix})"


class LintConfig:
    """Per-run policy: suppressions, strictness, severity overrides.

    :param suppress: iterable of suppression strings (see module doc).
    :param strict: promote warnings to errors.
    :param severity_overrides: ``{rule_id: Severity}`` forced severities.
    """

    def __init__(
        self,
        suppress: typing.Iterable[str] = (),
        strict: bool = False,
        severity_overrides: typing.Mapping[str, Severity] | None = None,
    ) -> None:
        self.suppressions = [Suppression.parse(s) for s in suppress]
        self.strict = strict
        self.severity_overrides = dict(severity_overrides or {})

    def effective(self, diagnostic: Diagnostic) -> Diagnostic | None:
        """Apply policy; ``None`` means the finding is suppressed."""
        for suppression in self.suppressions:
            if suppression.matches(diagnostic):
                return None
        severity = self.severity_overrides.get(
            diagnostic.rule_id, diagnostic.severity
        )
        if self.strict and severity is Severity.WARNING:
            severity = Severity.ERROR
        diagnostic.severity = severity
        return diagnostic


class RuleRegistry:
    """Ordered collection of rule instances, unique by rule id."""

    def __init__(self) -> None:
        self._rules: dict[str, LintRule] = {}

    def register(self, rule: LintRule) -> LintRule:
        if not rule.rule_id or not rule.name:
            raise LintRuleError(f"rule {rule!r} must define rule_id and name")
        if rule.rule_id in self._rules:
            raise LintRuleError(f"duplicate rule id {rule.rule_id!r}")
        self._rules[rule.rule_id] = rule
        return rule

    def rules(self, target: str | None = None) -> list[LintRule]:
        items = list(self._rules.values())
        if target is not None:
            items = [rule for rule in items if rule.target == target]
        return items

    def get(self, rule_id: str) -> LintRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise LintRuleError(f"unknown lint rule {rule_id!r}") from None

    def __len__(self) -> int:
        return len(self._rules)


#: The process-wide default registry; rule modules register into it at
#: import time (see :mod:`repro.lint.runner`).
default_registry = RuleRegistry()


def validate_suppressions(
    entries: typing.Iterable[str],
    registry: RuleRegistry | None = None,
) -> list[str]:
    """Suppression entries naming rules the registry does not know.

    :class:`LintConfig` itself accepts any well-formed entry (tests run
    against ad-hoc registries); the CLIs call this to turn a typo'd
    rule id into an error instead of a silently-useless suppression.
    Both rule ids and symbolic rule names are accepted.
    """
    registry = registry if registry is not None else default_registry
    known: set[str] = set()
    for rule in registry.rules():
        known.add(rule.rule_id)
        known.add(rule.name)
    unknown: list[str] = []
    for entry in entries:
        suppression = Suppression.parse(entry)
        if suppression.rule not in known:
            unknown.append(entry.strip())
    return unknown


def register(rule_cls: type) -> type:
    """Class decorator: instantiate and add the rule to the default registry."""
    default_registry.register(rule_cls())
    return rule_cls


class LintEngine:
    """Runs registered rules over a target and applies the config policy."""

    def __init__(
        self,
        config: LintConfig | None = None,
        registry: RuleRegistry | None = None,
    ) -> None:
        self.config = config or LintConfig()
        self.registry = registry if registry is not None else default_registry

    def run(self, subject: typing.Any, target: str, label: str) -> LintReport:
        report = LintReport(label)
        for rule in self.registry.rules(target):
            report.rules_run.append(rule.rule_id)
            for diagnostic in rule.check(subject):
                kept = self.config.effective(diagnostic)
                if kept is None:
                    report.suppressed += 1
                else:
                    report.add(kept)
        return report
