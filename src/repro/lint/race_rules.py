"""Shared-state race rule (RACE001).

Design-level wrapper around :mod:`repro.analyze.races`: shared
GlobalObject state written by more than one party where at least one
write bypasses the arbiter's serialization. The finding's ``extra``
carries the raced signal's name when the attribute holds one, which is
how the dynamic :class:`~repro.instrument.sanitizer.RaceSanitizer`
pairs its sim-time observations with the static report.
"""

from __future__ import annotations

import typing

from .context import DesignContext
from .diagnostics import Diagnostic, Severity
from .engine import DESIGN, LintRule, register


@register
class SharedStateRaceRule(LintRule):
    """Shared state written by several parties without serialization."""

    rule_id = "RACE001"
    name = "shared-state-race"
    target = DESIGN
    default_severity = Severity.ERROR
    description = (
        "out-of-band writes to shared object state race the arbiter's "
        "serialized method bodies (and each other); the refinement to "
        "RTL is not equivalence-preserving for such designs"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        from ..analyze.races import analyze_races

        for finding in analyze_races(design):
            details = "; ".join(
                f"{w.process_name}: {w.detail}"
                for w in finding.out_of_band
            )
            extra: dict[str, typing.Any] = {
                "attr": finding.attr,
                "writers": finding.parties(),
            }
            if finding.signal_name is not None:
                extra["signal"] = finding.signal_name
            yield self.emit(
                f"{finding.group_path}.{finding.attr}",
                "shared state attribute is written by "
                f"{len(finding.parties())} parties without arbiter "
                f"serialization ({details})",
                "route every mutation through a guarded method call on "
                "the channel",
                extra=extra,
            )
