"""Resilience-coverage rules (RES0xx).

The guard analyses (GRD0xx) prove liveness where they can; RES001 flags
the leftover risk: a guarded method a workload actually calls whose
guard is *not* provably live — not initially true and with no other
method able to enable it — and that also has no
:class:`~repro.resilience.policy.RetryPolicy` attached. Such a call can
block its caller forever, and nothing (neither the state machine nor
the recovery layer) bounds the wait.

The fix is either structural (make some method write the guarded
attributes) or declarative (attach a retry policy so the caller gets a
:class:`~repro.errors.GuardTimeoutError` instead of a silent deadlock).
"""

from __future__ import annotations

import typing

from .astutils import UNRESOLVED
from .context import DesignContext
from .diagnostics import Diagnostic, Severity
from .engine import DESIGN, LintRule, register
from .guard_rules import GuardWaitCycleRule


@register
class UnprotectedGuardedCallRule(LintRule):
    """A reachable guarded call with neither provable liveness nor a
    retry policy."""

    rule_id = "RES001"
    name = "unprotected-guarded-call"
    target = DESIGN
    default_severity = Severity.WARNING
    description = (
        "guarded calls that can block forever should carry a RetryPolicy "
        "when their guard is not provably live"
    )

    def check(self, design: DesignContext) -> typing.Iterator[Diagnostic]:
        sites = GuardWaitCycleRule._call_sites(design)
        seen: set[tuple[str, str]] = set()
        for site in sites:
            group = site["group"]
            method = site["method"]
            descriptor = site["descriptor"]
            if descriptor is None or descriptor.guard is None:
                continue
            key = (group.path, method)
            if key in seen:
                continue
            seen.add(key)
            policies = getattr(group.space, "retry_policies", {})
            if method in policies or "*" in policies:
                continue
            value = group.eval_guard(descriptor)
            if value is not UNRESOLVED and value:
                continue  # open from the start: callers proceed
            reads = group.guard_reads(descriptor)
            if reads:
                writers = group.enabling_writers(reads)
                # A method's own writes only run after its guard passed,
                # so they cannot enable it.
                writers.discard(method)
                if writers:
                    continue  # some other method can open the guard
            yield self.emit(
                f"{group.path}.{method}",
                "guard is not provably live (not initially true, no other "
                "method writes what it reads) and the call carries no "
                "retry policy: callers can block forever",
                "attach a RetryPolicy (repro.resilience.attach_retry_"
                "policy) or make another method write the guarded state",
            )
