"""FSM liveness rules over the synthesis IR (FSM0xx).

Wrappers around :mod:`repro.analyze.fsm`: reachable states with no way
out (FSM001), transition guards that constant-fold to false (FSM002)
and unconditional do-nothing cycles (FSM003). IR001 (plain
unreachability) stays separate — these rules are about the *liveness*
of the states the machine does reach.
"""

from __future__ import annotations

import typing

from ..analyze.fsm import (
    find_false_guards,
    find_livelock_cycles,
    find_terminal_states,
)
from ..synthesis import ir
from .diagnostics import Diagnostic, Severity
from .engine import IR, LintRule, register


@register
class TerminalStateRule(LintRule):
    """A reachable FSM state with no live outgoing transition."""

    rule_id = "FSM001"
    name = "fsm-terminal-state"
    target = IR
    default_severity = Severity.ERROR
    description = (
        "once entered, a state with no live way out deadlocks the "
        "protocol: grants stop, every caller hangs"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for fsm in module.fsms:
            for finding in find_terminal_states(fsm):
                yield self.emit(
                    f"{module.name}.{fsm.name}.{finding.subject}",
                    finding.message,
                    "add a transition out of the state (or back to "
                    "reset)",
                )


@register
class FalseGuardTransitionRule(LintRule):
    """A transition whose condition is statically false."""

    rule_id = "FSM002"
    name = "fsm-false-transition"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "a constant-false guard means the arc is dead weight — and "
        "often means a condition was wired to the wrong constant"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for fsm in module.fsms:
            for finding in find_false_guards(fsm):
                yield self.emit(
                    f"{module.name}.{fsm.name}.{finding.subject}",
                    finding.message,
                    "fix the condition expression or delete the arc",
                )


@register
class LivelockCycleRule(LintRule):
    """An unconditional FSM cycle that does no protocol work."""

    rule_id = "FSM003"
    name = "fsm-livelock-cycle"
    target = IR
    default_severity = Severity.WARNING
    description = (
        "a reachable cycle with only unconditional arcs, no exit and "
        "no outputs spins forever without granting anything"
    )

    def check(self, module: ir.RtlModule) -> typing.Iterator[Diagnostic]:
        for fsm in module.fsms:
            for finding in find_livelock_cycles(fsm):
                yield self.emit(
                    f"{module.name}.{fsm.name}.{finding.subject}",
                    finding.message,
                    "guard an arc of the cycle, add an exit arc, or "
                    "make a state produce an output",
                )
