"""Channel IR generation.

Builds the structural :class:`~repro.synthesis.ir.RtlModule` for one
lowered connection group: the per-client REQ/GNT/DONE handshake, the
latched grant/method registers, the arbiter (from
:mod:`~repro.synthesis.arbiter_synth`) and the three-state server FSM.
This netlist is what the Verilog/VHDL backends print and the report
measures; the matching executable model is
:class:`~repro.synthesis.rtl_channel.RtlMethodChannel`.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from .ir import (
    BinOp,
    Const,
    Expr,
    Fsm,
    Mux,
    RtlModule,
    UnOp,
    clog2,
    mux_chain,
)


def build_channel_ir(
    name: str,
    n_clients: int,
    method_names: typing.Sequence[str],
    arbiter_kind: str,
    body_cycles: int = 1,
    priorities: typing.Sequence[int] | None = None,
    data_width: int = 32,
) -> RtlModule:
    """Generate the channel netlist.

    :param method_names: guarded methods of the shared class; their
        guard bits arrive as input ports from the object module.
    :param data_width: width of the opaque argument/return data buses
        (the behavioural data path of the mixed RT/behavioural output).
    """
    from .arbiter_synth import emit_arbiter_ir

    if n_clients < 1:
        raise SynthesisError("channel needs at least one client")
    if not method_names:
        raise SynthesisError("channel needs at least one method")
    module = RtlModule(
        name,
        comment=(
            f"method-call channel: {n_clients} client(s), "
            f"{len(method_names)} guarded method(s), arbiter={arbiter_kind}"
        ),
    )
    method_bits = clog2(max(2, len(method_names)))
    idx_width = clog2(max(2, n_clients))

    module.add_port("clk", "in", 1, "synthesis clock")
    module.add_port("rst_n", "in", 1, "asynchronous reset, active low")
    req = [module.add_port(f"req_{i}", "in", 1, f"client {i} request") for i in range(n_clients)]
    method = [
        module.add_port(f"method_{i}", "in", method_bits, f"client {i} method select")
        for i in range(n_clients)
    ]
    module.add_port("arg_data", "in", data_width,
                    "behavioural argument bus (opaque to the control synthesis)")
    gnt = [module.add_port(f"gnt_{i}", "out", 1, f"client {i} grant") for i in range(n_clients)]
    done = [module.add_port(f"done_{i}", "out", 1, f"client {i} completion") for i in range(n_clients)]
    module.add_port("ret_data", "out", data_width, "behavioural return bus")
    guards = [
        module.add_port(f"guard_{k}", "in", 1,
                        f"guard of method {method_name!r} over the object state")
        for k, method_name in enumerate(method_names)
    ]
    exec_go = module.add_port("exec_go", "out", 1,
                              "to the object server: execute the latched method")
    exec_method = module.add_port("exec_method", "out", method_bits,
                                  "latched method index for the object server")

    # Per-client eligibility: requesting AND the guard of its selected method.
    eligible = []
    for i in range(n_clients):
        guard_mux_cases = [
            (BinOp("==", method[i].ref(), Const(k, method_bits)), guards[k].ref())
            for k in range(len(method_names))
        ]
        guard_sel = module.add_net(f"guard_sel_{i}", 1,
                                   f"guard of client {i}'s requested method")
        module.add_assign(guard_sel, mux_chain(Const(0, 1), guard_mux_cases))
        bit = module.add_net(f"eligible_{i}", 1)
        module.add_assign(bit, BinOp("&", req[i].ref(), guard_sel.ref()))
        eligible.append(bit.ref())

    # Server FSM.
    fsm = Fsm(f"{name}_server", ["IDLE", "EXEC", "DONE"], "IDLE")
    module.add_fsm(fsm)
    state = fsm.state_register
    in_idle = module.add_net("in_idle", 1)
    module.add_assign(in_idle, BinOp("==", state.ref(), Const(fsm.encode("IDLE"), state.width)))
    in_exec = module.add_net("in_exec", 1)
    module.add_assign(in_exec, BinOp("==", state.ref(), Const(fsm.encode("EXEC"), state.width)))
    in_done = module.add_net("in_done", 1)
    module.add_assign(in_done, BinOp("==", state.ref(), Const(fsm.encode("DONE"), state.width)))

    # Arbiter (policy-specific registers + encoder).
    any_eligible, grant_index = emit_arbiter_ir(
        module, arbiter_kind, n_clients, eligible, in_idle.ref(), priorities
    )

    grant_reg = module.add_register("grant_reg", idx_width, 0, "latched grant")
    take_grant = module.add_net("take_grant", 1)
    module.add_assign(take_grant, BinOp("&", in_idle.ref(), any_eligible.ref()))
    module.add_clocked_assign(grant_reg, grant_index.ref(), enable=take_grant.ref(),
                              comment="capture the arbitration winner")

    method_reg = module.add_register("method_reg", method_bits, 0, "latched method")
    method_mux_cases = [
        (BinOp("==", grant_index.ref(), Const(i, idx_width)), method[i].ref())
        for i in range(n_clients)
    ]
    module.add_clocked_assign(
        method_reg,
        mux_chain(Const(0, method_bits), method_mux_cases),
        enable=take_grant.ref(),
        comment="method of the granted client",
    )
    module.add_assign(exec_method, method_reg.ref())

    # Body-cycle counter.
    counter_width = clog2(max(2, body_cycles + 1))
    counter = module.add_register("exec_counter", counter_width, 0,
                                  "method-body cycle budget")
    counter_zero = module.add_net("exec_done", 1)
    module.add_assign(counter_zero, BinOp("==", counter.ref(), Const(0, counter_width)))
    module.add_clocked_assign(
        counter,
        Mux(
            take_grant.ref(),
            Const(body_cycles - 1, counter_width),
            Mux(
                BinOp("&", in_exec.ref(), UnOp("~", counter_zero.ref())),
                BinOp("-", counter.ref(), Const(1, counter_width)),
                counter.ref(),
            ),
        ),
        comment="load on grant, count down in EXEC",
    )
    module.add_assign(exec_go, BinOp("&", in_exec.ref(), counter_zero.ref()),
                      "fires the behavioural method body")

    # Request-drop detection for the granted client.
    req_mux_cases = [
        (BinOp("==", grant_reg.ref(), Const(i, idx_width)), req[i].ref())
        for i in range(n_clients)
    ]
    granted_req = module.add_net("granted_req", 1, "REQ of the granted client")
    module.add_assign(granted_req, mux_chain(Const(0, 1), req_mux_cases))

    fsm.add_transition("IDLE", any_eligible.ref(), "EXEC")
    fsm.add_transition("EXEC", counter_zero.ref(), "DONE")
    fsm.add_transition("DONE", UnOp("~", granted_req.ref()), "IDLE")

    # Handshake outputs.
    for i in range(n_clients):
        is_granted = module.add_net(f"is_granted_{i}", 1)
        module.add_assign(
            is_granted, BinOp("==", grant_reg.ref(), Const(i, idx_width))
        )
        module.add_assign(
            gnt[i],
            BinOp("&", UnOp("~", in_idle.ref()), is_granted.ref()),
        )
        module.add_assign(
            done[i],
            BinOp("&", in_done.ref(), is_granted.ref()),
        )

    # The behavioural return path: modelled as a registered pass-through.
    ret_reg = module.add_register("ret_reg", data_width, 0,
                                  "behavioural return data (opaque)")
    module.add_clocked_assign(ret_reg, module.port("arg_data").ref(),
                              enable=exec_go.ref(),
                              comment="captured when the body fires")
    module.add_assign(module.port("ret_data"), ret_reg.ref())
    return module
