"""Shared-object server synthesis.

The ODETTE tool synthesizes the object's state into registers and each
guarded-method body into an FSM fragment; the guards become
combinational predicates over the state registers. Our reproduction
keeps the bodies behavioural (the "mixed RT-behavioural" output) but
still produces the structural wrapper: state-register estimation from a
live object instance, guard output ports and the execute handshake the
channel drives.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..osss.guarded_method import GuardedMethodDescriptor
from .ir import BinOp, Const, RtlModule, clog2


#: Heuristic widths for estimating object-state registers, by Python type.
_TYPE_BITS: list[tuple[type, int]] = [
    (bool, 1),
    (int, 32),
]


def estimate_state_bits(state: object) -> dict[str, int]:
    """Per-attribute register-width estimate for a shared object.

    Public data attributes only; containers are charged 32 bits per
    current element (a capacity-style estimate a real flow would take
    from declared array bounds).
    """
    estimate: dict[str, int] = {}
    attributes = vars(state) if hasattr(state, "__dict__") else {}
    for name, value in attributes.items():
        clean = name.lstrip("_")
        if isinstance(value, bool):
            estimate[clean] = 1
        elif isinstance(value, int):
            estimate[clean] = 32
        elif isinstance(value, str):
            estimate[clean] = 8 * max(1, len(value))
        elif isinstance(value, (list, tuple, set, frozenset)):
            estimate[clean] = 32 * max(1, len(value))
        elif isinstance(value, dict):
            estimate[clean] = 32 * max(1, len(value))
        elif value is None:
            estimate[clean] = 1
        elif hasattr(value, "__len__"):
            estimate[clean] = 32 * max(1, len(value))  # type: ignore[arg-type]
        else:
            estimate[clean] = 32
    return estimate


def build_object_ir(
    name: str,
    state: object,
    methods: typing.Mapping[str, GuardedMethodDescriptor],
    method_order: typing.Sequence[str],
) -> RtlModule:
    """Generate the object-server wrapper netlist.

    :param state: a live instance (used only for state-size estimation).
    :param method_order: fixed method indexing shared with the channel.
    """
    if not method_order:
        raise SynthesisError("object has no methods to synthesize")
    module = RtlModule(
        name,
        comment=(
            f"shared object server: {type(state).__name__} "
            f"({len(method_order)} guarded methods; bodies behavioural)"
        ),
    )
    method_bits = clog2(max(2, len(method_order)))
    module.add_port("clk", "in", 1)
    module.add_port("rst_n", "in", 1)
    exec_go = module.add_port("exec_go", "in", 1, "from channel: run the body")
    exec_method = module.add_port("exec_method", "in", method_bits,
                                  "from channel: which body")

    # Estimated state registers. The bodies stay behavioural, so the
    # update logic is modelled as a self-hold gated by the execute
    # strobe (the real datapath would replace the hold expression).
    for attr, bits in sorted(estimate_state_bits(state).items()):
        register = module.add_register(
            f"state_{attr}", bits, 0,
            f"object attribute {attr!r} (estimated width)")
        module.add_clocked_assign(
            register, register.ref(), enable=exec_go.ref(),
            comment="updated behaviourally by the method bodies")

    # One guard output per method: combinational over the state registers.
    for index, method_name in enumerate(method_order):
        descriptor = methods[method_name]
        guard_port = module.add_port(
            f"guard_{index}", "out", 1,
            f"guard of {method_name!r}"
            + ("" if descriptor.guard else " (unguarded: constant 1)"),
        )
        if descriptor.guard is None:
            module.add_assign(guard_port, Const(1, 1), "always callable")
        else:
            # The predicate itself stays behavioural; structurally it is a
            # function of the state registers, modelled as a named net.
            predicate = module.add_net(
                f"guard_expr_{index}", 1,
                f"behavioural predicate of {method_name!r} over the state",
            )
            module.add_assign(predicate, Const(1, 1),
                              "placeholder: evaluated behaviourally")
            module.add_assign(guard_port, predicate.ref())

    # Body-dispatch strobes: exec_go qualified by the method index.
    for index, method_name in enumerate(method_order):
        strobe = module.add_port(f"run_{index}", "out", 1,
                                 f"execute body of {method_name!r}")
        selected = BinOp("==", exec_method.ref(), Const(index, method_bits))
        module.add_assign(strobe, BinOp("&", exec_go.ref(), selected),
                          "behavioural body fires on this strobe")
    return module
