"""The executable RT-level method channel.

This is what a global-object connection group becomes after
communication synthesis: a clocked module with per-client REQ/GNT/DONE
handshakes, a registered arbiter policy and a server FSM that invokes
the (behavioural) method bodies — the "mixed RT-behavioural" output of
the ODETTE tool. It runs on the same kernel as the original model, so
pre- and post-synthesis platforms can be simulated and compared.

Handshake (all sampled/driven on the rising clock edge):

1. client drives ``req=1`` with the request payload;
2. the arbiter grants one eligible client (request pending AND guard
   true on the shared state): ``gnt=1``;
3. the server spends ``body_cycles`` clocks executing the method body,
   then drives ``done=1`` with the return payload;
4. the client samples ``done``, drops ``req``; the server clears and
   returns to IDLE.

An uncontended call therefore costs a handful of clocks, and contention
adds arbitration wait — the temporal behaviour the paper defers to
"evaluation after synthesis", reproduced by the EXP-TIME bench.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import METHOD_CALL, METHOD_COMPLETE, METHOD_GRANT
from ..kernel.event import Event
from ..kernel.simulator import Simulator
from ..osss.global_object import GlobalObject, SharedStateSpace
from ..osss.request import MethodRequest
from .arbiter_synth import RtlArbiterPolicy, lower_arbiter

#: Server FSM state encodings (mirrored onto a trace signal).
ST_IDLE, ST_EXEC, ST_DONE = 0, 1, 2
STATE_NAMES = {ST_IDLE: "IDLE", ST_EXEC: "EXEC", ST_DONE: "DONE"}


class ChannelCallRecord:
    """Cycle-level log entry for one serviced call."""

    def __init__(
        self,
        client: str,
        method: str,
        request_time: int,
        grant_time: int,
        done_time: int,
    ) -> None:
        self.client = client
        self.method = method
        self.request_time = request_time
        self.grant_time = grant_time
        self.done_time = done_time

    @property
    def wait_time(self) -> int:
        return self.grant_time - self.request_time

    @property
    def total_time(self) -> int:
        return self.done_time - self.request_time


class RtlMethodChannel(Module):
    """RT-level implementation of one connection group's communication.

    :param space: the shared state space being lowered (its behavioural
        server must already be stopped by the synthesizer).
    :param handles: the client handles, one hardware port set each.
    :param clk: the synthesis clock.
    :param body_cycles: clocks charged for each method-body execution.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        space: SharedStateSpace,
        handles: typing.Sequence[GlobalObject],
        clk: Signal,
        body_cycles: int = 1,
    ) -> None:
        super().__init__(parent, name)
        if body_cycles < 1:
            raise SynthesisError("body_cycles must be >= 1")
        if not handles:
            raise SynthesisError("a channel needs at least one client")
        self.space = space
        self.clk = clk
        self.body_cycles = body_cycles
        self.clients = sorted(handles, key=lambda h: h.path)
        self.client_paths = [handle.path for handle in self.clients]
        self._index_of = {id(h): i for i, h in enumerate(self.clients)}
        n = len(self.clients)
        self.method_names = sorted(space.methods)
        self.policy: RtlArbiterPolicy = lower_arbiter(
            space.arbiter, n, self.client_paths
        )
        # Per-client wires.
        self.req = [self.signal(f"req_{i}", width=1, init=0) for i in range(n)]
        self.gnt = [self.signal(f"gnt_{i}", width=1, init=0) for i in range(n)]
        self.done = [self.signal(f"done_{i}", width=1, init=0) for i in range(n)]
        self.payload: list[Signal] = [
            self.signal(f"payload_{i}", init=None) for i in range(n)
        ]
        self.result: list[Signal] = [
            self.signal(f"result_{i}", init=None) for i in range(n)
        ]
        # Observability.
        self.state_sig = self.signal("server_state", width=2, init=ST_IDLE)
        self.grant_sig = self.signal("grant_index", width=max(1, (n - 1).bit_length() or 1), init=0)
        # Client-side mutexes (one outstanding call per hardware port).
        self._port_busy = [False] * n
        self._port_free = [self.event(f"port_free_{i}") for i in range(n)]
        self.call_log: list[ChannelCallRecord] = []
        self.calls_serviced = 0
        self.idle_cycles = 0
        self.busy_cycles = 0
        self.thread(self._server, "server")

    # -- client side -----------------------------------------------------------

    def client_index(self, handle: GlobalObject) -> int:
        try:
            return self._index_of[id(handle)]
        except KeyError:
            raise SynthesisError(
                f"{handle.path} is not a client of channel {self.path}"
            ) from None

    def client_call(
        self,
        handle: GlobalObject,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: int | None = None,
        client: str | None = None,
        priority: int = 0,
    ):
        """The lowered blocking call (generator; substituted for
        :meth:`GlobalObject.call` after synthesis)."""
        if timeout is not None:
            raise SynthesisError(
                "call timeouts are not supported on a synthesized channel"
            )
        index = self.client_index(handle)
        self.space.descriptor(method)  # validate the method name early
        # One outstanding call per hardware port: serialize extra processes.
        while self._port_busy[index]:
            yield self._port_free[index]
        self._port_busy[index] = True
        try:
            request = MethodRequest(
                client=client or handle.path,
                method=method,
                args=args,
                kwargs=kwargs,
                arrival_time=self.sim.time,
                done_event=Event(self.sim.scheduler, f"{self.path}.unused"),
                priority=priority,
            )
            self.payload[index].write(request)
            self.req[index].write(1)
            self.space.stats.total_requests += 1
            probes = self.sim._probes
            if probes is not None:
                probes.emit(METHOD_CALL, self.sim.time, self.space, request)
            while True:
                yield self.clk.posedge
                if self.done[index].read().to_int_default(0):
                    break
            outcome = self.result[index].read()
            self.req[index].write(0)
            # Let the server observe the dropped request before this port
            # can issue again (DONE must clear between calls).
            yield self.clk.posedge
        finally:
            self._port_busy[index] = False
            self._port_free[index].notify()
        error = typing.cast("BaseException | None", outcome[1])
        if error is not None:
            raise error
        return outcome[0]

    # -- server side -------------------------------------------------------------

    def _sample_requests(self) -> list["MethodRequest | None"]:
        sampled: list["MethodRequest | None"] = []
        for index in range(len(self.clients)):
            if self.req[index].read().to_int_default(0):
                sampled.append(typing.cast(MethodRequest, self.payload[index].read()))
            else:
                sampled.append(None)
        return sampled

    def _server(self):
        space = self.space
        state = ST_IDLE
        grant = 0
        exec_counter = 0
        current: MethodRequest | None = None
        while True:
            yield self.clk.posedge
            requests = self._sample_requests()
            requesting = [request is not None for request in requests]
            self.policy.tick(requesting)
            if state == ST_IDLE:
                self.idle_cycles += 1
                eligible = [
                    index
                    for index, request in enumerate(requests)
                    if request is not None
                    and space.descriptor(request.method).guard_true(space.state)
                ]
                if eligible:
                    grant = self.policy.select(eligible)
                    current = requests[grant]
                    assert current is not None
                    current.grant_time = self.sim.time
                    space.stats.record_grant(current, self.sim.time)
                    probes = self.sim._probes
                    if probes is not None:
                        probes.emit(METHOD_GRANT, self.sim.time, space, current)
                    self.gnt[grant].write(1)
                    self.grant_sig.write(grant)
                    exec_counter = self.body_cycles
                    state = ST_EXEC
            elif state == ST_EXEC:
                self.busy_cycles += 1
                exec_counter -= 1
                if exec_counter == 0:
                    assert current is not None
                    descriptor = space.descriptor(current.method)
                    try:
                        value = descriptor.invoke(
                            space.state, *current.args, **current.kwargs
                        )
                        outcome: tuple = (value, None)
                    except Exception as error:
                        current.error = error
                        outcome = (None, error)
                    current.result = outcome[0]
                    current.completed = True
                    current.complete_time = self.sim.time
                    space.stats.record_completion(current)
                    probes = self.sim._probes
                    if probes is not None:
                        probes.emit(
                            METHOD_COMPLETE, self.sim.time, space, current
                        )
                    self.result[grant].write(outcome)
                    self.done[grant].write(1)
                    state = ST_DONE
            elif state == ST_DONE:
                self.busy_cycles += 1
                if not self.req[grant].read().to_int_default(0):
                    assert current is not None
                    self.call_log.append(
                        ChannelCallRecord(
                            current.client,
                            current.method,
                            current.arrival_time,
                            current.grant_time or current.arrival_time,
                            self.sim.time,
                        )
                    )
                    self.calls_serviced += 1
                    self.done[grant].write(0)
                    self.gnt[grant].write(0)
                    current = None
                    state = ST_IDLE
            self.state_sig.write(state)

    # -- statistics -----------------------------------------------------------------

    def mean_call_cycles(self, clock_period: int) -> float:
        """Average request-to-done latency in clock cycles."""
        if not self.call_log:
            return 0.0
        total = sum(record.total_time for record in self.call_log)
        return total / len(self.call_log) / clock_period
