"""Synthesis reporting.

Aggregates resource estimates from the generated netlists — flip-flop
bits, multiplexer count, FSM states, per-object state-register estimates
and polymorphic-dispatch costs — into the kind of summary the ODETTE
prototype printed after a run.
"""

from __future__ import annotations


from .ir import RtlModule
from .poly_synth import DispatchInfo


class ModuleReport:
    """Resource summary of one netlist."""

    def __init__(self, module: RtlModule) -> None:
        self.name = module.name
        self.comment = module.comment
        self.ports = len(module.ports)
        self.flip_flop_bits = module.flip_flop_bits()
        self.mux_count = module.mux_count()
        self.expression_nodes = module.expression_nodes()
        self.fsm_states = sum(len(fsm.states) for fsm in module.fsms)

    def row(self) -> tuple:
        return (
            self.name,
            self.ports,
            self.flip_flop_bits,
            self.mux_count,
            self.fsm_states,
            self.expression_nodes,
        )


class SynthesisReport:
    """Whole-design synthesis summary."""

    HEADER = ("module", "ports", "ff_bits", "muxes", "fsm_states", "expr_nodes")

    def __init__(self) -> None:
        self.modules: list[ModuleReport] = []
        self.channels: list[dict] = []
        self.dispatches: list[DispatchInfo] = []

    def add_module(self, module: RtlModule) -> ModuleReport:
        report = ModuleReport(module)
        self.modules.append(report)
        return report

    def add_channel_info(self, info: dict) -> None:
        self.channels.append(info)

    def add_dispatch(self, info: DispatchInfo) -> None:
        self.dispatches.append(info)

    # -- totals ------------------------------------------------------------

    @property
    def total_flip_flop_bits(self) -> int:
        return sum(m.flip_flop_bits for m in self.modules)

    @property
    def total_mux_count(self) -> int:
        return sum(m.mux_count for m in self.modules)

    @property
    def total_fsm_states(self) -> int:
        return sum(m.fsm_states for m in self.modules)

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        lines = ["communication synthesis report", "=" * 64]
        widths = [max(len(str(row[i])) for row in
                      [self.HEADER] + [m.row() for m in self.modules])
                  for i in range(len(self.HEADER))]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.HEADER, widths)))
        for module in self.modules:
            lines.append(
                "  ".join(str(c).ljust(w) for c, w in zip(module.row(), widths))
            )
        lines.append("-" * 64)
        lines.append(
            f"totals: {self.total_flip_flop_bits} ff bits, "
            f"{self.total_mux_count} muxes, {self.total_fsm_states} fsm states"
        )
        if self.channels:
            lines.append("")
            lines.append("lowered channels:")
            for info in self.channels:
                lines.append(
                    f"  {info['name']}: {info['clients']} client(s), "
                    f"{info['methods']} method(s), arbiter={info['arbiter']}, "
                    f"class={info['cls']}"
                )
        if self.dispatches:
            lines.append("")
            lines.append("polymorphic dispatches:")
            for dispatch in self.dispatches:
                lines.append(
                    f"  {dispatch.name}: {len(dispatch.variants)} variants, "
                    f"tag {dispatch.tag_bits} bit(s), union "
                    f"{dispatch.union_state_bits} bit(s), "
                    f"{dispatch.mux_inputs} mux arms"
                )
        return "\n".join(lines)
