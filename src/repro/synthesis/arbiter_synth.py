"""Arbiter synthesis.

Each behavioural scheduling algorithm (:mod:`repro.osss.arbiter`) has two
lowered forms, kept consistent with each other:

* an **executable cycle-accurate policy** (:class:`RtlArbiterPolicy`
  subclasses) used by the executable RT-level channel — registered state
  updated once per clock, exactly what the emitted netlist does;
* an **IR fragment** (:func:`emit_arbiter_ir`) — the priority encoder /
  rotating encoder / age-compare tree / LFSR structure written into the
  synthesized module for the HDL backends and the area report.

Tie-breaking note: the behavioural kernel breaks simultaneous-arrival
ties by global submission order; hardware breaks them by client index.
Traces remain per-client consistent; the global interleaving may differ,
as the paper's "consistency with respect to the test set" allows.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..osss.arbiter import Arbiter, StaticPriorityArbiter
from .ir import (
    BinOp,
    Const,
    Expr,
    Mux,
    Net,
    RtlModule,
    UnOp,
    clog2,
    mux_chain,
)

#: Width of the per-client age counters in the FCFS arbiter.
FCFS_AGE_BITS = 8
#: Width of the LFSR in the random arbiter.
LFSR_BITS = 16
#: x^16 + x^15 + x^13 + x^4 + 1 (Fibonacci taps, maximal length).
LFSR_TAPS = (15, 14, 12, 3)


# ---------------------------------------------------------------------------
# Executable cycle-accurate policies
# ---------------------------------------------------------------------------

class RtlArbiterPolicy:
    """Clock-synchronous arbitration policy (registered state)."""

    kind = "base"

    def __init__(self, n_clients: int) -> None:
        if n_clients < 1:
            raise SynthesisError("arbiter needs at least one client")
        self.n_clients = n_clients

    def tick(self, requesting: typing.Sequence[bool]) -> None:
        """Called once per clock with the sampled request vector."""

    def select(self, eligible: typing.Sequence[int]) -> int:
        """Pick a client index from the non-empty eligible set."""
        raise NotImplementedError


class RtlFcfsPolicy(RtlArbiterPolicy):
    """Oldest-requester-first via per-client age counters (saturating)."""

    kind = "fcfs"

    def __init__(self, n_clients: int) -> None:
        super().__init__(n_clients)
        self.ages = [0] * n_clients

    def tick(self, requesting: typing.Sequence[bool]) -> None:
        limit = (1 << FCFS_AGE_BITS) - 1
        for index in range(self.n_clients):
            if requesting[index]:
                self.ages[index] = min(limit, self.ages[index] + 1)
            else:
                self.ages[index] = 0

    def select(self, eligible: typing.Sequence[int]) -> int:
        chosen = max(eligible, key=lambda i: (self.ages[i], -i))
        self.ages[chosen] = 0
        return chosen


class RtlRoundRobinPolicy(RtlArbiterPolicy):
    """Rotating-priority encoder with a grant pointer register."""

    kind = "round_robin"

    def __init__(self, n_clients: int) -> None:
        super().__init__(n_clients)
        self.pointer = 0

    def select(self, eligible: typing.Sequence[int]) -> int:
        eligible_set = set(eligible)
        for step in range(self.n_clients):
            candidate = (self.pointer + step) % self.n_clients
            if candidate in eligible_set:
                self.pointer = (candidate + 1) % self.n_clients
                return candidate
        raise SynthesisError("select() called with empty eligible set")


class RtlStaticPriorityPolicy(RtlArbiterPolicy):
    """Fixed priority encoder; *priorities* indexed by client."""

    kind = "static_priority"

    def __init__(self, n_clients: int, priorities: typing.Sequence[int]) -> None:
        super().__init__(n_clients)
        if len(priorities) != n_clients:
            raise SynthesisError(
                f"got {len(priorities)} priorities for {n_clients} clients"
            )
        self.priorities = list(priorities)

    def select(self, eligible: typing.Sequence[int]) -> int:
        return min(eligible, key=lambda i: (self.priorities[i], i))


class RtlRandomPolicy(RtlArbiterPolicy):
    """LFSR-rotated priority encoder."""

    kind = "random"

    def __init__(self, n_clients: int, seed: int = 0xACE1) -> None:
        super().__init__(n_clients)
        self.lfsr = seed & ((1 << LFSR_BITS) - 1) or 0xACE1

    def tick(self, requesting: typing.Sequence[bool]) -> None:
        feedback = 0
        for tap in LFSR_TAPS:
            feedback ^= (self.lfsr >> tap) & 1
        self.lfsr = ((self.lfsr << 1) | feedback) & ((1 << LFSR_BITS) - 1)

    def select(self, eligible: typing.Sequence[int]) -> int:
        start = self.lfsr % self.n_clients
        eligible_set = set(eligible)
        for step in range(self.n_clients):
            candidate = (start + step) % self.n_clients
            if candidate in eligible_set:
                return candidate
        raise SynthesisError("select() called with empty eligible set")


def lower_arbiter(
    arbiter: Arbiter, n_clients: int, client_paths: typing.Sequence[str]
) -> RtlArbiterPolicy:
    """Build the cycle-accurate policy matching a behavioural arbiter."""
    kind = arbiter.kind
    if kind == "fcfs":
        return RtlFcfsPolicy(n_clients)
    if kind == "round_robin":
        return RtlRoundRobinPolicy(n_clients)
    if kind == "static_priority":
        static = typing.cast(StaticPriorityArbiter, arbiter)
        priorities = [static.priority_of(path) for path in client_paths]
        return RtlStaticPriorityPolicy(n_clients, priorities)
    if kind == "random":
        return RtlRandomPolicy(n_clients)
    raise SynthesisError(
        f"no RTL lowering for arbiter kind {kind!r}; synthesizable kinds: "
        "fcfs, round_robin, static_priority, random"
    )


# ---------------------------------------------------------------------------
# IR emission
# ---------------------------------------------------------------------------

def _rotated_priority(
    eligible_bits: typing.Sequence[Expr],
    start_expr: Expr,
    n: int,
    idx_width: int,
) -> Expr:
    """Grant index = first eligible client at/after *start* (barrel encoder)."""
    cases = []
    for start in range(n):
        inner_cases = []
        for step in range(n):
            candidate = (start + step) % n
            inner_cases.append(
                (eligible_bits[candidate], Const(candidate, idx_width))
            )
        chain = mux_chain(Const(0, idx_width), inner_cases)
        cases.append((BinOp("==", start_expr, Const(start, start_expr.width)), chain))
    return mux_chain(Const(0, idx_width), cases)


def emit_arbiter_ir(
    module: RtlModule,
    kind: str,
    n_clients: int,
    eligible_bits: typing.Sequence[Expr],
    grant_enable: Expr,
    priorities: typing.Sequence[int] | None = None,
) -> tuple[Net, Net]:
    """Write the arbiter structure for *kind* into *module*.

    :param eligible_bits: per-client 1-bit "requesting and guard true".
    :param grant_enable: 1 bit, high when the server accepts a grant this
        cycle (gates the policy-state updates).
    :returns: ``(grant_valid, grant_index)`` nets.
    """
    if len(eligible_bits) != n_clients:
        raise SynthesisError("eligible vector length != n_clients")
    idx_width = clog2(max(2, n_clients))
    any_eligible = module.add_net(f"arb_{kind}_any", 1, "someone is eligible")
    or_tree: Expr = eligible_bits[0]
    for bit in eligible_bits[1:]:
        or_tree = BinOp("|", or_tree, bit)
    module.add_assign(any_eligible, or_tree)
    grant_index = module.add_net("arb_grant_index", idx_width, "selected client")

    if kind == "static_priority":
        order = sorted(
            range(n_clients),
            key=lambda i: ((priorities or [0] * n_clients)[i], i),
        )
        cases = [(eligible_bits[i], Const(i, idx_width)) for i in order]
        module.add_assign(grant_index, mux_chain(Const(0, idx_width), cases),
                          "fixed priority encoder")
    elif kind == "round_robin":
        pointer = module.add_register("arb_rr_pointer", idx_width, 0,
                                      "next client to favour")
        module.add_assign(
            grant_index,
            _rotated_priority(eligible_bits, pointer.ref(), n_clients, idx_width),
            "rotating priority encoder",
        )
        next_pointer = BinOp(
            "+", grant_index.ref(),
            Const(1, idx_width),
        )
        wrap = BinOp("==", grant_index.ref(), Const(n_clients - 1, idx_width))
        module.add_clocked_assign(
            pointer,
            Mux(wrap, Const(0, idx_width), next_pointer),
            enable=BinOp("&", grant_enable, any_eligible.ref()),
            comment="advance past the granted client",
        )
    elif kind == "fcfs":
        ages = [
            module.add_register(f"arb_age_{i}", FCFS_AGE_BITS, 0,
                                f"wait age of client {i}")
            for i in range(n_clients)
        ]
        # Oldest-first compare/mux tree.
        best_idx: Expr = Const(0, idx_width)
        best_age: Expr = Mux(
            eligible_bits[0], ages[0].ref(), Const(0, FCFS_AGE_BITS)
        )
        for i in range(1, n_clients):
            age_i: Expr = Mux(eligible_bits[i], ages[i].ref(), Const(0, FCFS_AGE_BITS))
            take = BinOp("<", best_age, age_i)
            best_idx = Mux(take, Const(i, idx_width), best_idx)
            best_age = Mux(take, age_i, best_age)
        module.add_assign(grant_index, best_idx, "oldest eligible requester")
        for i in range(n_clients):
            max_age = Const((1 << FCFS_AGE_BITS) - 1, FCFS_AGE_BITS)
            saturated = BinOp("==", ages[i].ref(), max_age)
            incremented = Mux(
                saturated, max_age,
                BinOp("+", ages[i].ref(), Const(1, FCFS_AGE_BITS)),
            )
            granted_i = BinOp(
                "&",
                BinOp("&", grant_enable, any_eligible.ref()),
                BinOp("==", grant_index.ref(), Const(i, idx_width)),
            )
            hold = Mux(eligible_bits[i], incremented, Const(0, FCFS_AGE_BITS))
            module.add_clocked_assign(
                ages[i],
                Mux(granted_i, Const(0, FCFS_AGE_BITS), hold),
                comment=f"age counter, client {i}",
            )
    elif kind == "random":
        lfsr = module.add_register("arb_lfsr", LFSR_BITS, 0xACE1,
                                   "pseudo-random source")
        feedback: Expr = BitSelect_safe(lfsr.ref(), LFSR_TAPS[0])
        for tap in LFSR_TAPS[1:]:
            feedback = BinOp("^", feedback, BitSelect_safe(lfsr.ref(), tap))
        shifted = Concat_safe(lfsr.ref(), feedback, LFSR_BITS)
        module.add_clocked_assign(lfsr, shifted, comment="LFSR advance")
        start = module.add_net("arb_rand_start", idx_width)
        raw = module.add_net("arb_rand_raw", idx_width)
        module.add_assign(raw, Slice_low(lfsr.ref(), idx_width))
        if n_clients == (1 << idx_width):
            # The raw slice already covers exactly the client range.
            module.add_assign(start, raw.ref())
        else:
            in_range = BinOp("<", raw.ref(), Const(n_clients, idx_width))
            module.add_assign(start, Mux(in_range, raw.ref(), Const(0, idx_width)))
        module.add_assign(
            grant_index,
            _rotated_priority(eligible_bits, start.ref(), n_clients, idx_width),
            "LFSR-rotated priority encoder",
        )
    else:
        raise SynthesisError(f"no IR emission for arbiter kind {kind!r}")

    return any_eligible, grant_index


# Small IR helpers kept local to arbiter construction.

def BitSelect_safe(expr: Expr, index: int) -> Expr:
    from .ir import BitSelect

    return BitSelect(expr, index)


def Concat_safe(value: Expr, lsb: Expr, width: int) -> Expr:
    """``{value[width-2:0], lsb}`` — shift left by one, insert new LSB."""
    from .ir import BitSelect, Concat

    bits = [BitSelect(value, i) for i in range(width - 2, -1, -1)]
    return Concat(*bits, lsb)


def Slice_low(expr: Expr, width: int) -> Expr:
    from .ir import BitSelect, Concat

    bits = [BitSelect(expr, i) for i in range(width - 1, -1, -1)]
    return Concat(*bits)
