"""Polymorphic-dispatch synthesis.

SystemC+'s hardware polymorphism lowers a late-bound call over a bounded
class set to a tag register plus a multiplexer across the variants'
implementations. :func:`synthesize_dispatch` emits that structure and
returns the dispatch metadata the report counts.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..osss.polymorphism import PolymorphicVar
from .ir import BinOp, Const, RtlModule, clog2
from .object_synth import estimate_state_bits


class DispatchInfo:
    """Synthesis facts about one polymorphic variable."""

    def __init__(
        self,
        name: str,
        variants: typing.Sequence[str],
        tag_bits: int,
        union_state_bits: int,
        methods: typing.Sequence[str],
    ) -> None:
        self.name = name
        self.variants = list(variants)
        self.tag_bits = tag_bits
        self.union_state_bits = union_state_bits
        self.methods = list(methods)

    @property
    def mux_inputs(self) -> int:
        """Total mux arms across all dispatched methods."""
        return len(self.variants) * len(self.methods)

    def __repr__(self) -> str:
        return (
            f"DispatchInfo({self.name}: {len(self.variants)} variants, "
            f"tag {self.tag_bits}b, union {self.union_state_bits}b)"
        )


def synthesize_dispatch(var: PolymorphicVar, module_name: str | None = None
                        ) -> tuple[RtlModule, DispatchInfo]:
    """Lower *var* to a tagged-union + dispatch-mux netlist.

    The union storage is sized as the maximum over the variants' state
    estimates (a tagged union shares storage); each interface method gets
    a per-variant strobe selected by the tag register.
    """
    methods = var.interface_methods()
    if not methods:
        raise SynthesisError(
            f"{var.name}: the base class {var.base.__name__} declares no "
            "public methods to dispatch"
        )
    module = RtlModule(
        module_name or f"poly_{var.name}",
        comment=(
            f"polymorphic dispatch for {var.base.__name__} over "
            f"{[v.__name__ for v in var.variants]}"
        ),
    )
    module.add_port("clk", "in", 1)
    module.add_port("rst_n", "in", 1)
    tag_bits = var.tag_bits
    call_go = module.add_port("call_go", "in", 1, "invoke the selected body")
    method_bits = clog2(max(2, len(methods)))
    module.add_port("method_sel", "in", method_bits, "which interface method")
    tag = module.add_register("tag", tag_bits, 0, "which variant is held")
    assign_strobe = module.add_port("assign_go", "in", 1, "store a new variant")
    new_tag = module.add_port("new_tag", "in", tag_bits)
    module.add_clocked_assign(tag, new_tag.ref(), enable=assign_strobe.ref(),
                              comment="assignment updates the tag")

    # Union storage: max of the variants' state estimates.
    union_bits = 0
    for variant in var.variants:
        try:
            instance = variant()
        except TypeError:
            # Variants with required constructor args: charge a default.
            union_bits = max(union_bits, 32)
            continue
        union_bits = max(union_bits, sum(estimate_state_bits(instance).values()) or 1)
    union_state = module.add_register(
        "union_state", max(1, union_bits), 0,
        "shared storage of the tagged union")
    # The variants' bodies stay behavioural; structurally the union is a
    # self-hold gated by the call strobe (real datapath goes here).
    module.add_clocked_assign(
        union_state, union_state.ref(), enable=call_go.ref(),
        comment="updated behaviourally by the variant bodies")

    # One strobe per (variant, method): the dispatch multiplexer.
    for v_index, variant in enumerate(var.variants):
        for m_index, method in enumerate(methods):
            strobe = module.add_port(
                f"run_{variant.__name__.lower()}_{method}", "out", 1,
                f"body of {variant.__name__}.{method}",
            )
            tag_match = BinOp("==", tag.ref(), Const(v_index, tag_bits))
            method_match = BinOp(
                "==", module.port("method_sel").ref(), Const(m_index, method_bits)
            )
            module.add_assign(
                strobe,
                BinOp("&", call_go.ref(), BinOp("&", tag_match, method_match)),
                "late binding resolved by the tag register",
            )

    info = DispatchInfo(
        var.name,
        [variant.__name__ for variant in var.variants],
        tag_bits,
        max(1, union_bits),
        methods,
    )
    return module, info
