"""The communication synthesis driver (the "ODETTE tool").

:func:`synthesize_communication` takes a built (not yet run) design,
discovers every global-object connection group, stops the behavioural
servers and replaces each group's communication with an RT-level
:class:`~repro.synthesis.rtl_channel.RtlMethodChannel`, generating the
matching structural netlists, HDL text and the synthesis report along
the way. Application code is untouched: its guarded-method calls are
served by the synthesized channel from then on.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..kernel.simulator import Simulator
from ..osss.global_object import GlobalObject
from ..osss.polymorphism import PolymorphicVar
from .arbiter_synth import RtlStaticPriorityPolicy
from .channel_synth import build_channel_ir
from .emit_verilog import emit_verilog
from .emit_vhdl import emit_vhdl
from .object_synth import build_object_ir, estimate_state_bits
from .poly_synth import synthesize_dispatch
from .report import SynthesisReport
from .rtl_channel import RtlMethodChannel


#: Execution backends a synthesized design can run on.
BACKENDS = ("interpreted", "compiled")


class SynthesisConfig:
    """Knobs of the communication synthesizer.

    :param body_cycles: clocks charged per method-body execution.
    :param data_width: width of the opaque data buses in the netlists.
    :param emit_hdl: generate Verilog/VHDL text (skip to save time in
        large parameter sweeps).
    :param lint_ir: run the IR design rules over every generated netlist
        before HDL emission; error-severity findings abort synthesis.
    :param backend: execution backend for the synthesized channels —
        ``"interpreted"`` (the generator-based RTL channel) or
        ``"compiled"`` (the channel IR lowered to generated Python by
        :mod:`repro.compile`; cycle-equivalent, much faster).
    """

    def __init__(
        self,
        body_cycles: int = 1,
        data_width: int = 32,
        emit_hdl: bool = True,
        lint_ir: bool = True,
        backend: str = "interpreted",
    ) -> None:
        if body_cycles < 1:
            raise SynthesisError("body_cycles must be >= 1")
        if data_width < 1:
            raise SynthesisError("data_width must be >= 1")
        if backend not in BACKENDS:
            raise SynthesisError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.body_cycles = body_cycles
        self.data_width = data_width
        self.emit_hdl = emit_hdl
        self.lint_ir = lint_ir
        self.backend = backend


class SynthesizedGroup:
    """Everything produced for one connection group."""

    def __init__(
        self,
        name: str,
        handles: list[GlobalObject],
        channel: RtlMethodChannel,
        channel_ir,
        object_ir,
        verilog: str,
        vhdl: str,
        dispatch_irs: list | None = None,
    ) -> None:
        self.name = name
        self.handles = handles
        self.channel = channel
        self.channel_ir = channel_ir
        self.object_ir = object_ir
        self.verilog = verilog
        self.vhdl = vhdl
        #: Netlists of polymorphic dispatches found in the object state.
        self.dispatch_irs = dispatch_irs or []

    @property
    def client_count(self) -> int:
        return len(self.channel.clients)


class SynthesisResult:
    """Outcome of one synthesis run."""

    def __init__(self, top: Module, report: SynthesisReport) -> None:
        self.top = top
        self.report = report
        self.groups: list[SynthesizedGroup] = []

    def group_for(self, handle: GlobalObject) -> SynthesizedGroup:
        root = handle._root()
        for group in self.groups:
            if any(h._root() is root for h in group.handles):
                return group
        raise SynthesisError(f"{handle.path} was not synthesized")

    def all_verilog(self) -> str:
        return "\n\n".join(g.verilog for g in self.groups if g.verilog)

    def all_vhdl(self) -> str:
        return "\n\n".join(g.vhdl for g in self.groups if g.vhdl)


#: When set, every completed synthesis run is reported here as
#: ``callback(sim, result)`` — how ``python -m repro analyze`` captures
#: the netlists built deep inside a user script it merely executes
#: (same pattern as the profile CLI's process-wide probe bus).
_SYNTHESIS_SINK: "typing.Callable[[Simulator, SynthesisResult], None] | None" \
    = None


def set_synthesis_sink(
    sink: "typing.Callable[[Simulator, SynthesisResult], None] | None",
) -> "typing.Callable[[Simulator, SynthesisResult], None] | None":
    """Install (or clear, with ``None``) the process-wide result sink.

    Returns the previous sink so callers can restore it.
    """
    global _SYNTHESIS_SINK
    previous = _SYNTHESIS_SINK
    _SYNTHESIS_SINK = sink
    return previous


def _lint_group_netlists(group_name: str, modules: list) -> None:
    """IR sanity pass over one group's netlists; errors abort synthesis."""
    # Imported lazily: the lint package imports synthesis.ir.
    from ..lint.runner import lint_rtl_module

    for module in modules:
        report = lint_rtl_module(module)
        if report.has_errors:
            raise SynthesisError(
                f"group {group_name!r}: netlist {module.name!r} failed the "
                "IR design rules:\n" + report.render()
            )


def discover_groups(sim: Simulator) -> list[list[GlobalObject]]:
    """All global-object connection groups in the design, as handle lists."""
    by_root: dict[int, list[GlobalObject]] = {}
    for __, obj in sim.iter_named():
        if isinstance(obj, GlobalObject):
            by_root.setdefault(id(obj._root()), []).append(obj)
    return [sorted(handles, key=lambda h: h.path) for handles in by_root.values()]


def synthesize_communication(
    sim: Simulator,
    clk: Signal,
    config: SynthesisConfig | None = None,
    only: typing.Sequence[GlobalObject] | None = None,
    top_name: str = "odette_synth",
) -> SynthesisResult:
    """Lower global-object communication to RT level.

    :param sim: the built design (must not be elaborated/run yet).
    :param clk: the clock every synthesized channel runs on.
    :param only: restrict synthesis to the groups containing these
        handles (default: every group in the design).
    :returns: a :class:`SynthesisResult`; after this call the design is
        the paper's "mixed RT-behavioural" model and can be simulated
        for the post-synthesis validation step.
    """
    if sim.elaborated:
        raise SynthesisError("synthesize before elaborating/running the design")
    config = config or SynthesisConfig()
    groups = discover_groups(sim)
    if only is not None:
        wanted_roots = {id(handle._root()) for handle in only}
        groups = [g for g in groups if id(g[0]._root()) in wanted_roots]
    if not groups:
        raise SynthesisError("no global-object communication found to synthesize")

    top = Module(sim, top_name)
    report = SynthesisReport()
    result = SynthesisResult(top, report)

    for index, handles in enumerate(groups):
        root = handles[0]._root()
        space = root._space
        assert space is not None
        if space.stats.total_requests:
            raise SynthesisError(
                f"group of {root.path} already communicated; synthesize "
                "before running the model"
            )
        group_name = f"chan{index}_" + root.path.replace(".", "_")
        # Stop the behavioural server; the RTL channel takes over.
        space.server.kill()
        if config.backend == "compiled":
            # Imported lazily: repro.compile imports synthesis and analyze.
            from ..compile.channel import CompiledChannel

            channel: RtlMethodChannel = typing.cast(
                RtlMethodChannel,
                CompiledChannel(
                    top, group_name, space, handles, clk, config.body_cycles
                ),
            )
        else:
            channel = RtlMethodChannel(
                top, group_name, space, handles, clk, config.body_cycles
            )
        for handle in handles:
            handle._root()._lowered = channel
        # Structural netlists.
        priorities = None
        if isinstance(channel.policy, RtlStaticPriorityPolicy):
            priorities = channel.policy.priorities
        channel_ir = build_channel_ir(
            group_name,
            len(channel.clients),
            channel.method_names,
            channel.policy.kind,
            config.body_cycles,
            priorities,
            config.data_width,
        )
        if config.backend == "compiled":
            # The compiled backend *executes* the synthesized netlist:
            # the channel IR is lowered to generated Python and bound as
            # the channel's clocked core.
            channel.bind_netlist(channel_ir)
        object_ir = build_object_ir(
            f"obj{index}_" + type(space.state).__name__.lower(),
            space.state,
            space.methods,
            channel.method_names,
        )
        report.add_module(channel_ir)
        report.add_module(object_ir)
        # Polymorphic members of the shared state lower to tag+mux
        # dispatch structures (the SystemC+ late-binding feature).
        dispatch_irs = []
        state_vars = vars(space.state) if hasattr(space.state, "__dict__") else {}
        for attr_name, attr_value in sorted(state_vars.items()):
            if isinstance(attr_value, PolymorphicVar):
                dispatch_module, dispatch_info = synthesize_dispatch(
                    attr_value,
                    f"poly{index}_{attr_name.lstrip('_')}",
                )
                dispatch_irs.append(dispatch_module)
                report.add_module(dispatch_module)
                report.add_dispatch(dispatch_info)
        report.add_channel_info(
            {
                "name": group_name,
                "clients": len(channel.clients),
                "methods": len(channel.method_names),
                "arbiter": channel.policy.kind,
                "cls": type(space.state).__name__,
                "state_bits": sum(estimate_state_bits(space.state).values()),
            }
        )
        if config.lint_ir:
            _lint_group_netlists(group_name, [channel_ir, object_ir, *dispatch_irs])
        verilog = vhdl = ""
        if config.emit_hdl:
            verilog_parts = [emit_verilog(channel_ir), emit_verilog(object_ir)]
            vhdl_parts = [emit_vhdl(channel_ir), emit_vhdl(object_ir)]
            for dispatch_module in dispatch_irs:
                verilog_parts.append(emit_verilog(dispatch_module))
                vhdl_parts.append(emit_vhdl(dispatch_module))
            verilog = "\n\n".join(verilog_parts)
            vhdl = "\n\n".join(vhdl_parts)
        result.groups.append(
            SynthesizedGroup(
                group_name, list(handles), channel, channel_ir, object_ir,
                verilog, vhdl, dispatch_irs,
            )
        )
    if _SYNTHESIS_SINK is not None:
        _SYNTHESIS_SINK(sim, result)
    return result
