"""VHDL netlist emission.

The VHDL backend mirrors :mod:`~repro.synthesis.emit_verilog`: it prints
an :class:`~repro.synthesis.ir.RtlModule` as a VHDL-93 entity +
architecture pair (numeric_std arithmetic, one clocked process with an
asynchronous active-low reset, FSM as a case statement).
"""

from __future__ import annotations

from ..errors import SynthesisError
from .ir import (
    BinOp,
    BitSelect,
    Concat,
    Const,
    Expr,
    Mux,
    Ref,
    RtlModule,
    UnOp,
)


def _type(width: int) -> str:
    return "std_logic" if width == 1 else f"std_logic_vector({width - 1} downto 0)"


def _const(value: int, width: int) -> str:
    if width == 1:
        return f"'{value}'"
    bits = format(value, f"0{width}b")
    return f'"{bits}"'


def _bool_to_sl(condition: str) -> str:
    return f"'1' when {condition} else '0'"


def _expr(expr: Expr) -> str:
    """Render as a std_logic / std_logic_vector VHDL expression."""
    if isinstance(expr, Const):
        return _const(expr.value, expr.width)
    if isinstance(expr, Ref):
        return expr.net.name
    if isinstance(expr, UnOp):
        if expr.op == "~":
            return f"(not {_expr(expr.operand)})"
        if expr.op == "|":
            if expr.operand.width == 1:
                return _expr(expr.operand)
            return f"(or_reduce({_expr(expr.operand)}))"
        if expr.op == "&":
            if expr.operand.width == 1:
                return _expr(expr.operand)
            return f"(and_reduce({_expr(expr.operand)}))"
    if isinstance(expr, BinOp):
        left, right = _expr(expr.left), _expr(expr.right)
        if expr.op in ("&", "|", "^"):
            word = {"&": "and", "|": "or", "^": "xor"}[expr.op]
            return f"({left} {word} {right})"
        if expr.op in ("+", "-"):
            return (
                f"std_logic_vector(unsigned({left}) {expr.op} unsigned({right}))"
                if expr.width > 1
                else f"({left} xor {right})"
            )
        if expr.op in ("==", "!=", "<"):
            vhdl_op = {"==": "=", "!=": "/=", "<": "<"}[expr.op]
            if expr.left.width > 1 and expr.op == "<":
                condition = f"unsigned({left}) {vhdl_op} unsigned({right})"
            else:
                condition = f"{left} {vhdl_op} {right}"
            return f"({_bool_to_sl(condition)})"
    if isinstance(expr, Mux):
        return (
            f"({_expr(expr.if_true)} when {_expr(expr.select)} = '1' "
            f"else {_expr(expr.if_false)})"
        )
    if isinstance(expr, BitSelect):
        operand = expr.operand
        if isinstance(operand, Ref) and operand.width > 1:
            return f"{operand.net.name}({expr.index})"
        if isinstance(operand, Ref):
            return operand.net.name
        raise SynthesisError(
            f"VHDL backend: bit-select of a computed expression ({expr!r}); "
            "materialise it on a net first"
        )
    if isinstance(expr, Concat):
        return "(" + " & ".join(_expr(part) for part in expr.parts) + ")"
    raise SynthesisError(f"cannot emit expression {expr!r}")


def emit_vhdl(module: RtlModule) -> str:
    """Render *module* as a VHDL source string."""
    lines: list[str] = []
    if module.comment:
        lines.append(f"-- {module.comment}")
    lines.append("library ieee;")
    lines.append("use ieee.std_logic_1164.all;")
    lines.append("use ieee.numeric_std.all;")
    lines.append("use ieee.std_logic_misc.all;")
    lines.append("")
    lines.append(f"entity {module.name} is")
    lines.append("    port (")
    for index, port in enumerate(module.ports):
        direction = "in " if port.direction == "in" else "out"
        separator = ";" if index < len(module.ports) - 1 else ""
        comment = f"  -- {port.comment}" if port.comment else ""
        lines.append(
            f"        {port.name} : {direction} {_type(port.width)}{separator}{comment}"
        )
    lines.append("    );")
    lines.append(f"end entity {module.name};")
    lines.append("")
    lines.append(f"architecture rtl of {module.name} is")
    for net in module.nets:
        comment = f"  -- {net.comment}" if net.comment else ""
        lines.append(f"    signal {net.name} : {_type(net.width)};{comment}")
    for register in module.registers:
        comment = f"  -- {register.comment}" if register.comment else ""
        if register.reset_value is None:
            lines.append(
                f"    signal {register.name} : {_type(register.width)};{comment}"
            )
        else:
            lines.append(
                f"    signal {register.name} : {_type(register.width)} := "
                f"{_const(register.reset_value, register.width)};{comment}"
            )
    for fsm in module.fsms:
        for index, state in enumerate(fsm.states):
            lines.append(
                f"    constant {fsm.name.upper()}_{state} : "
                f"{_type(fsm.state_register.width)} := "
                f"{_const(index, fsm.state_register.width)};"
            )
    # Output ports that are assigned combinationally need internal copies in
    # strict VHDL; we keep the direct form for readability (VHDL-2008 allows
    # reading outputs).
    lines.append("begin")
    for assign in module.assigns:
        comment = f"  -- {assign.comment}" if assign.comment else ""
        lines.append(f"    {assign.target.name} <= {_expr(assign.expr)};{comment}")
    lines.append("")
    if module.clocked_assigns or module.fsms:
        lines.append("    seq : process (clk, rst_n)")
        lines.append("    begin")
        lines.append("        if rst_n = '0' then")
        for register in module.registers:
            if register.reset_value is None:
                continue  # no reset assign: powers up undefined
            lines.append(
                f"            {register.name} <= "
                f"{_const(register.reset_value, register.width)};"
            )
        lines.append("        elsif rising_edge(clk) then")
        for item in module.clocked_assigns:
            comment = f"  -- {item.comment}" if item.comment else ""
            if item.enable is not None:
                lines.append(f"            if {_expr(item.enable)} = '1' then")
                lines.append(
                    f"                {item.target.name} <= {_expr(item.expr)};{comment}"
                )
                lines.append("            end if;")
            else:
                lines.append(
                    f"            {item.target.name} <= {_expr(item.expr)};{comment}"
                )
        for fsm in module.fsms:
            lines.append(f"            case {fsm.state_register.name} is")
            for state in fsm.states:
                arcs = [t for t in fsm.transitions if t.source == state]
                lines.append(f"                when {fsm.name.upper()}_{state} =>")
                first = True
                for arc in arcs:
                    target = f"{fsm.name.upper()}_{arc.target}"
                    if arc.condition is None:
                        lines.append(
                            f"                    {fsm.state_register.name} <= {target};"
                        )
                    else:
                        keyword = "if" if first else "elsif"
                        lines.append(
                            f"                    {keyword} {_expr(arc.condition)} = '1' then"
                        )
                        lines.append(
                            f"                        {fsm.state_register.name} <= {target};"
                        )
                        first = False
                if not first:
                    lines.append("                    end if;")
            lines.append(
                f"                when others => {fsm.state_register.name} <= "
                f"{fsm.name.upper()}_{fsm.reset_state};"
            )
            lines.append("            end case;")
        lines.append("        end if;")
        lines.append("    end process seq;")
    lines.append(f"end architecture rtl;")
    return "\n".join(lines)
