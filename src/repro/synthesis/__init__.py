"""Communication synthesis — the reproduction of the ODETTE tool.

Lowers SystemC+/OSSS global-object communication to a mixed
RT-behavioural model: per-client handshakes, a synthesized arbiter and a
server FSM become cycle-accurate hardware (with Verilog/VHDL netlists
emitted), while method bodies remain behavioural.
"""

from .arbiter_synth import (
    RtlArbiterPolicy,
    RtlFcfsPolicy,
    RtlRandomPolicy,
    RtlRoundRobinPolicy,
    RtlStaticPriorityPolicy,
    lower_arbiter,
)
from .channel_synth import build_channel_ir
from .emit_dot import emit_fsm_dot, emit_module_dot
from .emit_verilog import emit_verilog
from .emit_vhdl import emit_vhdl
from .ir import (
    Assign,
    BinOp,
    BitSelect,
    ClockedAssign,
    Concat,
    Const,
    Expr,
    Fsm,
    Mux,
    Net,
    Port,
    Ref,
    Register,
    RtlModule,
    UnOp,
    clog2,
    mux_chain,
)
from .object_synth import build_object_ir, estimate_state_bits
from .poly_synth import DispatchInfo, synthesize_dispatch
from .report import ModuleReport, SynthesisReport
from .rtl_channel import ChannelCallRecord, RtlMethodChannel
from .tool import (
    SynthesisConfig,
    SynthesisResult,
    SynthesizedGroup,
    discover_groups,
    synthesize_communication,
)

__all__ = [
    "Assign",
    "BinOp",
    "BitSelect",
    "ChannelCallRecord",
    "ClockedAssign",
    "Concat",
    "Const",
    "DispatchInfo",
    "Expr",
    "Fsm",
    "ModuleReport",
    "Mux",
    "Net",
    "Port",
    "Ref",
    "Register",
    "RtlArbiterPolicy",
    "RtlFcfsPolicy",
    "RtlMethodChannel",
    "RtlModule",
    "RtlRandomPolicy",
    "RtlRoundRobinPolicy",
    "RtlStaticPriorityPolicy",
    "SynthesisConfig",
    "SynthesisReport",
    "SynthesisResult",
    "SynthesizedGroup",
    "UnOp",
    "build_channel_ir",
    "build_object_ir",
    "clog2",
    "discover_groups",
    "emit_fsm_dot",
    "emit_module_dot",
    "emit_verilog",
    "emit_vhdl",
    "estimate_state_bits",
    "lower_arbiter",
    "mux_chain",
    "synthesize_dispatch",
    "synthesize_communication",
]
