"""Verilog netlist emission.

Prints an :class:`~repro.synthesis.ir.RtlModule` as synthesizable
Verilog-2001 — the artifact handed to the downstream RTL-to-gate tool in
the paper's flow (CoCentric in the original, any commercial synthesizer
here).
"""

from __future__ import annotations

from ..errors import SynthesisError
from .ir import (
    Assign,
    BinOp,
    BitSelect,
    ClockedAssign,
    Concat,
    Const,
    Expr,
    Fsm,
    Mux,
    Net,
    Port,
    Ref,
    Register,
    RtlModule,
    UnOp,
)

_BINOP_VERILOG = {
    "&": "&", "|": "|", "^": "^", "+": "+", "-": "-",
    "==": "==", "!=": "!=", "<": "<",
}


def _expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, Ref):
        return expr.net.name
    if isinstance(expr, UnOp):
        if expr.op == "~":
            return f"(~{_expr(expr.operand)})"
        return f"({expr.op}{_expr(expr.operand)})"  # reduction | or &
    if isinstance(expr, BinOp):
        op = _BINOP_VERILOG[expr.op]
        return f"({_expr(expr.left)} {op} {_expr(expr.right)})"
    if isinstance(expr, Mux):
        return (
            f"({_expr(expr.select)} ? {_expr(expr.if_true)} : "
            f"{_expr(expr.if_false)})"
        )
    if isinstance(expr, BitSelect):
        operand = expr.operand
        if isinstance(operand, Ref):
            return f"{operand.net.name}[{expr.index}]"
        return f"({_expr(operand)} >> {expr.index}) & 1'b1"
    if isinstance(expr, Concat):
        return "{" + ", ".join(_expr(part) for part in expr.parts) + "}"
    raise SynthesisError(f"cannot emit expression {expr!r}")


def _range(width: int) -> str:
    return "" if width == 1 else f"[{width - 1}:0] "


def emit_verilog(module: RtlModule) -> str:
    """Render *module* as a Verilog source string."""
    lines: list[str] = []
    if module.comment:
        lines.append(f"// {module.comment}")
    lines.append(f"module {module.name} (")
    for index, port in enumerate(module.ports):
        direction = "input " if port.direction == "in" else "output"
        separator = "," if index < len(module.ports) - 1 else ""
        comment = f"  // {port.comment}" if port.comment else ""
        lines.append(
            f"    {direction} wire {_range(port.width)}{port.name}{separator}{comment}"
        )
    lines.append(");")
    lines.append("")

    fsm_regs = {fsm.state_register.name for fsm in module.fsms}
    for net in module.nets:
        comment = f"  // {net.comment}" if net.comment else ""
        lines.append(f"    wire {_range(net.width)}{net.name};{comment}")
    for register in module.registers:
        comment = f"  // {register.comment}" if register.comment else ""
        lines.append(f"    reg  {_range(register.width)}{register.name};{comment}")
    lines.append("")

    for fsm in module.fsms:
        for index, state in enumerate(fsm.states):
            lines.append(
                f"    localparam {fsm.name.upper()}_{state} = "
                f"{fsm.state_register.width}'d{index};"
            )
    lines.append("")

    for assign in module.assigns:
        comment = f"  // {assign.comment}" if assign.comment else ""
        lines.append(f"    assign {assign.target.name} = {_expr(assign.expr)};{comment}")
    lines.append("")

    clocked = [c for c in module.clocked_assigns]
    if clocked or module.fsms:
        lines.append("    always @(posedge clk or negedge rst_n) begin")
        lines.append("        if (!rst_n) begin")
        for register in module.registers:
            if register.reset_value is None:
                lines.append(
                    f"            // {register.name}: no reset (powers up X)"
                )
                continue
            lines.append(
                f"            {register.name} <= {register.width}'d"
                f"{register.reset_value};"
            )
        lines.append("        end else begin")
        for item in clocked:
            comment = f"  // {item.comment}" if item.comment else ""
            if item.enable is not None:
                lines.append(f"            if ({_expr(item.enable)})")
                lines.append(
                    f"                {item.target.name} <= {_expr(item.expr)};{comment}"
                )
            else:
                lines.append(
                    f"            {item.target.name} <= {_expr(item.expr)};{comment}"
                )
        for fsm in module.fsms:
            lines.append(f"            case ({fsm.state_register.name})")
            for state in fsm.states:
                arcs = [t for t in fsm.transitions if t.source == state]
                lines.append(f"                {fsm.name.upper()}_{state}: begin")
                first = True
                for arc in arcs:
                    target = f"{fsm.name.upper()}_{arc.target}"
                    if arc.condition is None:
                        lines.append(
                            f"                    {fsm.state_register.name} <= {target};"
                        )
                    else:
                        keyword = "if" if first else "else if"
                        lines.append(
                            f"                    {keyword} ({_expr(arc.condition)})"
                        )
                        lines.append(
                            f"                        {fsm.state_register.name} <= {target};"
                        )
                        first = False
                lines.append("                end")
            lines.append("                default: "
                         f"{fsm.state_register.name} <= "
                         f"{fsm.name.upper()}_{fsm.reset_state};")
            lines.append("            endcase")
        lines.append("        end")
        lines.append("    end")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)
