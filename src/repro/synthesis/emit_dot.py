"""Graphviz (DOT) export of synthesized FSMs.

A documentation artifact: render the server FSM (or any IR FSM) as a
state diagram for design reviews, matching the netlist the HDL backends
print.
"""

from __future__ import annotations

from .ir import Fsm, RtlModule


def _label(condition) -> str:
    if condition is None:
        return ""
    text = repr(condition)
    # Keep the edge labels readable: Ref(foo) -> foo etc.
    for noise in ("Ref(", "UnOp(", "BinOp(", ")"):
        text = text.replace(noise, "")
    return text.replace("'", "")


def emit_fsm_dot(fsm: Fsm, graph_name: str | None = None) -> str:
    """Render one FSM as a DOT digraph."""
    name = graph_name or fsm.name
    lines = [f"digraph {name} {{"]
    lines.append("    rankdir=LR;")
    lines.append("    node [shape=circle, fontname=monospace];")
    lines.append(
        f'    {fsm.reset_state} [shape=doublecircle];  // reset state'
    )
    for transition in fsm.transitions:
        label = _label(transition.condition)
        attr = f' [label="{label}"]' if label else ""
        lines.append(f"    {transition.source} -> {transition.target}{attr};")
    lines.append("}")
    return "\n".join(lines)


def emit_module_dot(module: RtlModule) -> str:
    """Render every FSM of *module*, concatenated."""
    return "\n\n".join(
        emit_fsm_dot(fsm, f"{module.name}_{fsm.name}") for fsm in module.fsms
    )
