"""RTL intermediate representation.

The communication synthesizer lowers every global-object channel to a
register-transfer structure: an arbiter, a server FSM and per-client
handshake logic. This module is the structural vocabulary for that
output — nets, registers, expressions, combinational assigns, clocked
assigns and FSMs — from which the Verilog/VHDL writers emit text and the
report generator counts resources.

The IR describes *control*: the method-argument/return data paths remain
behavioural (carried as opaque buses), which is precisely the "mixed
RT-behavioural level" the ODETTE tool produces.
"""

from __future__ import annotations

import math
import typing

from ..errors import SynthesisError


def clog2(value: int) -> int:
    """Bits needed to count *value* distinct states (min 1)."""
    if value < 1:
        raise SynthesisError(f"clog2 of non-positive value {value}")
    return max(1, math.ceil(math.log2(value)))


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of all IR expressions."""

    width: int

    def children(self) -> tuple["Expr", ...]:
        return ()

    def walk(self) -> typing.Iterator["Expr"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def referenced_nets(self) -> typing.Iterator["Net"]:
        """Every net read anywhere inside this expression (with repeats)."""
        for node in self.walk():
            if isinstance(node, Ref):
                yield node.net

    def count_nodes(self) -> int:
        return 1 + sum(child.count_nodes() for child in self.children())

    def count_muxes(self) -> int:
        own = 1 if isinstance(self, Mux) else 0
        return own + sum(child.count_muxes() for child in self.children())


class Const(Expr):
    """A literal constant of fixed width."""

    def __init__(self, value: int, width: int) -> None:
        if width < 1:
            raise SynthesisError(f"constant width must be >= 1, got {width}")
        if not 0 <= value < (1 << width):
            raise SynthesisError(f"constant {value} does not fit in {width} bits")
        self.value = value
        self.width = width

    def __repr__(self) -> str:
        return f"Const({self.value}, w{self.width})"


class Ref(Expr):
    """A reference to a net, register or port."""

    def __init__(self, net: "Net") -> None:
        self.net = net
        self.width = net.width

    def __repr__(self) -> str:
        return f"Ref({self.net.name})"


class UnOp(Expr):
    """Unary operator: ``~`` (bitwise not), ``|`` (reduce-or), ``&`` (reduce-and)."""

    OPS = ("~", "|", "&")

    def __init__(self, op: str, operand: Expr) -> None:
        if op not in self.OPS:
            raise SynthesisError(f"unknown unary op {op!r}")
        self.op = op
        self.operand = operand
        self.width = operand.width if op == "~" else 1

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"UnOp({self.op}, {self.operand!r})"


class BinOp(Expr):
    """Binary operator over equal-width operands (``==`` yields 1 bit)."""

    OPS = ("&", "|", "^", "+", "-", "==", "!=", "<")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in self.OPS:
            raise SynthesisError(f"unknown binary op {op!r}")
        if left.width != right.width:
            raise SynthesisError(
                f"binary op {op!r} width mismatch: {left.width} vs {right.width}"
            )
        self.op = op
        self.left = left
        self.right = right
        self.width = 1 if op in ("==", "!=", "<") else left.width

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"BinOp({self.left!r} {self.op} {self.right!r})"


class Mux(Expr):
    """2:1 multiplexer: ``sel ? if_true : if_false``."""

    def __init__(self, select: Expr, if_true: Expr, if_false: Expr) -> None:
        if select.width != 1:
            raise SynthesisError("mux select must be 1 bit")
        if if_true.width != if_false.width:
            raise SynthesisError(
                f"mux arm width mismatch: {if_true.width} vs {if_false.width}"
            )
        self.select = select
        self.if_true = if_true
        self.if_false = if_false
        self.width = if_true.width

    def children(self) -> tuple[Expr, ...]:
        return (self.select, self.if_true, self.if_false)

    def __repr__(self) -> str:
        return f"Mux({self.select!r}, {self.if_true!r}, {self.if_false!r})"


class BitSelect(Expr):
    """Select one bit of an expression."""

    def __init__(self, operand: Expr, index: int) -> None:
        if not 0 <= index < operand.width:
            raise SynthesisError(
                f"bit index {index} out of range for width {operand.width}"
            )
        self.operand = operand
        self.index = index
        self.width = 1

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"BitSelect({self.operand!r}[{self.index}])"


class Concat(Expr):
    """Bit concatenation; first operand is most significant."""

    def __init__(self, *parts: Expr) -> None:
        if not parts:
            raise SynthesisError("concat needs at least one part")
        self.parts = parts
        self.width = sum(part.width for part in parts)

    def children(self) -> tuple[Expr, ...]:
        return tuple(self.parts)

    def __repr__(self) -> str:
        return f"Concat({', '.join(repr(p) for p in self.parts)})"


def mux_chain(
    default: Expr, cases: typing.Sequence[tuple[Expr, Expr]]
) -> Expr:
    """Priority mux chain: first matching condition wins."""
    result = default
    for condition, value in reversed(list(cases)):
        result = Mux(condition, value, result)
    return result


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------

class Net:
    """A named wire (or port) of fixed width."""

    def __init__(self, name: str, width: int = 1, comment: str = "") -> None:
        if width < 1:
            raise SynthesisError(f"net {name!r}: width must be >= 1")
        self.name = name
        self.width = width
        self.comment = comment

    def ref(self) -> Ref:
        return Ref(self)

    def __repr__(self) -> str:
        return f"Net({self.name}, w{self.width})"


class Register(Net):
    """A clocked storage element with a reset value.

    ``reset_value=None`` declares a register with *no* reset assign: it
    powers up unknown (X) and stays unknown until first clocked. The
    synthesizer never produces these, but netlist transformations and
    imported IP may; the ``NET004`` analysis rule tracks the resulting
    X-propagation to primary outputs.
    """

    def __init__(
        self, name: str, width: int = 1, reset_value: "int | None" = 0,
        comment: str = "",
    ) -> None:
        super().__init__(name, width, comment)
        if reset_value is not None and not 0 <= reset_value < (1 << width):
            raise SynthesisError(
                f"register {name!r}: reset value {reset_value} does not fit "
                f"in {width} bits"
            )
        self.reset_value = reset_value

    @property
    def has_reset(self) -> bool:
        return self.reset_value is not None

    def __repr__(self) -> str:
        reset = "X" if self.reset_value is None else self.reset_value
        return f"Register({self.name}, w{self.width}, rst={reset})"


class Port(Net):
    """A module boundary net."""

    def __init__(
        self, name: str, direction: str, width: int = 1, comment: str = ""
    ) -> None:
        if direction not in ("in", "out"):
            raise SynthesisError(f"port {name!r}: bad direction {direction!r}")
        super().__init__(name, width, comment)
        self.direction = direction

    def __repr__(self) -> str:
        return f"Port({self.name}, {self.direction}, w{self.width})"


class Assign:
    """Continuous (combinational) assignment ``target = expr``."""

    def __init__(self, target: Net, expr: Expr, comment: str = "") -> None:
        if target.width != expr.width:
            raise SynthesisError(
                f"assign to {target.name!r}: width {target.width} != "
                f"expr width {expr.width}"
            )
        self.target = target
        self.expr = expr
        self.comment = comment


class ClockedAssign:
    """Registered assignment: ``target <= expr`` at the clock edge.

    *enable* (optional, 1 bit) gates the update.
    """

    def __init__(
        self,
        target: Register,
        expr: Expr,
        enable: Expr | None = None,
        comment: str = "",
    ) -> None:
        if not isinstance(target, Register):
            raise SynthesisError(
                f"clocked assign target {target.name!r} must be a Register"
            )
        if target.width != expr.width:
            raise SynthesisError(
                f"clocked assign to {target.name!r}: width {target.width} != "
                f"expr width {expr.width}"
            )
        if enable is not None and enable.width != 1:
            raise SynthesisError("clocked-assign enable must be 1 bit")
        self.target = target
        self.expr = expr
        self.enable = enable
        self.comment = comment


class FsmTransition:
    """One arc: in *source*, when *condition*, go to *target*."""

    def __init__(self, source: str, condition: Expr | None, target: str) -> None:
        if condition is not None and condition.width != 1:
            raise SynthesisError("FSM transition condition must be 1 bit")
        self.source = source
        self.condition = condition
        self.target = target


class Fsm:
    """A Moore state machine: named states, transitions, per-state outputs."""

    def __init__(self, name: str, states: typing.Sequence[str], reset_state: str) -> None:
        if not states:
            raise SynthesisError(f"FSM {name!r} needs at least one state")
        if len(set(states)) != len(states):
            raise SynthesisError(f"FSM {name!r} has duplicate states")
        if reset_state not in states:
            raise SynthesisError(
                f"FSM {name!r}: reset state {reset_state!r} not in state list"
            )
        self.name = name
        self.states = list(states)
        self.reset_state = reset_state
        self.transitions: list[FsmTransition] = []
        #: state -> list of (net, 1/0) Moore outputs.
        self.moore_outputs: dict[str, list[tuple[Net, int]]] = {}
        self.state_register = Register(
            f"{name}_state", clog2(len(states)), self.states.index(reset_state)
        )

    def encode(self, state: str) -> int:
        try:
            return self.states.index(state)
        except ValueError:
            raise SynthesisError(f"FSM {self.name!r}: unknown state {state!r}") from None

    def add_transition(self, source: str, condition: Expr | None, target: str) -> None:
        self.encode(source)
        self.encode(target)
        self.transitions.append(FsmTransition(source, condition, target))

    def set_output(self, state: str, net: Net, value: int) -> None:
        self.encode(state)
        self.moore_outputs.setdefault(state, []).append((net, value))

    @property
    def state_bits(self) -> int:
        return self.state_register.width


class ExprSite:
    """One expression occurrence inside a module.

    :param kind: ``"assign"`` | ``"clocked"`` | ``"enable"`` |
        ``"transition"``.
    :param label: human-readable site description for diagnostics.
    :param target: the net the site drives (the FSM state register for
        transition conditions).
    :param expr: the expression read at the site.
    """

    __slots__ = ("kind", "label", "target", "expr")

    def __init__(self, kind: str, label: str, target: Net, expr: Expr) -> None:
        self.kind = kind
        self.label = label
        self.target = target
        self.expr = expr

    def __repr__(self) -> str:
        return f"ExprSite({self.kind}: {self.label})"


class RtlModule:
    """One synthesized structural module."""

    def __init__(self, name: str, comment: str = "") -> None:
        self.name = name
        self.comment = comment
        self.ports: list[Port] = []
        self.nets: list[Net] = []
        self.registers: list[Register] = []
        self.assigns: list[Assign] = []
        self.clocked_assigns: list[ClockedAssign] = []
        self.fsms: list[Fsm] = []
        self._names: set[str] = set()

    def _claim(self, name: str) -> None:
        if name in self._names:
            raise SynthesisError(f"module {self.name!r}: duplicate name {name!r}")
        self._names.add(name)

    def add_port(self, name: str, direction: str, width: int = 1, comment: str = "") -> Port:
        self._claim(name)
        port = Port(name, direction, width, comment)
        self.ports.append(port)
        return port

    def add_net(self, name: str, width: int = 1, comment: str = "") -> Net:
        self._claim(name)
        net = Net(name, width, comment)
        self.nets.append(net)
        return net

    def add_register(
        self, name: str, width: int = 1, reset_value: "int | None" = 0,
        comment: str = "",
    ) -> Register:
        self._claim(name)
        register = Register(name, width, reset_value, comment)
        self.registers.append(register)
        return register

    def add_assign(self, target: Net, expr: Expr, comment: str = "") -> Assign:
        assign = Assign(target, expr, comment)
        self.assigns.append(assign)
        return assign

    def add_clocked_assign(
        self,
        target: Register,
        expr: Expr,
        enable: Expr | None = None,
        comment: str = "",
    ) -> ClockedAssign:
        clocked = ClockedAssign(target, expr, enable, comment)
        self.clocked_assigns.append(clocked)
        return clocked

    def add_fsm(self, fsm: Fsm) -> Fsm:
        self._claim(fsm.state_register.name)
        self.fsms.append(fsm)
        self.registers.append(fsm.state_register)
        return fsm

    def port(self, name: str) -> Port:
        """The port called *name* (raises if absent)."""
        for port in self.ports:
            if port.name == name:
                return port
        raise SynthesisError(f"module {self.name!r} has no port {name!r}")

    # -- traversal -------------------------------------------------------------

    def all_nets(self) -> list[Net]:
        """Every named net of the module: wires, registers and ports."""
        return [*self.nets, *self.registers, *self.ports]

    def iter_expr_sites(self) -> "typing.Iterator[ExprSite]":
        """Every expression site, tagged with what reads it.

        Sites cover continuous assigns, clocked assigns (expression and
        enable separately) and FSM transition conditions — everything an
        analysis pass must visit to see all net reads in the module.
        """
        for assign in self.assigns:
            yield ExprSite("assign", f"assign {assign.target.name}",
                           assign.target, assign.expr)
        for clocked in self.clocked_assigns:
            yield ExprSite("clocked", f"clocked assign {clocked.target.name}",
                           clocked.target, clocked.expr)
            if clocked.enable is not None:
                yield ExprSite("enable", f"enable of {clocked.target.name}",
                               clocked.target, clocked.enable)
        for fsm in self.fsms:
            for transition in fsm.transitions:
                if transition.condition is not None:
                    yield ExprSite(
                        "transition",
                        f"{fsm.name} transition "
                        f"{transition.source}->{transition.target}",
                        fsm.state_register,
                        transition.condition,
                    )

    # -- resource accounting ---------------------------------------------------

    def flip_flop_bits(self) -> int:
        return sum(register.width for register in self.registers)

    def mux_count(self) -> int:
        total = sum(a.expr.count_muxes() for a in self.assigns)
        total += sum(c.expr.count_muxes() for c in self.clocked_assigns)
        return total

    def expression_nodes(self) -> int:
        total = sum(a.expr.count_nodes() for a in self.assigns)
        total += sum(c.expr.count_nodes() for c in self.clocked_assigns)
        return total
