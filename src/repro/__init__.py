"""repro — a reproduction of "A Design Methodology for the Exploitation of
High Level Communication Synthesis" (Bruschi & Bombana, DATE 2004).

The package provides:

* :mod:`repro.kernel` — a SystemC-like discrete-event simulation kernel;
* :mod:`repro.hdl` — four-valued logic, signals, tri-state buses, modules;
* :mod:`repro.osss` — SystemC+ global objects with guarded methods and
  pluggable arbitration (the ODETTE language extension);
* :mod:`repro.tlm` — transaction-level channels and functional IP models;
* :mod:`repro.pci` — a pin-level simplified PCI bus substrate;
* :mod:`repro.core` — the paper's bus-interface design pattern and the
  PCI library element;
* :mod:`repro.synthesis` — the communication-synthesis tool (global-object
  channels lowered to RT-level protocols and arbiter FSMs, with Verilog/
  VHDL emission);
* :mod:`repro.verify` — pre/post-synthesis consistency checking,
  scoreboards and protocol monitors;
* :mod:`repro.flow` — the end-to-end design flow of the paper's Figure 2;
* :mod:`repro.trace` — VCD dumping and ASCII waveform rendering;
* :mod:`repro.instrument` — the probe bus shared by every observer, with
  metrics aggregation and wall-clock profiling (zero cost when off);
* :mod:`repro.compile` — the compiled fast-sim backend: synthesized
  netlists lowered to generated Python, selected with
  ``backend="compiled"`` and equivalence-gated against the
  interpreted channel.
"""

from ._version import __version__
from .errors import (
    ArbitrationError,
    ConsistencyError,
    ElaborationError,
    GuardTimeoutError,
    LogicValueError,
    MultipleDriverError,
    ProtocolError,
    RefinementError,
    ReproError,
    SimulationError,
    SynthesisError,
    WidthError,
)
from .kernel import FS, MS, NS, PS, SEC, US, Simulator, Timeout

__all__ = [
    "ArbitrationError",
    "ConsistencyError",
    "ElaborationError",
    "FS",
    "GuardTimeoutError",
    "LogicValueError",
    "MS",
    "MultipleDriverError",
    "NS",
    "PS",
    "ProtocolError",
    "RefinementError",
    "ReproError",
    "SEC",
    "SimulationError",
    "Simulator",
    "SynthesisError",
    "Timeout",
    "US",
    "WidthError",
    "__version__",
]
