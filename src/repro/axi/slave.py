"""AXI4-Lite slave (subordinate) with configurable channel latencies."""

from __future__ import annotations

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..tlm.interfaces import TlmTarget
from .signals import RESP_OKAY, RESP_SLVERR, AxiLiteBus, high


class AxiLiteSlave(Module):
    """A memory-mapped subordinate answering single-beat transfers.

    :param store: the functional model behind this slave.
    :param base / size: decoded address window (byte addresses).
    :param accept_latency: clocks between sampling a VALID request and
        asserting the matching READY (0 = accept on the next edge).

    Writes handshake AW and W together (READY asserted for one clock on
    both channels once both VALIDs are up), then drive B until BREADY;
    reads handshake AR, then drive R until RREADY. A request whose
    address misses the window is ignored — the master's timeout plays
    the DECERR role of a missing decoder.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: AxiLiteBus,
        clk: Signal,
        store: TlmTarget,
        base: int,
        size: int,
        accept_latency: int = 0,
    ) -> None:
        super().__init__(parent, name)
        if base % 4 or size <= 0 or size % 4:
            raise ProtocolError(f"bad window base={base:#x} size={size:#x}")
        if accept_latency < 0:
            raise ProtocolError("accept latency must be >= 0")
        self.bus = bus
        self.clk = clk
        self.store = store
        self.base = base
        self.size = size
        self.accept_latency = accept_latency
        self._awready = bus.awready.get_driver(self.path)
        self._wready = bus.wready.get_driver(self.path)
        self._bvalid = bus.bvalid.get_driver(self.path)
        self._bresp = bus.bresp.get_driver(self.path)
        self._arready = bus.arready.get_driver(self.path)
        self._rvalid = bus.rvalid.get_driver(self.path)
        self._rdata = bus.rdata.get_driver(self.path)
        self._rresp = bus.rresp.get_driver(self.path)
        self.requests_served = 0
        self.errors_signalled = 0
        self.thread(self._serve, "serve")

    def decodes(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def _release_all(self) -> None:
        for driver in (
            self._awready, self._wready, self._bvalid, self._bresp,
            self._arready, self._rvalid, self._rdata, self._rresp,
        ):
            driver.release()

    def _serve(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            aw = bus.awvalid.read().to_int_default(0) == 1
            w = bus.wvalid.read().to_int_default(0) == 1
            ar = bus.arvalid.read().to_int_default(0) == 1
            if aw and w:
                addr = bus.awaddr.read()
                if addr.is_fully_defined and self.decodes(addr.to_int()):
                    yield from self._write(addr.to_int())
                continue
            if ar:
                addr = bus.araddr.read()
                if addr.is_fully_defined and self.decodes(addr.to_int()):
                    yield from self._read(addr.to_int())

    def _write(self, address: int):
        bus = self.bus
        for __ in range(self.accept_latency):
            yield self.clk.posedge
            if bus.awvalid.read().to_int_default(0) != 1:
                return
        data = bus.wdata.read()
        strb = bus.wstrb.read().to_int_default(bus.strb_mask)
        # Accept AW and W together for exactly one clock.
        self._awready.write(1)
        self._wready.write(1)
        yield self.clk.posedge
        self._awready.release()
        self._wready.release()
        resp = RESP_OKAY
        try:
            if not data.is_fully_defined:
                raise ProtocolError(f"{self.path}: write with undefined WDATA")
            self.store.write_word(address - self.base, data.to_int(), strb)
            self.requests_served += 1
        except ProtocolError:
            resp = RESP_SLVERR
            self.errors_signalled += 1
        self._bvalid.write(1)
        self._bresp.write(LogicVector(2, resp))
        while True:
            yield self.clk.posedge
            if high(bus.bready.read()):
                break
        self._bvalid.release()
        self._bresp.release()

    def _read(self, address: int):
        bus = self.bus
        for __ in range(self.accept_latency):
            yield self.clk.posedge
            if bus.arvalid.read().to_int_default(0) != 1:
                return
        self._arready.write(1)
        yield self.clk.posedge
        self._arready.release()
        resp = RESP_OKAY
        value = 0
        try:
            value = self.store.read_word(address - self.base)
            self.requests_served += 1
        except ProtocolError:
            resp = RESP_SLVERR
            self.errors_signalled += 1
        self._rvalid.write(1)
        self._rdata.write(LogicVector(bus.data_width, value))
        self._rresp.write(LogicVector(2, resp))
        while True:
            yield self.clk.posedge
            if high(bus.rready.read()):
                break
        self._rvalid.release()
        self._rdata.release()
        self._rresp.release()
