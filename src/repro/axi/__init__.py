"""AXI4-Lite bus substrate: wires, master/slave engines, monitor.

The library's third pin-level bus family. AXI4-Lite is the register-
access subset of AXI4: five independent channels (AW, W, B, AR, R), each
a one-way VALID/READY handshake, single-beat transfers, 2-bit OKAY /
SLVERR / DECERR responses. Structurally it is the opposite of PCI's
multiplexed tri-state wires — separate address and data paths, no
turnaround cycles — which is exactly the kind of protocol diversity the
parameterized interface-element library is meant to absorb.
"""

from .interface import AxiLiteBusInterface, AxiLiteFunctionalInterface
from .master import AxiLiteMaster, AxiLiteOperation
from .monitor import AxiLiteMonitor, AxiLiteTransfer
from .signals import (
    RESP_DECERR,
    RESP_EXOKAY,
    RESP_NAMES,
    RESP_OKAY,
    RESP_SLVERR,
    AxiLiteBus,
)
from .slave import AxiLiteSlave

__all__ = [
    "AxiLiteBus",
    "AxiLiteBusInterface",
    "AxiLiteFunctionalInterface",
    "AxiLiteMaster",
    "AxiLiteMonitor",
    "AxiLiteOperation",
    "AxiLiteSlave",
    "AxiLiteTransfer",
    "RESP_DECERR",
    "RESP_EXOKAY",
    "RESP_NAMES",
    "RESP_OKAY",
    "RESP_SLVERR",
]
