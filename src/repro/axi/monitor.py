"""Passive AXI4-Lite monitor: handshake rules + transfer recording."""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_END, new_txn_id
from .signals import RESP_EXOKAY, RESP_NAMES, AxiLiteBus, high


class AxiLiteTransfer:
    """One completed single-beat transfer (B or R handshake)."""

    def __init__(self, address: int, is_write: bool, data: int | None,
                 strb: int, resp: int, time: int) -> None:
        self.address = address
        self.is_write = is_write
        self.data = data
        self.strb = strb
        self.resp = resp
        self.time = time
        #: Stable id for transaction probe pairing.
        self.txn_id: int | None = None
        #: Correlation id back-filled by the span layer.
        self.corr_id: str | None = None

    def signature(self) -> tuple:
        return (self.address, self.is_write, self.data, self.strb, self.resp)

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        resp = RESP_NAMES.get(self.resp, f"resp={self.resp}")
        return (f"AxiLiteTransfer({kind} @{self.address:#010x} "
                f"data={self.data!r} [{resp}])")


class AxiLiteMonitor(Module):
    """Watches the five channels; checks the basic handshake rules.

    Address/data payloads are captured at their own channel handshakes
    and matched to the eventual B/R completion, so a response with no
    preceding request is caught, as is payload instability while VALID
    is held.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: AxiLiteBus,
        clk: Signal,
        strict: bool = True,
    ) -> None:
        super().__init__(parent, name)
        self.bus = bus
        self.clk = clk
        self.strict = strict
        self.transfers: list[AxiLiteTransfer] = []
        self.violations: list[str] = []
        self.cycles_observed = 0
        self.busy_cycles = 0
        self._pending_aw: deque[int] = deque()
        self._pending_w: deque[tuple[int, int]] = deque()
        self._pending_ar: deque[int] = deque()
        self._held_awaddr: int | None = None
        self._held_araddr: int | None = None
        self.thread(self._watch, "watch")

    def _violation(self, message: str) -> None:
        text = f"{self.sim.time_str()}: {message}"
        self.violations.append(text)
        self.sim.report_detection(self.path, text)
        if self.strict:
            raise ProtocolError(f"{self.path}: {text}")

    def signatures(self) -> list[tuple]:
        return [t.signature() for t in self.transfers]

    def _record(self, transfer: AxiLiteTransfer) -> None:
        transfer.txn_id = new_txn_id()
        self.transfers.append(transfer)
        probes = self.sim._probes
        if probes is not None:
            probes.emit(TRANSACTION_END, self.sim.time, self.path, transfer)

    def _watch(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            self.cycles_observed += 1
            if (high(bus.awvalid.read()) or high(bus.wvalid.read())
                    or high(bus.arvalid.read())):
                self.busy_cycles += 1
            self._check_stability()
            if bus.aw_handshake():
                addr = bus.awaddr.read()
                if not addr.is_fully_defined:
                    self._violation("AW handshake with undefined AWADDR")
                    continue
                self._pending_aw.append(addr.to_int())
                self._held_awaddr = None
            if bus.w_handshake():
                data = bus.wdata.read()
                strb = bus.wstrb.read().to_int_default(bus.strb_mask)
                self._pending_w.append(
                    (data.to_int() if data.is_fully_defined else None, strb)
                )
            if bus.ar_handshake():
                addr = bus.araddr.read()
                if not addr.is_fully_defined:
                    self._violation("AR handshake with undefined ARADDR")
                    continue
                self._pending_ar.append(addr.to_int())
                self._held_araddr = None
            if bus.b_handshake():
                self._complete_write()
            if bus.r_handshake():
                self._complete_read()

    def _check_stability(self) -> None:
        """Payload wires must hold steady while VALID awaits READY."""
        bus = self.bus
        if high(bus.awvalid.read()) and not high(bus.awready.read()):
            addr = bus.awaddr.read().to_int_default(None)
            if self._held_awaddr is not None and addr != self._held_awaddr:
                self._violation("AWADDR changed while AWVALID held")
            self._held_awaddr = addr
        else:
            self._held_awaddr = None
        if high(bus.arvalid.read()) and not high(bus.arready.read()):
            addr = bus.araddr.read().to_int_default(None)
            if self._held_araddr is not None and addr != self._held_araddr:
                self._violation("ARADDR changed while ARVALID held")
            self._held_araddr = addr
        else:
            self._held_araddr = None

    def _complete_write(self) -> None:
        bus = self.bus
        resp = bus.bresp.read().to_int_default(None)
        if resp is None:
            self._violation("B handshake with undefined BRESP")
            return
        if resp == RESP_EXOKAY:
            self._violation("EXOKAY response on AXI4-Lite (no exclusives)")
        if not self._pending_aw or not self._pending_w:
            self._violation("B response without matching AW/W handshake")
            return
        address = self._pending_aw.popleft()
        data, strb = self._pending_w.popleft()
        if data is None:
            self._violation("write completed with undefined WDATA")
            return
        self._record(AxiLiteTransfer(address, True, data, strb, resp,
                                     self.sim.time))

    def _complete_read(self) -> None:
        bus = self.bus
        resp = bus.rresp.read().to_int_default(None)
        if resp is None:
            self._violation("R handshake with undefined RRESP")
            return
        if resp == RESP_EXOKAY:
            self._violation("EXOKAY response on AXI4-Lite (no exclusives)")
        if not self._pending_ar:
            self._violation("R beat without matching AR handshake")
            return
        address = self._pending_ar.popleft()
        value = bus.rdata.read()
        data: int | None = None
        if value.is_fully_defined:
            data = value.to_int()
        elif resp == 0:
            self._violation("RVALID completion with undefined RDATA")
            return
        self._record(AxiLiteTransfer(address, False, data, bus.strb_mask,
                                     resp, self.sim.time))
