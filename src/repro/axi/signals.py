"""The AXI4-Lite wire bundle.

Five channels, each a VALID/READY pair plus payload wires:

* **AW** — write address (AWVALID/AWREADY, AWADDR);
* **W**  — write data (WVALID/WREADY, WDATA, WSTRB);
* **B**  — write response (BVALID/BREADY, BRESP);
* **AR** — read address (ARVALID/ARREADY, ARADDR);
* **R**  — read data (RVALID/RREADY, RDATA, RRESP).

A transfer completes on a rising clock edge where VALID and READY are
both sampled high. The single master drives the VALIDs and payloads of
AW/W/AR plus BREADY/RREADY as plain signals; the slave-driven wires
(READYs, BVALID/BRESP, RVALID/RDATA/RRESP) are resolved rails shared by
every slave on the segment — only the addressed slave drives, the rest
stay released, which the monitor checks.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..kernel.simulator import Simulator

#: AXI response encodings (BRESP/RRESP).
RESP_OKAY = 0b00
RESP_EXOKAY = 0b01
RESP_SLVERR = 0b10
RESP_DECERR = 0b11

RESP_NAMES = {
    RESP_OKAY: "okay",
    RESP_EXOKAY: "exokay",
    RESP_SLVERR: "slverr",
    RESP_DECERR: "decerr",
}

#: Default elaboration widths.
DATA_WIDTH = 32
ADDR_WIDTH = 32


def high(value: LogicVector) -> bool:
    """Sampled high: fully driven to 1 (released rails read as low)."""
    return value.is_fully_defined and value.to_int() == 1


class AxiLiteBus(Module):
    """All wires of one single-master AXI4-Lite segment.

    :param data_width: WDATA/RDATA width (multiple of 8); WSTRB grows
        one lane per byte.
    :param addr_width: AWADDR/ARADDR width.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        data_width: int = DATA_WIDTH,
        addr_width: int = ADDR_WIDTH,
    ) -> None:
        super().__init__(parent, name)
        if data_width < 8 or data_width % 8:
            raise ProtocolError(
                f"data_width must be a positive multiple of 8, got "
                f"{data_width}"
            )
        if addr_width < 1:
            raise ProtocolError(f"addr_width must be >= 1, got {addr_width}")
        #: Structural widths/masks the agents elaborate against.
        self.data_width = data_width
        self.addr_width = addr_width
        self.strb_width = data_width // 8
        self.strb_mask = (1 << self.strb_width) - 1
        self.data_mask = (1 << data_width) - 1
        self.addr_mask = (1 << addr_width) - 1
        # Write address channel (master -> slave).
        self.awvalid = self.signal("awvalid", width=1, init=0)
        self.awaddr = self.signal("awaddr", width=addr_width, init=0)
        self.awready = self.resolved_signal("awready", 1)
        # Write data channel (master -> slave).
        self.wvalid = self.signal("wvalid", width=1, init=0)
        self.wdata = self.signal("wdata", width=data_width, init=0)
        self.wstrb = self.signal("wstrb", width=self.strb_width,
                                 init=self.strb_mask)
        self.wready = self.resolved_signal("wready", 1)
        # Write response channel (slave -> master).
        self.bvalid = self.resolved_signal("bvalid", 1)
        self.bresp = self.resolved_signal("bresp", 2)
        self.bready = self.signal("bready", width=1, init=0)
        # Read address channel (master -> slave).
        self.arvalid = self.signal("arvalid", width=1, init=0)
        self.araddr = self.signal("araddr", width=addr_width, init=0)
        self.arready = self.resolved_signal("arready", 1)
        # Read data channel (slave -> master).
        self.rvalid = self.resolved_signal("rvalid", 1)
        self.rdata = self.resolved_signal("rdata", data_width)
        self.rresp = self.resolved_signal("rresp", 2)
        self.rready = self.signal("rready", width=1, init=0)

    # -- sampling helpers (committed values as of the clock edge) ---------

    def aw_handshake(self) -> bool:
        return high(self.awvalid.read()) and high(self.awready.read())

    def w_handshake(self) -> bool:
        return high(self.wvalid.read()) and high(self.wready.read())

    def b_handshake(self) -> bool:
        return high(self.bvalid.read()) and high(self.bready.read())

    def ar_handshake(self) -> bool:
        return high(self.arvalid.read()) and high(self.arready.read())

    def r_handshake(self) -> bool:
        return high(self.rvalid.read()) and high(self.rready.read())

    def watch_signals(self) -> list:
        """Wires in waveform display order."""
        return [
            self.awvalid, self.awready, self.awaddr,
            self.wvalid, self.wready, self.wdata, self.wstrb,
            self.bvalid, self.bready, self.bresp,
            self.arvalid, self.arready, self.araddr,
            self.rvalid, self.rready, self.rdata, self.rresp,
        ]
