"""AXI4-Lite master (manager) engine.

AXI4-Lite has no bursts: a multi-word operation is executed as a train
of independent single-beat transfers with incrementing addresses. The
master issues AW and W together, collects the B response, and likewise
AR then R; a channel that never presents READY (no slave decoded the
address) times out into a ``"timeout"`` status — the AXI-Lite analogue
of a master abort.
"""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.event import Event
from .signals import RESP_DECERR, RESP_EXOKAY, RESP_OKAY, RESP_SLVERR, AxiLiteBus, high


class AxiLiteOperation:
    """One requested operation (one or more single-beat transfers).

    :param is_write: direction.
    :param address: word-aligned byte start address.
    :param data: words to write (writes only).
    :param count: words to read (reads only).
    :param strb: active-high write-strobe mask applied to each beat.
    :param strb_bits: WSTRB lanes of the targeted bus (validation
        bound; 4 for the default 32-bit data path).
    """

    def __init__(
        self,
        is_write: bool,
        address: int,
        data=None,
        count: int = 1,
        strb: int | None = None,
        strb_bits: int = 4,
    ) -> None:
        if address % 4 or not 0 <= address < 2**32:
            raise ProtocolError(f"bad axi4lite address {address:#x}")
        if strb_bits < 1:
            raise ProtocolError(f"strb_bits must be >= 1, got {strb_bits}")
        if strb is None:
            strb = (1 << strb_bits) - 1
        if not 0 <= strb < (1 << strb_bits):
            raise ProtocolError(f"bad strb mask {strb:#x}")
        self.is_write = is_write
        self.address = address
        self.strb = strb
        self.strb_bits = strb_bits
        if is_write:
            if not data:
                raise ProtocolError("write operation needs data")
            self.data = list(data)
            self.count = len(self.data)
        else:
            if data is not None:
                raise ProtocolError("read operation must not carry data")
            if count < 1:
                raise ProtocolError("read count must be >= 1")
            self.data = []
            self.count = count
        self.status = "pending"
        self.enqueue_time: int | None = None
        self.start_time: int | None = None
        self.complete_time: int | None = None
        #: Correlation id inherited from the issuing CommandType.
        self.corr_id: str | None = None
        #: Stable id for transaction.begin/end probe pairing.
        self.txn_id: int | None = None

    @classmethod
    def read(cls, address: int, count: int = 1, strb: int | None = None,
             strb_bits: int = 4):
        return cls(False, address, count=count, strb=strb,
                   strb_bits=strb_bits)

    @classmethod
    def write(cls, address: int, data, strb: int | None = None,
              strb_bits: int = 4):
        words = [data] if isinstance(data, int) else list(data)
        return cls(True, address, data=words, strb=strb,
                   strb_bits=strb_bits)

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"AxiLiteOperation({kind} @{self.address:#010x} x{self.count})"


#: Response encodings mapped to operation statuses.
_RESP_STATUS = {
    RESP_OKAY: "ok",
    RESP_EXOKAY: "exokay",
    RESP_SLVERR: "slverr",
    RESP_DECERR: "decerr",
}


class AxiLiteMaster(Module):
    """Single manager executing queued operations in order.

    :param timeout_cycles: clocks to wait for a READY (or a response
        VALID) before declaring a timeout — no slave decoded the
        address.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: AxiLiteBus,
        clk: Signal,
        timeout_cycles: int = 16,
    ) -> None:
        super().__init__(parent, name)
        if timeout_cycles < 1:
            raise ProtocolError("timeout must be >= 1 cycle")
        self.bus = bus
        self.clk = clk
        self.timeout_cycles = timeout_cycles
        self._queue: deque[tuple[AxiLiteOperation, Event]] = deque()
        self._op_available = self.event("op_available")
        self.ops_completed = 0
        self.beats_transferred = 0
        self.errors_seen = 0
        self.timeouts_seen = 0
        self.thread(self._engine, "engine")

    # -- public API -------------------------------------------------------

    def submit(self, operation: AxiLiteOperation) -> Event:
        done = self.event("op_done")
        operation.enqueue_time = self.sim.time
        self._queue.append((operation, done))
        self._op_available.notify()
        return done

    def transact(self, operation: AxiLiteOperation):
        """Blocking helper for thread processes."""
        done = self.submit(operation)
        yield done
        return operation

    # -- engine -----------------------------------------------------------

    def _engine(self):
        while True:
            if not self._queue:
                yield self._op_available
                continue
            operation, done = self._queue.popleft()
            operation.start_time = self.sim.time
            if operation.txn_id is None:
                operation.txn_id = new_txn_id()
            probes = self.sim._probes
            if probes is not None:
                probes.emit(
                    TRANSACTION_BEGIN, self.sim.time, self.path, operation
                )
            status = "ok"
            for index in range(operation.count):
                address = operation.address + 4 * index
                if operation.is_write:
                    status = yield from self._write_beat(
                        address, operation.data[index], operation.strb
                    )
                else:
                    status, word = yield from self._read_beat(address)
                    if status == "ok":
                        operation.data.append(word)
                if status != "ok":
                    if status == "timeout":
                        self.timeouts_seen += 1
                    else:
                        self.errors_seen += 1
                    break
                self.beats_transferred += 1
            operation.status = status
            operation.complete_time = self.sim.time
            if probes is not None:
                probes.emit(TRANSACTION_END, self.sim.time, self.path, operation)
            if status == "ok":
                self.ops_completed += 1
            done.notify_delta()

    def _write_beat(self, address: int, word: int, strb: int):
        """AW+W handshakes, then the B response; returns the status."""
        bus = self.bus
        bus.awvalid.write(1)
        bus.awaddr.write(LogicVector(bus.addr_width, address & bus.addr_mask))
        bus.wvalid.write(1)
        bus.wdata.write(LogicVector(bus.data_width, word))
        bus.wstrb.write(LogicVector(bus.strb_width, strb))
        aw_done = w_done = False
        waited = 0
        while not (aw_done and w_done):
            yield self.clk.posedge
            if not aw_done and high(bus.awready.read()):
                aw_done = True
                bus.awvalid.write(0)
            if not w_done and high(bus.wready.read()):
                w_done = True
                bus.wvalid.write(0)
            waited += 1
            if waited > self.timeout_cycles:
                bus.awvalid.write(0)
                bus.wvalid.write(0)
                return "timeout"
        bus.bready.write(1)
        waited = 0
        while True:
            yield self.clk.posedge
            if high(bus.bvalid.read()):
                resp = bus.bresp.read().to_int_default(RESP_DECERR)
                bus.bready.write(0)
                return _RESP_STATUS[resp]
            waited += 1
            if waited > self.timeout_cycles:
                bus.bready.write(0)
                return "timeout"

    def _read_beat(self, address: int):
        """AR handshake, then the R beat; returns (status, word)."""
        bus = self.bus
        bus.arvalid.write(1)
        bus.araddr.write(LogicVector(bus.addr_width, address & bus.addr_mask))
        waited = 0
        while True:
            yield self.clk.posedge
            if high(bus.arready.read()):
                bus.arvalid.write(0)
                break
            waited += 1
            if waited > self.timeout_cycles:
                bus.arvalid.write(0)
                return "timeout", 0
        bus.rready.write(1)
        waited = 0
        while True:
            yield self.clk.posedge
            if high(bus.rvalid.read()):
                resp = bus.rresp.read().to_int_default(RESP_DECERR)
                bus.rready.write(0)
                if resp != RESP_OKAY:
                    return _RESP_STATUS[resp], 0
                value = bus.rdata.read()
                if not value.is_fully_defined:
                    raise ProtocolError(
                        f"{self.path}: RVALID with undefined RDATA at "
                        f"{self.sim.time_str()}"
                    )
                return "ok", value.to_int()
            waited += 1
            if waited > self.timeout_cycles:
                bus.rready.write(0)
                return "timeout", 0
