"""The AXI4-Lite library interface element.

Same contract as the PCI and Wishbone elements: applications talk to a
:class:`~repro.core.channel.BusInterfaceChannel`, the dispatcher drives
the pin-level AXI4-Lite master. The element pair (pin-accurate plus
functional alias) fills the ``axi4lite`` slot of an
:class:`~repro.core.library.InterfaceLibrary`.
"""

from __future__ import annotations

from ..core.command import CommandType, DataType
from ..core.functional_interface import FunctionalBusInterface
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..iface.element import InterfaceElement
from ..iface.params import IfaceParams
from ..osss.arbiter import Arbiter
from .master import AxiLiteMaster, AxiLiteOperation
from .signals import AxiLiteBus


def _to_axi_operation(
    command: CommandType, strb_bits: int = 4
) -> AxiLiteOperation:
    if command.is_write:
        operation = AxiLiteOperation.write(
            command.address, command.data, strb=command.byte_enables,
            strb_bits=strb_bits,
        )
    else:
        operation = AxiLiteOperation.read(
            command.address, count=command.count, strb=command.byte_enables,
            strb_bits=strb_bits,
        )
    operation.corr_id = command.corr_id
    return operation


class AxiLiteBusInterface(InterfaceElement):
    """Pin-accurate AXI4-Lite interface element."""

    BUS_NAME = "axi4lite"
    ABSTRACTION = "pin_accurate"

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: AxiLiteBus,
        clk: Signal,
        arbiter: Arbiter | None = None,
        response_capacity: int | None = None,
        params: IfaceParams | None = None,
    ) -> None:
        if params is None:
            params = IfaceParams(
                data_width=bus.data_width, addr_width=bus.addr_width
            )
        super().__init__(parent, name, arbiter, params, response_capacity)
        self.check_bus_widths(
            data_width=bus.data_width, addr_width=bus.addr_width
        )
        self.bus = bus
        self.clk = clk
        self.master = AxiLiteMaster(self, "master", bus, clk)
        self.operations_failed = 0
        self.thread(self._dispatch, "dispatch")

    @staticmethod
    def _operation_failure(operation) -> str | None:
        return None if operation.status == "ok" else operation.status

    def _dispatch(self):
        strb_bits = self.bus.strb_width
        while True:
            epoch, command = yield from self.channel.call("get_command")
            if self.recovery is None:
                operation = _to_axi_operation(command, strb_bits)
                yield from self.master.transact(operation)
            else:
                operation = yield from self._transact_with_recovery(
                    command,
                    lambda cmd: _to_axi_operation(cmd, strb_bits),
                    self.master.transact,
                    self._operation_failure,
                )
            self.commands_serviced += 1
            if operation.status != "ok":
                self.operations_failed += 1
            if command.is_read:
                response = DataType(operation.data, operation.status)
                response.corr_id = operation.corr_id
                yield from self.channel.call("put_response", epoch, response)


class AxiLiteFunctionalInterface(FunctionalBusInterface):
    """The functional element re-tagged for the axi4lite library slot."""

    BUS_NAME = "axi4lite"
    ABSTRACTION = "functional"
