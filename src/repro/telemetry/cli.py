"""``python -m repro telemetry`` — replay dumped flight records.

Reads one or more flight-recorder JSONL files (dumped by
``python -m repro fault --flight-record DIR``) and replays them into
the existing renderers: a human-readable timeline, the raw JSON
document, or a Chrome trace-event file loadable in ``chrome://tracing``
/ Perfetto — post-mortems without re-running the campaign.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..instrument.profiler import write_chrome_trace
from .recorder import (
    flight_record_chrome_trace,
    load_flight_record,
    render_flight_record,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "records", nargs="+", metavar="RECORD",
        help="flight-record JSONL file(s) to replay",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the loaded records as one JSON document "
             "('-' for stdout)",
    )
    parser.add_argument(
        "--chrome", dest="chrome_path", default=None, metavar="PATH",
        help="convert the records into a Chrome trace-event file",
    )
    parser.add_argument(
        "--tail", type=int, default=None, metavar="N",
        help="only render the last N events of each record",
    )


def run(args: argparse.Namespace) -> int:
    loaded = []
    for path in args.records:
        try:
            header, events = load_flight_record(path)
        except (OSError, json.JSONDecodeError) as error:
            print(f"telemetry: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
        loaded.append((path, header, events))

    for index, (path, header, events) in enumerate(loaded):
        if index:
            print()
        shown = events if args.tail is None else events[-args.tail:]
        print(f"{path}:")
        print(render_flight_record(header, shown))

    if args.chrome_path:
        slices = []
        for __, __, events in loaded:
            slices.extend(flight_record_chrome_trace(events))
        write_chrome_trace(args.chrome_path, slices)
        print(f"\nwrote chrome trace: {args.chrome_path} "
              f"({len(slices)} slices)")
    if args.json_path:
        payload = json.dumps(
            [
                {"path": path, "header": header, "events": events}
                for path, header, events in loaded
            ],
            indent=2,
        )
        if args.json_path == "-":
            print(payload)
        else:
            with open(args.json_path, "w", encoding="utf-8") as handle:
                handle.write(payload)
            print(f"wrote json report: {args.json_path}")
    return 0
