"""Live campaign telemetry: worker heartbeats and progress aggregation.

Pool workers stream tiny messages — "worker *pid* started run *n*",
"worker *pid* classified run *n*" — through a ``multiprocessing``
manager queue to the parent, where a :class:`CampaignProgress`
aggregator folds them together with the outcomes the pool returns into
one live picture: runs/s, ETA, per-classification breakdown, recovery
rate, and which worker is chewing on which run right now. The fault CLI
renders this as a ``--live`` ticker and (with ``--progress-json``)
mirrors every snapshot to a machine-readable file — the contract the
ROADMAP's distributed-campaign service will stream over the wire.

Telemetry must never harm the campaign: heartbeat sends are
best-effort (a full or dead queue drops the beat), the aggregator only
ever runs in the parent, and with no aggregator installed the runner
takes its historical code path untouched.
"""

from __future__ import annotations

import json
import os
import queue as _queue
import time as _time
import typing

#: Seconds between ticker refreshes (and progress-JSON rewrites).
DEFAULT_TICK_SECONDS = 0.5


class HeartbeatSender:
    """Worker-side handle: fire-and-forget beats into the parent queue."""

    def __init__(self, channel) -> None:
        self._channel = channel

    def _put(self, message: tuple) -> None:
        try:
            self._channel.put_nowait(message)
        except Exception:  # noqa: BLE001 - telemetry never kills a run
            pass

    def start(self, run_id: int) -> None:
        self._put(("start", os.getpid(), run_id, _time.time()))

    def done(self, run_id: int, classification: str) -> None:
        self._put(("done", os.getpid(), run_id, _time.time(), classification))


class CampaignProgress:
    """Parent-side aggregator of campaign liveness.

    :param on_tick: called (rate-limited) with the aggregator whenever
        state changed — the CLI hangs its ticker and progress-JSON
        mirror here.
    :param clock: monotonic clock, overridable for tests.
    """

    def __init__(
        self,
        on_tick: "typing.Callable[[CampaignProgress], None] | None" = None,
        tick_seconds: float = DEFAULT_TICK_SECONDS,
        clock: typing.Callable[[], float] = _time.monotonic,
    ) -> None:
        self.on_tick = on_tick
        self.tick_seconds = tick_seconds
        self._clock = clock
        self.total = 0
        self.completed = 0
        self.classifications: dict[str, int] = {}
        self._started: float | None = None
        self._finished: float | None = None
        self._last_tick: float | None = None
        #: worker pid -> (run_id or None, wall time of last beat)
        self.workers: dict[int, tuple[int | None, float]] = {}
        self.heartbeats = 0
        #: Durable-layer counters: outcomes replayed from a resumed
        #: journal and result-cache traffic (hits skip the simulator).
        self.resumed = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- lifecycle -----------------------------------------------------------

    def begin(self, total_runs: int) -> None:
        self.total = total_runs
        self._started = self._clock()

    def finish(self) -> None:
        self._finished = self._clock()
        self.tick(force=True)

    @property
    def elapsed(self) -> float:
        if self._started is None:
            return 0.0
        end = self._finished if self._finished is not None else self._clock()
        return max(0.0, end - self._started)

    # -- ingestion -----------------------------------------------------------

    def heartbeat(
        self,
        worker: int,
        run_id: "int | None",
        wall: "float | None" = None,
    ) -> None:
        self.heartbeats += 1
        self.workers[worker] = (run_id, wall if wall is not None else _time.time())

    def record_outcome(self, outcome) -> None:
        """Fold one classified run in (a RunOutcome or a bare string)."""
        classification = getattr(outcome, "classification", outcome)
        self.completed += 1
        self.classifications[classification] = (
            self.classifications.get(classification, 0) + 1
        )

    def record_resumed(self, count: int) -> None:
        """Note *count* outcomes replayed from a journal (they still
        flow through :meth:`record_outcome` like any other)."""
        self.resumed += count

    def record_cache(self, hits: int, misses: int) -> None:
        """Fold in the result-cache tally of a campaign start."""
        self.cache_hits += hits
        self.cache_misses += misses

    def drain(self, channel) -> int:
        """Non-blocking drain of the worker heartbeat queue."""
        drained = 0
        if channel is None:
            return drained
        while True:
            try:
                message = channel.get_nowait()
            except (_queue.Empty, OSError, EOFError):
                return drained
            drained += 1
            kind = message[0]
            if kind == "start":
                __, worker, run_id, wall = message
                self.heartbeat(worker, run_id, wall)
            elif kind == "done":
                __, worker, run_id, wall = message[:4]
                self.heartbeat(worker, None, wall)

    # -- derived gauges ------------------------------------------------------

    @property
    def runs_per_second(self) -> float:
        elapsed = self.elapsed
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed

    @property
    def eta_seconds(self) -> float | None:
        rate = self.runs_per_second
        if not rate or not self.total:
            return None
        remaining = max(0, self.total - self.completed)
        return remaining / rate

    @property
    def recovery_rate(self) -> float | None:
        """``recovered / (recovered + detected + silent)`` so far."""
        recovered = self.classifications.get("recovered", 0)
        effective = (
            recovered
            + self.classifications.get("detected", 0)
            + self.classifications.get("silent", 0)
        )
        if not effective:
            return None
        return recovered / effective

    @property
    def done(self) -> bool:
        return self.total > 0 and self.completed >= self.total

    # -- output --------------------------------------------------------------

    def tick(self, force: bool = False) -> bool:
        """Invoke ``on_tick`` if the rate limit allows; True if it ran."""
        if self.on_tick is None:
            return False
        now = self._clock()
        if (
            not force
            and self._last_tick is not None
            and now - self._last_tick < self.tick_seconds
        ):
            return False
        self._last_tick = now
        self.on_tick(self)
        return True

    def snapshot(self) -> dict:
        eta = self.eta_seconds
        recovery = self.recovery_rate
        return {
            "total": self.total,
            "completed": self.completed,
            "done": self.done,
            "elapsed_seconds": round(self.elapsed, 3),
            "runs_per_second": round(self.runs_per_second, 3),
            "eta_seconds": None if eta is None else round(eta, 3),
            "classifications": dict(sorted(self.classifications.items())),
            "recovery_rate": None if recovery is None else round(recovery, 4),
            "heartbeats": self.heartbeats,
            "resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": {
                str(pid): {"run_id": run_id}
                for pid, (run_id, __) in sorted(self.workers.items())
            },
        }

    def render_ticker(self) -> str:
        """One status line: ``runs 12/48 | 3.1 runs/s | eta 12s | ...``."""
        parts = [f"runs {self.completed}/{self.total or '?'}"]
        parts.append(f"{self.runs_per_second:.1f} runs/s")
        eta = self.eta_seconds
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        if self.classifications:
            breakdown = " ".join(
                f"{name}:{count}"
                for name, count in sorted(self.classifications.items())
            )
            parts.append(breakdown)
        recovery = self.recovery_rate
        if recovery is not None:
            parts.append(f"recovery {recovery:.0%}")
        if self.resumed:
            parts.append(f"resumed {self.resumed}")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {self.cache_hits}h/{self.cache_misses}m")
        busy = sum(
            1 for run_id, __ in self.workers.values() if run_id is not None
        )
        if self.workers:
            parts.append(f"workers {busy}/{len(self.workers)}")
        return " | ".join(parts)

    def write_json(self, path) -> None:
        document = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(document + "\n")
