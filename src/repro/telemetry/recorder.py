"""The flight recorder: a bounded ring of structured run events.

A :class:`FlightRecorder` rides the probe bus of one run and keeps the
last *capacity* interesting events — guarded-method activity, bus/TLM
transactions, flow stages, fault activations, checker detections and
resilience activity — as plain JSON-ready dicts. On completion (or on a
crash, from the worker's ``finally``) the ring is serialized to one
JSONL file: a ``header`` line describing the run, then one line per
event in arrival order. The self-healing campaign pool dumps the tail
of every misbehaving run so post-mortems don't require a re-run.

Records are replayable: :func:`load_flight_record` reads the file back
and :func:`flight_record_chrome_trace` converts it into the same Chrome
``traceEvents`` document the profiler and span tracer emit, so a dumped
tail can be opened in the usual viewers.

Like every telemetry component, the recorder is pure subscriber code:
no recorder attached means zero cost on the run.
"""

from __future__ import annotations

import collections
import itertools
import json
import os
import typing

from ..instrument import probes as _p

#: Ring capacity when the caller does not choose one.
DEFAULT_CAPACITY = 4096

#: The probe kinds a recorder subscribes to by default. The per-delta
#: and per-commit kernel kinds are deliberately excluded — they would
#: wash every transaction out of a bounded ring (and cost the hot path).
DEFAULT_RECORD_KINDS: tuple[str, ...] = (
    _p.METHOD_CALL,
    _p.METHOD_QUEUE,
    _p.METHOD_GRANT,
    _p.METHOD_GUARD_BLOCK,
    _p.METHOD_COMPLETE,
    _p.TRANSACTION_BEGIN,
    _p.TRANSACTION_END,
    _p.FLOW_STAGE,
    _p.FAULT_ACTIVATE,
    _p.DETECTION,
    _p.RESILIENCE_TIMEOUT,
    _p.RESILIENCE_RETRY,
    _p.RESILIENCE_GIVEUP,
    _p.RESILIENCE_RECOVERED,
)


def _path_of(obj: object) -> str:
    """Best-effort hierarchical path of a live kernel object."""
    for attr in ("path", "name"):
        value = getattr(obj, attr, None)
        if isinstance(value, str) and value:
            return value
    return type(obj).__name__


class FlightRecorder:
    """Bounded recorder of structured probe events for one run.

    :param capacity: ring size; the oldest events fall out first.
    :param kinds: probe kinds to record (default
        :data:`DEFAULT_RECORD_KINDS`).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        kinds: typing.Sequence[str] = DEFAULT_RECORD_KINDS,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.kinds = tuple(kinds)
        self._ring: collections.deque = collections.deque(maxlen=capacity)
        self._seq = itertools.count()
        self.seen = 0
        self._bus: _p.ProbeBus | None = None
        self._handlers: list[tuple[str, typing.Callable]] = []

    # -- wiring --------------------------------------------------------------

    def attach(self, bus: _p.ProbeBus) -> "FlightRecorder":
        for kind in self.kinds:
            handler = self._make_handler(kind)
            bus.subscribe(kind, handler)
            self._handlers.append((kind, handler))
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind, handler in self._handlers:
            self._bus.unsubscribe(kind, handler)
        self._handlers.clear()
        self._bus = None

    def _make_handler(self, kind: str) -> typing.Callable:
        summarize = _SUMMARIZERS.get(kind, _summarize_generic)

        def handler(*args: object, _kind: str = kind) -> None:
            self.record(_kind, **summarize(*args))

        return handler

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, **fields: object) -> None:
        """Append one structured event (also the manual-marker entry
        point: campaign code records ``run.start``/``run.end`` markers
        through this)."""
        event = {"seq": next(self._seq), "kind": kind}
        event.update(fields)
        self._ring.append(event)
        self.seen += 1

    @property
    def events(self) -> list[dict]:
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events that fell out of the ring."""
        return self.seen - len(self._ring)

    def tail(self, n: int) -> list[dict]:
        if n <= 0:
            return []
        ring = self._ring
        return list(ring)[-n:] if n < len(ring) else list(ring)

    # -- serialization -------------------------------------------------------

    def dump(self, path, header: dict | None = None) -> None:
        """Write the ring as JSONL: one ``header`` line, then events."""
        document = {
            "type": "header",
            "capacity": self.capacity,
            "seen": self.seen,
            "retained": len(self._ring),
            "dropped": self.dropped,
        }
        if header:
            document.update(header)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(document, sort_keys=True) + "\n")
            for event in self._ring:
                stream.write(json.dumps(event, sort_keys=True) + "\n")


def write_post_mortem_stub(path, header: dict | None = None) -> None:
    """Write a header-only flight record for a run that left no ring.

    The campaign pool calls this for every ``worker_error`` run whose
    worker hard-exited before its own ``finally`` could dump: the stub
    keeps the record directory at one file per run, distinguishable
    from a genuinely empty ring by ``post_mortem_stub: true``. Best
    effort by contract — a full disk must never fail the campaign.
    """
    document = {
        "type": "header",
        "seen": 0,
        "retained": 0,
        "dropped": 0,
        "post_mortem_stub": True,
    }
    if header:
        document.update(header)
    try:
        directory = os.path.dirname(str(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(document, sort_keys=True) + "\n")
    except OSError:
        pass


# -- per-kind payload summarizers ------------------------------------------------
#
# Probe payloads are live kernel objects; the recorder flattens them to
# JSON-ready fields at emission time so a post-crash dump never touches
# (possibly corrupted) simulator state.


def _summarize_generic(*args: object) -> dict:
    return {"args": [str(a) for a in args]}


def _summarize_method(time: int, space: object, request: object) -> dict:
    return {
        "time": time,
        "space": _path_of(space),
        "method": str(getattr(request, "method", "")) or _path_of(request),
        "client": str(getattr(request, "client", "")),
    }


def _summarize_guard_block(time: int, space: object, requests: object) -> dict:
    try:
        pending = len(requests)  # type: ignore[arg-type]
    except TypeError:
        pending = 0
    return {"time": time, "space": _path_of(space), "pending": pending}


def _summarize_transaction(time: int, source: str, payload: object) -> dict:
    fields: dict = {
        "time": time,
        "source": source,
        "payload": type(payload).__name__,
    }
    txn_id = getattr(payload, "txn_id", None)
    if txn_id is not None:
        fields["txn_id"] = txn_id
    return fields


def _summarize_flow(name: str, status: str, wall_seconds: float) -> dict:
    return {"stage": name, "status": status, "wall_seconds": wall_seconds}


def _summarize_fault(time: int, fault: object) -> dict:
    return {"time": time, "fault": str(fault)}


def _summarize_detection(record: object) -> dict:
    return {
        "time": getattr(record, "time", None),
        "source": str(getattr(record, "source", "")),
        "message": str(getattr(record, "message", record)),
    }


def _summarize_resilience(event: object) -> dict:
    return {
        "time": getattr(event, "time", None),
        "path": str(getattr(event, "path", "")),
        "method": str(getattr(event, "method", "")),
        "attempt": getattr(event, "attempt", None),
        "detail": str(getattr(event, "detail", "")),
    }


_SUMMARIZERS: dict[str, typing.Callable[..., dict]] = {
    _p.METHOD_CALL: _summarize_method,
    _p.METHOD_QUEUE: _summarize_method,
    _p.METHOD_GRANT: _summarize_method,
    _p.METHOD_COMPLETE: _summarize_method,
    _p.METHOD_GUARD_BLOCK: _summarize_guard_block,
    _p.TRANSACTION_BEGIN: _summarize_transaction,
    _p.TRANSACTION_END: _summarize_transaction,
    _p.FLOW_STAGE: _summarize_flow,
    _p.FAULT_ACTIVATE: _summarize_fault,
    _p.DETECTION: _summarize_detection,
    _p.RESILIENCE_TIMEOUT: _summarize_resilience,
    _p.RESILIENCE_RETRY: _summarize_resilience,
    _p.RESILIENCE_GIVEUP: _summarize_resilience,
    _p.RESILIENCE_RECOVERED: _summarize_resilience,
}


# -- replay ----------------------------------------------------------------------


def load_flight_record(path) -> tuple[dict, list[dict]]:
    """Read a flight-record JSONL back: ``(header, events)``."""
    header: dict = {}
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            document = json.loads(line)
            if document.get("type") == "header":
                header = document
            else:
                events.append(document)
    return header, events


def render_flight_record(header: dict, events: list[dict]) -> str:
    """Human-readable timeline of a loaded flight record."""
    lines = ["== flight record =="]
    for key in ("run_id", "label", "classification", "seen", "retained",
                "dropped"):
        if key in header:
            lines.append(f"  {key:<15} {header[key]}")
    lines.append(f"  {'events':<15} {len(events)}")
    lines.append("")
    for event in events:
        time = event.get("time")
        stamp = "        ---" if time is None else f"{time:>11}"
        kind = event.get("kind", "?")
        detail = " ".join(
            f"{k}={event[k]}"
            for k in sorted(event)
            if k not in ("seq", "kind", "time") and event[k] not in ("", None)
        )
        lines.append(f"  {stamp}  {kind:<22} {detail}".rstrip())
    return "\n".join(lines)


def flight_record_chrome_trace(events: list[dict]) -> list[dict]:
    """Convert loaded events into Chrome ``traceEvents`` slices.

    Paired ``transaction.begin``/``end`` events become duration slices;
    everything else becomes an instant event. Timestamps are converted
    from fs to the viewer's microseconds.
    """
    fs_per_us = 1_000_000_000
    slices: list[dict] = []
    open_txns: dict[object, dict] = {}
    for event in events:
        kind = event.get("kind", "")
        time = event.get("time")
        if time is None:
            continue
        ts = time / fs_per_us
        if kind == _p.TRANSACTION_BEGIN:
            open_txns[event.get("txn_id", event["seq"])] = event
            continue
        if kind == _p.TRANSACTION_END:
            begin = open_txns.pop(event.get("txn_id"), None)
            if begin is not None:
                slices.append({
                    "name": event.get("payload", "transaction"),
                    "cat": "transaction",
                    "ph": "X",
                    "ts": begin["time"] / fs_per_us,
                    "dur": max(0.001, ts - begin["time"] / fs_per_us),
                    "pid": 1,
                    "tid": event.get("source", ""),
                    "args": {"txn_id": event.get("txn_id")},
                })
                continue
        slices.append({
            "name": kind,
            "cat": kind.split(".", 1)[0],
            "ph": "i",
            "s": "t",
            "ts": ts,
            "pid": 1,
            "tid": event.get("source") or event.get("space") or
                   event.get("path") or "run",
            "args": {
                k: v for k, v in event.items()
                if k not in ("seq", "kind", "time")
            },
        })
    slices.sort(key=lambda s: (s["ts"], s["name"]))
    return slices
