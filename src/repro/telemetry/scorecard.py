"""Communication scorecards: per-bus gauges derived from probe events.

A :class:`ScorecardProbe` subscribes to the transaction and
guarded-method probe kinds of one run and reduces the stream to a
:class:`CellScore` — bus occupancy, throughput in beats per bus cycle,
arbitration fairness, queue pressure and latency quantiles. Nothing is
read off platform objects: every gauge is derived from probe events, so
the same probe works unchanged on every bus family and abstraction
level (including the wire-less TLM-GP and functional platforms).

:class:`MatrixScorecard` aggregates the per-cell scores of one
``run_swap_matrix`` sweep into the paper's missing comparison surface:
a ``bus × refinement-level`` table of quantitative communication
metrics (``python -m repro report --matrix``).

All scores are plain picklable data with ``to_dict``/``from_dict`` and
a deterministic ``merge``, so process-pool workers can ship shards to
the parent and the merged numbers equal a serial run's exactly
(:mod:`repro.telemetry.digest`).
"""

from __future__ import annotations

import typing

from ..instrument.probes import (
    DETECTION,
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    METHOD_GUARD_BLOCK,
    METHOD_QUEUE,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
)
from .digest import LatencyDigest

#: fs per ns, for human-readable latency columns.
_FS_PER_NS = 1_000_000


def beats_of(payload: object) -> int:
    """Data beats carried by one transaction payload.

    Works across every payload shape on the bus: monitor-reconstructed
    transactions expose ``word_count``, master operations and commands
    expose ``data``/``count``, single-beat transfers default to 1.
    """
    word_count = getattr(payload, "word_count", None)
    if isinstance(word_count, int) and word_count > 0:
        return word_count
    data = getattr(payload, "data", None)
    if isinstance(data, (list, tuple)) and data:
        return len(data)
    count = getattr(payload, "count", None)
    if isinstance(count, int) and count > 0:
        return count
    return 1


def fairness_index(shares: typing.Iterable[int]) -> float | None:
    """Jain's fairness index over per-client grant counts.

    1.0 = perfectly fair, 1/n = one client got everything; ``None``
    when no grants were observed.
    """
    values = [v for v in shares if v > 0]
    if not values:
        return None
    total = sum(values)
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)


def _merge_intervals(intervals: list) -> int:
    """Total covered fs of a list of (start, end) intervals."""
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    covered += current_end - current_start
    return covered


class CellScore:
    """The communication gauges of one run (one matrix cell).

    Every field is plain data; :meth:`merge` folds another score in so
    per-worker shards aggregate into campaign-level numbers that are
    independent of how runs were distributed.
    """

    def __init__(self, bus: str = "", level: str = "", label: str = "") -> None:
        self.bus = bus
        self.level = level
        self.label = label
        #: Paired transaction count on the primary source.
        self.transactions = 0
        #: transaction.end events over every source.
        self.ends_total = 0
        #: Data beats moved (primary source).
        self.beats = 0
        #: Observed span: first transaction begin to last end (fs).
        self.span_fs = 0
        #: fs during which >= 1 transaction was in flight.
        self.busy_fs = 0
        #: Bus clock period (fs) used for the beats/cycle conversion.
        self.cycle_fs = 0
        #: Transaction latency quantiles (fs), primary source.
        self.latency = LatencyDigest()
        #: Guarded-call arrival -> grant waits (fs).
        self.wait = LatencyDigest()
        self.calls = 0
        self.queued = 0
        self.grants = 0
        self.completions = 0
        self.guard_blocks = 0
        self.detections = 0
        #: Arbiter grants per requesting client.
        self.grants_by_client: dict[str, int] = {}
        #: The source path the latency/throughput gauges came from.
        self.primary_source = ""

    # -- derived gauges ------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Fraction of the observed span with a transaction in flight."""
        if not self.span_fs:
            return 0.0
        return min(1.0, self.busy_fs / self.span_fs)

    @property
    def throughput(self) -> float:
        """Data beats per bus cycle over the observed span."""
        if not self.span_fs or not self.cycle_fs:
            return 0.0
        return self.beats / (self.span_fs / self.cycle_fs)

    @property
    def fairness(self) -> float | None:
        return fairness_index(self.grants_by_client.values())

    @property
    def queue_ratio(self) -> float:
        """Fraction of guarded calls that could not be served at once."""
        if not self.calls:
            return 0.0
        return self.queued / self.calls

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "CellScore") -> "CellScore":
        """Fold *other* (a disjoint run's score) into this one."""
        self.transactions += other.transactions
        self.ends_total += other.ends_total
        self.beats += other.beats
        self.span_fs += other.span_fs
        self.busy_fs += other.busy_fs
        self.cycle_fs = self.cycle_fs or other.cycle_fs
        self.latency.merge(other.latency)
        self.wait.merge(other.wait)
        self.calls += other.calls
        self.queued += other.queued
        self.grants += other.grants
        self.completions += other.completions
        self.guard_blocks += other.guard_blocks
        self.detections += other.detections
        for client, count in other.grants_by_client.items():
            self.grants_by_client[client] = (
                self.grants_by_client.get(client, 0) + count
            )
        self.primary_source = self.primary_source or other.primary_source
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "bus": self.bus,
            "level": self.level,
            "label": self.label,
            "transactions": self.transactions,
            "ends_total": self.ends_total,
            "beats": self.beats,
            "span_fs": self.span_fs,
            "busy_fs": self.busy_fs,
            "cycle_fs": self.cycle_fs,
            "utilization": self.utilization,
            "throughput_beats_per_cycle": self.throughput,
            "fairness": self.fairness,
            "queue_ratio": self.queue_ratio,
            "latency": self.latency.to_dict(),
            "wait": self.wait.to_dict(),
            "calls": self.calls,
            "queued": self.queued,
            "grants": self.grants,
            "completions": self.completions,
            "guard_blocks": self.guard_blocks,
            "detections": self.detections,
            "grants_by_client": dict(sorted(self.grants_by_client.items())),
            "primary_source": self.primary_source,
        }

    @classmethod
    def from_dict(cls, document: typing.Mapping) -> "CellScore":
        score = cls(
            document.get("bus", ""),
            document.get("level", ""),
            document.get("label", ""),
        )
        for field in (
            "transactions", "ends_total", "beats", "span_fs", "busy_fs",
            "cycle_fs", "calls", "queued", "grants", "completions",
            "guard_blocks", "detections",
        ):
            setattr(score, field, int(document.get(field, 0)))
        score.latency = LatencyDigest.from_dict(document.get("latency", {}))
        score.wait = LatencyDigest.from_dict(document.get("wait", {}))
        score.grants_by_client = {
            str(k): int(v)
            for k, v in document.get("grants_by_client", {}).items()
        }
        score.primary_source = document.get("primary_source", "")
        return score

    def __repr__(self) -> str:
        return (
            f"CellScore({self.bus}/{self.level}: {self.transactions} txns, "
            f"util={self.utilization:.1%}, "
            f"p95={self.latency.p95 / _FS_PER_NS:.0f}ns)"
        )


class ScorecardProbe:
    """Probe-bus subscriber reducing one run to a :class:`CellScore`.

    :param cycle_fs: the platform's bus clock period (fs), needed only
        for the beats/cycle conversion; pass 0 to report raw beats.
    """

    _SUBSCRIPTIONS = (
        (TRANSACTION_BEGIN, "_on_begin"),
        (TRANSACTION_END, "_on_end"),
        (METHOD_CALL, "_on_call"),
        (METHOD_QUEUE, "_on_queue"),
        (METHOD_GRANT, "_on_grant"),
        (METHOD_COMPLETE, "_on_complete"),
        (METHOD_GUARD_BLOCK, "_on_guard_block"),
        (DETECTION, "_on_detection"),
    )

    def __init__(self, cycle_fs: int = 0) -> None:
        self.cycle_fs = cycle_fs
        self._open: dict[tuple[str, object], int] = {}
        #: source -> [paired, latency digest, beats, intervals]
        self._sources: dict[str, list] = {}
        self._ends_total = 0
        self._first_time: int | None = None
        self._last_time: int | None = None
        self._calls = 0
        self._queued = 0
        self._grants = 0
        self._completions = 0
        self._guard_blocks = 0
        self._detections = 0
        self._grants_by_client: dict[str, int] = {}
        self._wait = LatencyDigest()
        self._bus: ProbeBus | None = None

    # -- wiring --------------------------------------------------------------

    def attach(self, bus: ProbeBus) -> "ScorecardProbe":
        for kind, handler in self._SUBSCRIPTIONS:
            bus.subscribe(kind, getattr(self, handler))
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind, handler in self._SUBSCRIPTIONS:
            self._bus.unsubscribe(kind, getattr(self, handler))
        self._bus = None

    # -- handlers ------------------------------------------------------------

    @staticmethod
    def _txn_key(source: str, payload: object) -> tuple[str, object]:
        txn_id = getattr(payload, "txn_id", None)
        return (source, txn_id if txn_id is not None else id(payload))

    def _source(self, source: str) -> list:
        record = self._sources.get(source)
        if record is None:
            record = self._sources[source] = [0, LatencyDigest(), 0, []]
        return record

    def _clock(self, time: int) -> None:
        if self._first_time is None or time < self._first_time:
            self._first_time = time
        if self._last_time is None or time > self._last_time:
            self._last_time = time

    def _on_begin(self, time: int, source: str, payload: object) -> None:
        self._clock(time)
        self._open[self._txn_key(source, payload)] = time

    def _on_end(self, time: int, source: str, payload: object) -> None:
        self._clock(time)
        self._ends_total += 1
        begin = self._open.pop(self._txn_key(source, payload), None)
        if begin is None:
            return
        record = self._source(source)
        record[0] += 1
        record[1].add(time - begin)
        record[2] += beats_of(payload)
        record[3].append((begin, time))

    def _on_call(self, time: int, space: object, request: object) -> None:
        self._calls += 1

    def _on_queue(self, time: int, space: object, request: object) -> None:
        self._queued += 1

    def _on_grant(self, time: int, space: object, request: object) -> None:
        self._grants += 1
        client = str(getattr(request, "client", "?"))
        self._grants_by_client[client] = (
            self._grants_by_client.get(client, 0) + 1
        )
        grant_time = getattr(request, "grant_time", None)
        arrival = getattr(request, "arrival_time", None)
        if grant_time is not None and arrival is not None:
            self._wait.add(grant_time - arrival)

    def _on_complete(self, time: int, space: object, request: object) -> None:
        self._completions += 1

    def _on_guard_block(self, time: int, space: object, requests: object) -> None:
        self._guard_blocks += 1

    def _on_detection(self, record: object) -> None:
        self._detections += 1

    # -- reduction -----------------------------------------------------------

    def score(
        self, bus: str = "", level: str = "", label: str = ""
    ) -> CellScore:
        """Reduce everything observed so far to a :class:`CellScore`."""
        cell = CellScore(bus, level, label)
        cell.cycle_fs = self.cycle_fs
        cell.ends_total = self._ends_total
        cell.calls = self._calls
        cell.queued = self._queued
        cell.grants = self._grants
        cell.completions = self._completions
        cell.guard_blocks = self._guard_blocks
        cell.detections = self._detections
        cell.grants_by_client = dict(self._grants_by_client)
        cell.wait = LatencyDigest.merged([self._wait])
        if self._first_time is not None and self._last_time is not None:
            cell.span_fs = self._last_time - self._first_time
        intervals: list = []
        for record in self._sources.values():
            intervals.extend(record[3])
        cell.busy_fs = _merge_intervals(intervals)
        if self._sources:
            # The primary source carries the latency/throughput gauges:
            # the emitter that paired the most transactions (ties break
            # on the shortest, then lexicographically smallest path).
            primary = min(
                self._sources.items(),
                key=lambda kv: (-kv[1][0], len(kv[0]), kv[0]),
            )
            cell.primary_source = primary[0]
            cell.transactions = primary[1][0]
            cell.latency = LatencyDigest.merged([primary[1][1]])
            cell.beats = primary[1][2]
        return cell


class MatrixScorecard:
    """The ``bus × level`` comparison table of one swap-matrix sweep."""

    def __init__(
        self,
        seed: int,
        n_commands: int,
        buses: typing.Sequence[str],
        levels: typing.Sequence[str],
        cells: typing.Sequence[CellScore],
        reference: CellScore | None = None,
        fault_families: (
            "typing.Mapping[str, typing.Mapping[str, typing.Mapping[str, int]]]"
            " | None"
        ) = None,
    ) -> None:
        self.seed = seed
        self.n_commands = n_commands
        self.buses = tuple(buses)
        self.levels = tuple(levels)
        self.cells = list(cells)
        #: The functional reference run's score (not a matrix cell).
        self.reference = reference
        #: Fault-leg detections per fault family:
        #: ``{bus: {fault kind: {classification: count}}}``.
        self.fault_families = {
            bus: {kind: dict(row) for kind, row in families.items()}
            for bus, families in (fault_families or {}).items()
        }

    @classmethod
    def from_matrix(cls, report) -> "MatrixScorecard | None":
        """Build from a telemetry-enabled ``SwapMatrixReport``."""
        cells = [
            cell.score for cell in report.cells
            if getattr(cell, "score", None) is not None
        ]
        if not cells:
            return None
        return cls(
            report.seed,
            report.n_commands,
            report.buses,
            report.levels,
            cells,
            reference=getattr(report, "reference_score", None),
            fault_families=getattr(report, "fault_families", None),
        )

    def cell(self, bus: str, level: str) -> CellScore | None:
        for score in self.cells:
            if score.bus == bus and score.level == level:
                return score
        return None

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _row(score: CellScore) -> list[str]:
        fairness = score.fairness
        return [
            score.bus,
            score.level,
            str(score.transactions),
            f"{score.utilization:6.1%}",
            f"{score.throughput:9.3f}",
            f"{score.latency.p50 / _FS_PER_NS:8.0f}",
            f"{score.latency.p95 / _FS_PER_NS:8.0f}",
            f"{score.latency.p99 / _FS_PER_NS:8.0f}",
            "   n/a" if fairness is None else f"{fairness:6.3f}",
            f"{score.queue_ratio:6.1%}",
        ]

    _HEADERS = (
        "bus", "level", "txns", "util", "beats/cyc",
        "p50 ns", "p95 ns", "p99 ns", "fair", "queued",
    )

    def _ordered(self) -> list[CellScore]:
        ordered = []
        for bus in self.buses:
            for level in self.levels:
                score = self.cell(bus, level)
                if score is not None:
                    ordered.append(score)
        leftovers = [s for s in self.cells if s not in ordered]
        return ordered + leftovers

    _FAULT_HEADERS = (
        "bus", "fault", "runs", "detected", "silent", "benign",
        "recovered", "coverage",
    )

    def _fault_rows(self) -> list[list[str]]:
        """Flattened fault-leg breakdown, one row per bus × family."""
        rows: list[list[str]] = []
        for bus in sorted(self.fault_families):
            for kind, counts in sorted(self.fault_families[bus].items()):
                detected = counts.get("detected", 0)
                effective = detected + counts.get("silent", 0)
                coverage = (
                    f"{detected / effective:6.1%}" if effective else "   n/a"
                )
                rows.append([
                    bus,
                    kind,
                    str(sum(counts.values())),
                    str(detected),
                    str(counts.get("silent", 0)),
                    str(counts.get("benign", 0)),
                    str(counts.get("recovered", 0)),
                    coverage,
                ])
        return rows

    def render(self) -> str:
        rows = [self._row(score) for score in self._ordered()]
        if self.reference is not None:
            reference = self._row(self.reference)
            reference[0] = "(reference)"
            reference[1] = "functional"
            rows.insert(0, reference)
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(self._HEADERS)
        ]
        lines = [
            f"== communication scorecard: seed {self.seed}, "
            f"{self.n_commands} commands ==",
            "",
            "  ".join(h.ljust(w) for h, w in zip(self._HEADERS, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        fault_rows = self._fault_rows()
        if fault_rows:
            fault_widths = [
                max(len(h), *(len(r[i]) for r in fault_rows))
                for i, h in enumerate(self._FAULT_HEADERS)
            ]
            lines += [
                "",
                "-- fault detection per family --",
                "  ".join(
                    h.ljust(w)
                    for h, w in zip(self._FAULT_HEADERS, fault_widths)
                ),
                "  ".join("-" * w for w in fault_widths),
            ]
            for row in fault_rows:
                lines.append(
                    "  ".join(
                        c.ljust(w) for c, w in zip(row, fault_widths)
                    ).rstrip()
                )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        lines = [
            "| " + " | ".join(self._HEADERS) + " |",
            "| " + " | ".join("---" for __ in self._HEADERS) + " |",
        ]
        rows = self._ordered()
        if self.reference is not None:
            rows = [self.reference] + rows
        for score in rows:
            cells = [c.strip() for c in self._row(score)]
            if score is self.reference:
                cells[0] = "(reference)"
            lines.append("| " + " | ".join(cells) + " |")
        fault_rows = self._fault_rows()
        if fault_rows:
            lines += [
                "",
                "| " + " | ".join(self._FAULT_HEADERS) + " |",
                "| " + " | ".join("---" for __ in self._FAULT_HEADERS) + " |",
            ]
            for row in fault_rows:
                lines.append(
                    "| " + " | ".join(c.strip() for c in row) + " |"
                )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_commands": self.n_commands,
            "buses": list(self.buses),
            "levels": list(self.levels),
            "reference": (
                None if self.reference is None else self.reference.to_dict()
            ),
            "cells": [score.to_dict() for score in self._ordered()],
            "fault_families": {
                bus: {kind: dict(row) for kind, row in families.items()}
                for bus, families in self.fault_families.items()
            },
        }
