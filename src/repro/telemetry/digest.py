"""Mergeable latency digests with fixed power-of-two buckets.

The scorecards, the :class:`~repro.instrument.metrics.MetricsCollector`
histograms and the fault-campaign telemetry all need the same thing: a
latency distribution that (a) never allocates per-sample storage, (b)
answers p50/p95/p99 queries, and (c) **merges deterministically** —
a digest assembled from per-worker shards in a process pool must equal
the digest a serial run would have produced. Fixed bucket boundaries
give all three: bucket *i* holds samples whose bit length is *i*
(values in ``[2**(i-1), 2**i)``; bucket 0 holds zeros), so merging is a
plain per-bucket sum and is associative and commutative by
construction.

:func:`quantile_from_pow2_buckets` is the one shared quantile kernel;
``Histogram.quantile`` in :mod:`repro.instrument.metrics` delegates to
it, so the profiler tables and the scorecards can never disagree about
what "p95" means.

This module is deliberately dependency-free (it imports nothing from
the rest of the package) so low-level layers can use it without cycles.
"""

from __future__ import annotations

import typing

#: The quantiles every telemetry surface reports.
STANDARD_QUANTILES = (0.5, 0.95, 0.99)


def quantile_from_pow2_buckets(
    buckets: "typing.Mapping[int, int]",
    count: int,
    max_value: "int | None",
    q: float,
) -> int:
    """Approximate *q*-quantile of a power-of-two bucketed sample set.

    :param buckets: ``{bit_length: count}`` occupancy map.
    :param count: total samples (must equal ``sum(buckets.values())``).
    :param max_value: exact maximum sample, used to clamp the top
        bucket's upper bound.
    :returns: the upper bound of the bucket containing the quantile
        (clamped to *max_value*), 0 for an empty sample set.
    """
    if not count:
        return 0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    threshold = q * count
    seen = 0
    for bucket in sorted(buckets):
        seen += buckets[bucket]
        if seen >= threshold:
            upper = (1 << bucket) - 1 if bucket else 0
            if max_value is not None:
                return min(upper, max_value)
            return upper
    return max_value if max_value is not None else 0


class LatencyDigest:
    """A mergeable, picklable latency distribution.

    Adding a sample is two integer ops; merging two digests is a
    per-bucket sum, so ``merge(a, b) == merge(b, a)`` and splitting a
    sample stream across any number of process-pool workers yields the
    exact digest of the serial run.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None
        self.buckets: dict[int, int] = {}

    def add(self, value: int) -> None:
        value = int(value)
        if value < 0:
            value = 0
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def merge(self, other: "LatencyDigest") -> "LatencyDigest":
        """Fold *other* into this digest in place; returns self."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for bucket, occupancy in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + occupancy
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        return quantile_from_pow2_buckets(
            self.buckets, self.count, self.max, q
        )

    @property
    def p50(self) -> int:
        return self.quantile(0.50)

    @property
    def p95(self) -> int:
        return self.quantile(0.95)

    @property
    def p99(self) -> int:
        return self.quantile(0.99)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            # str keys so the document round-trips through JSON.
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, document: "typing.Mapping") -> "LatencyDigest":
        digest = cls()
        digest.count = int(document.get("count", 0))
        digest.total = int(document.get("total", 0))
        minimum = document.get("min")
        maximum = document.get("max")
        digest.min = None if minimum is None else int(minimum)
        digest.max = None if maximum is None else int(maximum)
        digest.buckets = {
            int(k): int(v) for k, v in document.get("buckets", {}).items()
        }
        return digest

    @classmethod
    def merged(
        cls, digests: "typing.Iterable[LatencyDigest]"
    ) -> "LatencyDigest":
        """A fresh digest holding the union of *digests*."""
        result = cls()
        for digest in digests:
            result.merge(digest)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyDigest):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:
        return (
            f"LatencyDigest(n={self.count}, p50={self.p50}, "
            f"p95={self.p95}, p99={self.p99})"
        )
