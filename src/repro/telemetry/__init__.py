"""repro.telemetry — the campaign/matrix-scale observability plane.

Three pieces, all riding the existing probe bus behind the null-bus
zero-cost-off discipline:

* **Scorecards** (:mod:`~repro.telemetry.scorecard`): per-run
  communication gauges — utilization, throughput, fairness, queue
  pressure, latency quantiles — aggregated into the
  ``bus × refinement-level`` comparison table of
  ``python -m repro report --matrix``.
* **Flight recorder** (:mod:`~repro.telemetry.recorder`): a bounded
  ring of structured events dumped to JSONL on completion or crash,
  replayable through ``python -m repro telemetry``.
* **Live progress** (:mod:`~repro.telemetry.progress`): worker
  heartbeats + outcome counters streamed to a
  :class:`~repro.telemetry.progress.CampaignProgress` aggregator,
  rendered by ``python -m repro fault --live``.

The shared quantile machinery lives in
:mod:`~repro.telemetry.digest`; ``MetricsCollector`` histograms
delegate to the same kernel so every p95 in the repo means the same
thing.
"""

from .digest import STANDARD_QUANTILES, LatencyDigest, quantile_from_pow2_buckets
from .progress import CampaignProgress, HeartbeatSender
from .recorder import (
    DEFAULT_RECORD_KINDS,
    FlightRecorder,
    flight_record_chrome_trace,
    load_flight_record,
    render_flight_record,
)
from .scorecard import CellScore, MatrixScorecard, ScorecardProbe, beats_of

__all__ = [
    "STANDARD_QUANTILES",
    "LatencyDigest",
    "quantile_from_pow2_buckets",
    "CampaignProgress",
    "HeartbeatSender",
    "DEFAULT_RECORD_KINDS",
    "FlightRecorder",
    "flight_record_chrome_trace",
    "load_flight_record",
    "render_flight_record",
    "CellScore",
    "MatrixScorecard",
    "ScorecardProbe",
    "beats_of",
]
