"""Command-line demo driver: ``python -m repro <command>``.

Commands:

* ``flow``        — run the Figure 2 design flow end to end.
* ``refine``      — the Figure 3 interface-swap comparison.
* ``matrix``      — the swap matrix: every bus family x abstraction
  level verified against the functional reference (``--fault-runs``).
* ``waveforms``   — simulate the synthesized PCI handler, dump a VCD and
  print ASCII waveforms (Figure 4).
* ``library``     — list the interface library contents.
* ``report``      — synthesize the example design and print the netlist
  report (add ``--verilog`` / ``--vhdl`` to print the generated HDL);
  ``report --matrix`` instead runs the telemetry-enabled swap matrix
  and prints the bus x level communication scorecard
  (``--format table|json|markdown``; ``--fault-runs N`` adds the
  per-fault-family detection table).
* ``telemetry``   — replay flight-recorder JSONL dumps into the
  timeline/JSON/Chrome renderers (``--tail``, ``--json``,
  ``--chrome``).
* ``lint``        — static design-rule checks over the example platforms
  (``--strict``, ``--suppress RULE[@GLOB]``, ``--list-rules``).
* ``fault``       — run a fault-injection campaign and print detection
  coverage (``--platform``, ``--runs``, ``--workers``, ``--json``;
  ``--journal DIR`` / ``--resume`` / ``--cache DIR`` make campaigns
  crash-safe, resumable and content-addressed).
* ``profile``     — execute a script under the probe-bus profiler and
  print hot processes, method histograms and a Chrome trace
  (``--top``, ``--json``, ``--chrome-trace``).
* ``spans``       — causal transaction tracing: span trees with latency
  attribution and critical paths over a script, or a per-transaction
  cross-refinement diff (``--diff A B``, ``--json``, ``--chrome``).
* ``analyze``     — netlist dataflow analysis over a script's synthesis
  runs: driver conflicts, comb-loop levelization, FSM reachability,
  X-propagation and shared-state races (``--schedule``, ``--format``).
* ``compile``     — lower a script's synthesized netlists to the
  compiled fast-sim backend's generated Python (``--dump``,
  ``--check N`` cross-checks against the interpreted schedule,
  ``--yosys`` emits the logic-synthesis hand-off script).

Every command honours the global ``--seed``: repeated invocations with
the same seed are bit-identical.  Platform-building commands also take
``--bus {pci,wishbone,axi4lite,tlmgp}`` to swap the interface element
and ``--response-capacity N`` to size its response FIFO.
"""

from __future__ import annotations

import argparse
import sys

from .core import compare_refinement, default_library, generate_workload
from .flow import (
    BUS_FAMILIES,
    DesignFlow,
    PciPlatformConfig,
    build_functional_platform,
    build_pci_platform,
    build_platform,
    standard_flow_builders,
)
from .kernel import MS, NS
from .trace import VcdTracer, WaveformCapture, render


#: Seed used when the user does not pass ``--seed``.
DEFAULT_SEED = 11


def _effective_seed(args: argparse.Namespace) -> int:
    return args.seed if args.seed is not None else DEFAULT_SEED


def _default_workloads(seed: int, n_commands: int):
    return [generate_workload(seed=seed, n_commands=n_commands,
                              address_span=0x400, max_burst=4)]


def _platform_config(args: argparse.Namespace, **overrides):
    """A PciPlatformConfig honouring the global --response-capacity."""
    capacity = getattr(args, "response_capacity", None)
    return PciPlatformConfig(response_capacity=capacity, **overrides)


def _effective_bus(args: argparse.Namespace) -> str:
    """The pin-level bus family selected by the global ``--bus``."""
    bus = getattr(args, "bus", None) or "pci"
    if bus == "functional":
        raise SystemExit(
            "error: --bus functional is the reference side; pick a "
            "pin-level or transaction family"
        )
    return bus


def _cmd_flow(args: argparse.Namespace) -> int:
    bus = _effective_bus(args)
    flow = DesignFlow(
        {"name": f"{bus}-device-under-design", "bus": bus},
        *standard_flow_builders(
            _default_workloads(_effective_seed(args), args.commands),
            _platform_config(args),
            bus=bus,
        ),
    )
    report = flow.run(200 * MS)
    print(report.summary())
    return 0 if report.succeeded else 1


def _cmd_refine(args: argparse.Namespace) -> int:
    workloads = _default_workloads(_effective_seed(args), args.commands)
    config = _platform_config(args)
    bus = _effective_bus(args)
    report = compare_refinement(
        lambda: build_functional_platform(workloads, config).handle,
        lambda: build_platform(workloads, config, bus=bus).handle,
        max_time=200 * MS,
    )
    print(report.summary())
    return 0 if report.consistent else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    from .iface.matrix import DEFAULT_BUSES, run_swap_matrix

    from .fault.runner import resolve_workers

    buses = DEFAULT_BUSES if args.bus is None else (_effective_bus(args),)
    report = run_swap_matrix(
        seed=args.seed if args.seed is not None else 55,
        n_commands=args.commands,
        buses=buses,
        config=_platform_config(args),
        fault_runs=args.fault_runs,
        fault_workers=resolve_workers(args.workers)
        if args.fault_runs else 1,
    )
    print(report.render())
    return 0 if report.all_consistent else 1


def _cmd_waveforms(args: argparse.Namespace) -> int:
    from .core import CommandType

    if args.seed is not None:
        # Seeded mode: dump waveforms of a reproducible random workload
        # instead of the fixed Figure-4 command pair.
        commands = generate_workload(
            seed=args.seed, n_commands=4, address_span=0x400, max_burst=3
        )
    else:
        commands = [
            CommandType.write(0x100, [0xDEADBEEF, 0x12345678, 0xCAFEF00D]),
            CommandType.read(0x100, count=3),
        ]
    if _effective_bus(args) != "pci":
        print("waveforms: the Figure 4 dump is PCI-specific; drop --bus")
        return 2
    bundle = build_pci_platform(
        [commands], _platform_config(args, wait_states=1), synthesize=True
    )
    sim = bundle.handle.sim
    capture = WaveformCapture()
    watched = [bundle.clock.clk] + bundle.bus.shared_signals()
    capture.add_signals(watched)
    sim.add_tracer(capture)
    vcd = VcdTracer(args.vcd)
    vcd.add_signals(watched)
    sim.add_tracer(vcd)
    bundle.run(10 * MS)
    vcd.close(sim.time)
    labels = {s.name: s.name.rsplit(".", 1)[-1] for s in watched}
    print(render(capture, [s.name for s in watched], 0, 2400 * NS, 15 * NS,
                 labels=labels, time_unit=30 * NS))
    print(f"\nwrote {args.vcd}")
    return 0


def _cmd_library(args: argparse.Namespace) -> int:
    library = default_library()
    for bus, abstraction in library.available():
        element = library.lookup(bus, abstraction)
        print(f"{bus:10s} {abstraction:14s} {element.__name__}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import cli as lint_cli

    # The global --seed (default None) shadows the subcommand default
    # in the shared namespace; resolve it before delegating.
    args.seed = _effective_seed(args)
    return lint_cli.run(args)


def _cmd_fault(args: argparse.Namespace) -> int:
    from .fault import cli as fault_cli

    return fault_cli.run(args)


def _cmd_profile(args: argparse.Namespace) -> int:
    from .instrument import cli as instrument_cli

    return instrument_cli.run(args)


def _cmd_spans(args: argparse.Namespace) -> int:
    from .trace import cli as trace_cli

    return trace_cli.run(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analyze import cli as analyze_cli

    return analyze_cli.run(args)


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compile import cli as compile_cli

    return compile_cli.run(args)


def _cmd_report(args: argparse.Namespace) -> int:
    if args.matrix:
        return _cmd_report_matrix(args)
    bundle = build_platform(
        _default_workloads(_effective_seed(args), args.commands),
        _platform_config(args),
        bus=_effective_bus(args),
        synthesize=True,
    )
    synthesis = bundle.synthesis
    print(synthesis.report.render())
    if args.verilog:
        print()
        print(synthesis.all_verilog())
    if args.vhdl:
        print()
        print(synthesis.all_vhdl())
    return 0


def _cmd_report_matrix(args: argparse.Namespace) -> int:
    """``report --matrix``: the communication scorecard — the paper's
    exploitation loop made quantitative (utilization, throughput,
    latency quantiles per bus family x refinement level)."""
    import json

    from .fault.runner import resolve_workers
    from .iface.matrix import DEFAULT_BUSES, run_swap_matrix

    buses = DEFAULT_BUSES if args.bus is None else (_effective_bus(args),)
    matrix = run_swap_matrix(
        seed=args.seed if args.seed is not None else 55,
        n_commands=args.commands,
        buses=buses,
        config=_platform_config(args),
        fault_runs=args.fault_runs,
        fault_workers=resolve_workers(args.workers)
        if args.fault_runs else 1,
        telemetry=True,
    )
    card = matrix.scorecard()
    if card is None:  # every cell errored before scoring
        print(matrix.render())
        return 1
    if args.format == "json":
        print(json.dumps(card.to_dict(), indent=2, sort_keys=True))
    elif args.format == "markdown":
        print(card.render_markdown())
    else:
        print(card.render())
        problems = [
            cell for cell in matrix.cells
            if cell.error is not None or not cell.consistent
        ]
        for cell in problems:
            print(f"\n-- {cell.bus}/{cell.level}: {cell.verdict} --")
            if cell.error is not None:
                print(f"  error: {cell.error}")
    return 0 if matrix.all_consistent else 1


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import cli as telemetry_cli

    return telemetry_cli.run(args)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="High Level Communication Synthesis reproduction demos",
    )
    parser.add_argument("--seed", type=int, default=None,
                        help=f"workload seed (default {DEFAULT_SEED}); "
                             "identical seeds reproduce identical runs")
    parser.add_argument("--commands", type=int, default=20,
                        help="commands per application (default 20)")
    parser.add_argument("--bus", choices=BUS_FAMILIES, default=None,
                        help="bus family for platform-building commands "
                             "(default pci; matrix sweeps all families "
                             "unless one is named)")
    parser.add_argument("--response-capacity", type=int, default=None,
                        help="interface-element response-FIFO depth "
                             "(default 4)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("flow", help="run the Figure 2 design flow")
    sub.add_parser("refine", help="Figure 3 interface-swap comparison")
    matrix = sub.add_parser(
        "matrix", help="run the bus x abstraction swap matrix"
    )
    matrix.add_argument("--fault-runs", type=int, default=0,
                        help="also run about this many demo fault-campaign "
                             "runs per bus family (default 0 = skip)")
    matrix.add_argument("--workers", type=int, default=0,
                        help="worker processes per fault-leg campaign "
                             "(0 = serial, the default; REPRO_MAX_WORKERS "
                             "caps any request; counts are identical "
                             "either way)")
    waveforms = sub.add_parser("waveforms", help="Figure 4 waveform dump")
    waveforms.add_argument("--vcd", default="repro_waveforms.vcd",
                           help="output VCD path")
    sub.add_parser("library", help="list interface library contents")
    lint = sub.add_parser("lint", help="run the static design rules")
    from .lint import cli as lint_cli

    lint_cli.add_arguments(lint)
    report = sub.add_parser("report", help="print the synthesis report")
    report.add_argument("--verilog", action="store_true",
                        help="also print generated Verilog")
    report.add_argument("--vhdl", action="store_true",
                        help="also print generated VHDL")
    report.add_argument("--matrix", action="store_true",
                        help="run the telemetry-enabled swap matrix and "
                             "print the bus x level communication "
                             "scorecard instead")
    report.add_argument("--format", choices=("table", "json", "markdown"),
                        default="table",
                        help="scorecard output format for --matrix "
                             "(default table)")
    report.add_argument("--fault-runs", type=int, default=0,
                        help="with --matrix: also run about this many demo "
                             "fault-campaign runs per bus family and add "
                             "the per-fault-family detection table to the "
                             "scorecard (default 0 = skip)")
    report.add_argument("--workers", type=int, default=0,
                        help="with --matrix --fault-runs: worker processes "
                             "per fault-leg campaign (0 = serial, the "
                             "default; REPRO_MAX_WORKERS caps any request)")
    fault = sub.add_parser("fault", help="run a fault-injection campaign")
    from .fault import cli as fault_cli

    fault_cli.add_arguments(fault)
    profile = sub.add_parser(
        "profile", help="profile a script under the probe bus"
    )
    from .instrument import cli as instrument_cli

    instrument_cli.add_arguments(profile)
    spans = sub.add_parser(
        "spans", help="causal transaction tracing and refinement diffs"
    )
    from .trace import cli as trace_cli

    trace_cli.add_arguments(spans)
    analyze = sub.add_parser(
        "analyze", help="netlist dataflow analysis over a script"
    )
    from .analyze import cli as analyze_cli

    analyze_cli.add_arguments(analyze)
    compile_parser = sub.add_parser(
        "compile", help="generate the compiled fast-sim backend's code"
    )
    from .compile import cli as compile_cli

    compile_cli.add_arguments(compile_parser)
    telemetry = sub.add_parser(
        "telemetry", help="replay flight-recorder JSONL dumps"
    )
    from .telemetry import cli as telemetry_cli

    telemetry_cli.add_arguments(telemetry)
    args = parser.parse_args(argv)
    handlers = {
        "flow": _cmd_flow,
        "refine": _cmd_refine,
        "matrix": _cmd_matrix,
        "waveforms": _cmd_waveforms,
        "library": _cmd_library,
        "lint": _cmd_lint,
        "report": _cmd_report,
        "fault": _cmd_fault,
        "profile": _cmd_profile,
        "spans": _cmd_spans,
        "analyze": _cmd_analyze,
        "compile": _cmd_compile,
        "telemetry": _cmd_telemetry,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
