"""Application modules (the units under design / stimuli generators).

An :class:`Application` models the paper's *"application performing a
series of bus transactions ... modelled to act as a high-level stimuli
generator"*: it owns an application-side global object, issues
:class:`~repro.core.command.CommandType` values through ``putCommand``
and collects read results through ``appDataGet``. Every completed
command is logged as a :class:`TransactionRecord`, giving the observable
trace that refinement and synthesis checks compare.
"""

from __future__ import annotations

import typing

from ..hdl.module import Module
from ..kernel.process import Timeout
from ..osss.global_object import GlobalObject
from .bus_interface import BusInterface, BusInterfaceChannel
from .command import CommandType, DataType


class TransactionRecord:
    """One completed application-level transaction."""

    def __init__(
        self,
        command: CommandType,
        response: DataType | None,
        issue_time: int,
        complete_time: int,
    ) -> None:
        self.command = command
        self.response = response
        self.issue_time = issue_time
        self.complete_time = complete_time
        #: Correlation id of the issuing perform() (set by Application).
        self.corr_id: str | None = None

    @property
    def latency(self) -> int:
        return self.complete_time - self.issue_time

    def signature(self) -> tuple:
        """Time-independent observable content."""
        response_sig = self.response.signature() if self.response else None
        return (self.command.signature(), response_sig)

    def __repr__(self) -> str:
        return f"TransactionRecord({self.command!r} -> {self.response!r})"


class Application(Module):
    """A stimuli-generating application using the guarded-method API.

    :param commands: the series of bus transactions to perform.
    :param interface: optional bus interface to connect to immediately.
    :param think_time: fs of local work simulated between transactions.
    :param repeat: how many times to run the whole command list.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        commands: typing.Sequence[CommandType] = (),
        interface: BusInterface | None = None,
        think_time: int = 0,
        repeat: int = 1,
    ) -> None:
        super().__init__(parent, name)
        self.commands = list(commands)
        self.think_time = think_time
        self.repeat = repeat
        self.bus_port = GlobalObject(self, "bus_port", BusInterfaceChannel)
        if interface is not None:
            interface.connect_application(self.bus_port)
        self.records: list[TransactionRecord] = []
        self.finished = self.event("finished")
        self.done = False
        self._corr_seq = 0
        self.thread(self._run, "application")

    # -- trace access ---------------------------------------------------------

    def trace_signatures(self) -> list[tuple]:
        return [record.signature() for record in self.records]

    def mean_latency(self) -> float:
        if not self.records:
            return 0.0
        return sum(record.latency for record in self.records) / len(self.records)

    # -- behaviour ----------------------------------------------------------------

    def _run(self):
        for __ in range(self.repeat):
            for command in self.commands:
                if self.think_time:
                    yield Timeout(self.think_time)
                yield from self.perform(command)
        self.done = True
        self.finished.notify_delta()

    def perform(self, command: CommandType):
        """Issue one command and (for reads) wait for its data.

        Usable from subclasses or other threads via ``yield from``;
        returns the :class:`TransactionRecord`.
        """
        issue_time = self.sim.time
        # Correlation id: deterministic per (application path, sequence
        # number), so the same workload replayed at another refinement
        # level yields span-for-span matchable ids.
        command.corr_id = f"{self.path}#{self._corr_seq}"
        self._corr_seq += 1
        yield from self.bus_port.call("put_command", command)
        response: DataType | None = None
        if command.is_read:
            response = yield from self.bus_port.call("app_data_get")
        record = TransactionRecord(command, response, issue_time, self.sim.time)
        record.corr_id = command.corr_id
        self.records.append(record)
        return record


def wait_for_all(applications: typing.Sequence[Application]):
    """Generator: block until every application reports done."""
    for application in applications:
        while not application.done:
            yield application.finished
