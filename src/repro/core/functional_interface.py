"""The functional (transaction-level) library element.

The Figure 3 counterpart of the pin-accurate PCI interface: the same
global-object channel towards the application, but the bus side is a
direct function call into the functional IP models (optionally annotated
with a per-word latency). Swapping this element for
:class:`~repro.core.pci_interface.PciBusInterface` — and nothing else —
is the communication refinement step the methodology enables.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..hdl.module import Module
from ..iface.element import InterfaceElement
from ..iface.params import IfaceParams
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.process import Timeout
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from ..tlm.interfaces import TlmTarget
from .command import DataType


class FunctionalBusInterface(InterfaceElement):
    """Transaction-level interface element over a functional target.

    :param target: the functional model of everything behind the bus
        (usually an :class:`~repro.tlm.router.AddressRouter`).
    :param word_latency: optional fs consumed per transferred word, for
        loosely-timed modelling (0 = untimed, the fastest simulation).
    """

    BUS_NAME = "pci"
    ABSTRACTION = "functional"

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        target: TlmTarget,
        word_latency: int = 0,
        arbiter: Arbiter | None = None,
        response_capacity: int | None = None,
        channel_cls: type | None = None,
        params: IfaceParams | None = None,
    ) -> None:
        from .bus_interface import BusInterfaceChannel

        super().__init__(parent, name, arbiter, params, response_capacity,
                         channel_cls or BusInterfaceChannel)
        if word_latency < 0:
            raise SimulationError(f"word latency must be >= 0, got {word_latency}")
        self.target = target
        self.word_latency = word_latency
        self.words_transferred = 0
        self.thread(self._dispatch, "dispatch")

    def _dispatch(self):
        while True:
            epoch, command = yield from self.channel.call("get_command")
            probes = self.sim._probes
            if probes is not None:
                # Each service gets a fresh id (the same CommandType may
                # be replayed by a repeating application).
                command.txn_id = new_txn_id()
                probes.emit(TRANSACTION_BEGIN, self.sim.time, self.path, command)
            if self.word_latency:
                yield Timeout(self.word_latency * command.count)
            if command.is_write:
                for offset, word in enumerate(command.data):
                    self.target.write_word(
                        command.address + 4 * offset, word, command.byte_enables
                    )
                self.words_transferred += command.count
                if probes is not None:
                    probes.emit(TRANSACTION_END, self.sim.time, self.path, command)
            else:
                words = [
                    self.target.read_word(command.address + 4 * i)
                    for i in range(command.count)
                ]
                self.words_transferred += command.count
                if probes is not None:
                    probes.emit(TRANSACTION_END, self.sim.time, self.path, command)
                response = DataType(words, "ok")
                response.corr_id = command.corr_id
                yield from self.channel.call("put_response", epoch, response)
            self.commands_serviced += 1
