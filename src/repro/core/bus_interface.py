"""The bus-interface design pattern (the paper's Section 3).

The pattern constrains an interface IP as follows:

1. it *encapsulates the transfer modes of the bus protocol* behind a set
   of functionalities;
2. those functionalities are offered to the application as **guarded
   methods of a global object** (blocking semantics);
3. towards the bus it implements the service at **pin-level accuracy**
   (or, for the functional library element, at transaction level).

:class:`BusInterfaceChannel` is the global-object class with exactly the
paper's guarded methods (``putCommand`` / ``getCommand`` /
``appDataGet`` / ``reset``); :class:`BusInterface` is the module shape
every library element follows: one global object towards the
application, protocol processes towards the IPs.
"""

from __future__ import annotations

import typing
from collections import deque

from ..hdl.module import Module
from ..instrument.probes import (
    RESILIENCE_GIVEUP,
    RESILIENCE_RECOVERED,
    RESILIENCE_RETRY,
    emit_resilience,
)
from ..kernel.process import Timeout
from ..kernel.simulator import Simulator
from ..osss.arbiter import Arbiter
from ..osss.global_object import GlobalObject
from ..osss.guarded_method import guarded_method
from .command import CommandType, DataType


class BusInterfaceChannel:
    """Shared state between the application and the interface module.

    Exactly the paper's interface, translated from the SystemC+ macros::

        GUARDED_METHOD(void, putCommand(CommandType&), !isPendingCommand)
        GUARDED_METHOD(CommandType, getCommand(), isPendingCommand)
        GUARDED_METHOD(DataType, appDataGet(), isApplicationReadData)
        GUARDED_METHOD(void, reset(), true)

    :param response_capacity: completed read responses the channel can
        hold before ``put_response`` blocks the protocol side.
    """

    def __init__(self, response_capacity: int = 4) -> None:
        self.pending_command: CommandType | None = None
        self.responses: deque[tuple[int, DataType]] = deque()
        self.response_capacity = response_capacity
        #: Incremented by reset(); stale in-flight responses are dropped.
        self.epoch = 0
        self.commands_put = 0
        self.commands_taken = 0
        self.responses_delivered = 0

    # -- state predicates (the guards) --------------------------------------

    @property
    def is_pending_command(self) -> bool:
        return self.pending_command is not None

    @property
    def is_application_read_data(self) -> bool:
        return bool(self.responses)

    @property
    def has_response_space(self) -> bool:
        return len(self.responses) < self.response_capacity

    # -- the guarded methods ---------------------------------------------------

    @guarded_method(lambda self: not self.is_pending_command)
    def put_command(self, command: CommandType) -> int:
        """Application side: request a bus operation (blocking).

        Returns the channel epoch the command belongs to.
        """
        self.pending_command = command
        self.commands_put += 1
        return self.epoch

    @guarded_method(lambda self: self.is_pending_command)
    def get_command(self) -> tuple[int, CommandType]:
        """Protocol side: take the pending command (blocks until one)."""
        command = self.pending_command
        self.pending_command = None
        self.commands_taken += 1
        return self.epoch, command

    @guarded_method(lambda self: self.has_response_space)
    def put_response(self, epoch: int, response: DataType) -> bool:
        """Protocol side: deliver a read result; stale epochs are dropped."""
        if epoch != self.epoch:
            return False
        self.responses.append((epoch, response))
        return True

    @guarded_method(lambda self: self.is_application_read_data)
    def app_data_get(self) -> DataType:
        """Application side: fetch the result of a read (blocking)."""
        __, response = self.responses.popleft()
        self.responses_delivered += 1
        return response

    @guarded_method()
    def reset(self) -> None:
        """Cancel all pending commands and re-initialise the interface."""
        self.pending_command = None
        self.responses.clear()
        self.epoch += 1


class BusInterface(Module):
    """Base shape of a library interface element.

    Owns the interface-side global object (:attr:`channel`); concrete
    subclasses add the protocol processes. Applications connect with
    :meth:`connect_application` (or by connecting their own handle).

    :param arbiter: scheduling algorithm for concurrent application
        access to the channel (the user-defined algorithm of the paper).
    :param response_capacity: see :class:`BusInterfaceChannel`.
    :param channel_cls: the shared-object class; applications connecting
        must use the same class (e.g. the non-blocking variant).
    """

    #: (bus_name, abstraction) — set by concrete library elements and
    #: used by the interface library for lookup.
    BUS_NAME: str = "abstract"
    ABSTRACTION: str = "abstract"

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        arbiter: Arbiter | None = None,
        response_capacity: int = 4,
        channel_cls: type = BusInterfaceChannel,
    ) -> None:
        super().__init__(parent, name)
        if not issubclass(channel_cls, BusInterfaceChannel):
            raise TypeError(
                f"channel_cls must derive from BusInterfaceChannel, got "
                f"{channel_cls!r}"
            )
        self.channel = GlobalObject(
            self,
            "channel",
            channel_cls,
            response_capacity,
            arbiter=arbiter,
        )
        self.commands_serviced = 0
        #: Protocol-replay configuration (an
        #: :class:`~repro.resilience.recovery.InterfaceRecovery`, duck
        #: typed); ``None`` keeps the shipping zero-recovery fast path.
        self.recovery: typing.Any = None
        self.operations_replayed = 0
        self.operations_recovered = 0

    def connect_application(self, handle: GlobalObject) -> None:
        """Connect an application-side global object to this interface."""
        self.channel.connect(handle)

    # -- protocol-level recovery ---------------------------------------------

    def enable_recovery(self, recovery: typing.Any) -> None:
        """Arm transaction replay on this interface element.

        Recovery lives entirely inside the swappable interface IP: the
        application keeps calling the same guarded methods, at every
        refinement level, and failed bus operations are re-issued behind
        its back (bounded, with exponential sim-time backoff).
        """
        self.recovery = recovery
        self._apply_recovery(recovery)

    def _apply_recovery(self, recovery: typing.Any) -> None:
        """Hook for element-specific arming (e.g. PCI parity checking)."""

    def _transact_with_recovery(
        self,
        command: CommandType,
        build_operation: typing.Callable[[CommandType], typing.Any],
        transact: typing.Callable[[typing.Any], typing.Any],
        failure_of: typing.Callable[[typing.Any], str | None],
    ):
        """Issue *command*'s bus operation, replaying bounded on failure.

        :param build_operation: command -> a fresh protocol operation
            (each replay re-issues from the command, never reuses a
            half-completed operation).
        :param transact: operation -> generator driving it on the bus.
        :param failure_of: operation -> failure tag (``"master_abort"``,
            ``"parity"``, ...) or ``None`` on success.
        :returns: the last operation (successful or not).
        """
        operation = build_operation(command)
        yield from transact(operation)
        recovery = self.recovery
        failure = failure_of(operation)
        if recovery is None or failure is None:
            return operation
        tag = getattr(command, "kind", "call")
        replay = 0
        while replay < recovery.replay_limit:
            replay += 1
            emit_resilience(
                self.sim, RESILIENCE_RETRY, self.path, tag, replay, failure,
            )
            delay = recovery.backoff_delay(replay)
            if delay:
                yield Timeout(delay)
            operation = build_operation(command)
            yield from transact(operation)
            self.operations_replayed += 1
            previous_failure = failure
            failure = failure_of(operation)
            if failure is None:
                emit_resilience(
                    self.sim, RESILIENCE_RECOVERED, self.path, tag,
                    replay, previous_failure,
                )
                self.operations_recovered += 1
                return operation
        emit_resilience(
            self.sim, RESILIENCE_GIVEUP, self.path, tag,
            recovery.replay_limit, failure,
        )
        return operation

    # -- convenience state accessors -----------------------------------------

    @property
    def channel_state(self) -> BusInterfaceChannel:
        return typing.cast(BusInterfaceChannel, self.channel.state)

    def describe(self) -> dict:
        """Metadata record for the interface library."""
        return {
            "bus": self.BUS_NAME,
            "abstraction": self.ABSTRACTION,
            "path": self.path,
            "commands_serviced": self.commands_serviced,
        }
