"""Non-blocking variant of the bus-interface channel.

The paper presents *"the blocking version of the interface"*, implying a
non-blocking sibling: methods that return immediately with a success
flag instead of suspending the caller on a false guard. The channel
access itself is still a guarded-method call (so concurrent callers are
still queued and scheduled); only the *protocol state* guards become
return values.

:class:`PollingApplication` is the matching stimuli generator: it spins
with a configurable poll interval instead of blocking, producing the
same observable transaction records as the blocking
:class:`~repro.core.application.Application`.
"""

from __future__ import annotations

import typing

from ..errors import SimulationError
from ..hdl.module import Module
from ..kernel.process import Timeout
from ..osss.global_object import GlobalObject
from ..osss.guarded_method import guarded_method
from .application import TransactionRecord
from .bus_interface import BusInterface, BusInterfaceChannel
from .command import CommandType, DataType


class NonBlockingBusInterfaceChannel(BusInterfaceChannel):
    """Adds try-variants of the application-side methods.

    The protocol side (``get_command`` / ``put_response``) stays
    blocking — the dispatcher process has nothing better to do — so the
    same interface elements work unchanged with this channel class.
    """

    @guarded_method()
    def try_put_command(self, command: CommandType) -> bool:
        """Request a bus operation; False when a command is pending."""
        if self.is_pending_command:
            return False
        self.pending_command = command
        self.commands_put += 1
        return True

    @guarded_method()
    def try_app_data_get(self) -> "tuple[bool, DataType | None]":
        """Fetch a read result; ``(False, None)`` when none is ready."""
        if not self.responses:
            return False, None
        __, response = self.responses.popleft()
        self.responses_delivered += 1
        return True, response


class PollingApplication(Module):
    """A stimuli generator using the non-blocking interface.

    :param commands: transactions to perform.
    :param interface: bus interface to connect to (its channel class
        must be :class:`NonBlockingBusInterfaceChannel`).
    :param poll_interval: fs between retries of a refused call.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        commands: typing.Sequence[CommandType] = (),
        interface: BusInterface | None = None,
        poll_interval: int = 1000,
    ) -> None:
        super().__init__(parent, name)
        if poll_interval <= 0:
            raise SimulationError("poll interval must be positive")
        self.commands = list(commands)
        self.poll_interval = poll_interval
        self.bus_port = GlobalObject(
            self, "bus_port", NonBlockingBusInterfaceChannel
        )
        if interface is not None:
            interface.connect_application(self.bus_port)
        self.records: list[TransactionRecord] = []
        self.retries = 0
        self.finished = self.event("finished")
        self.done = False
        self.thread(self._run, "application")

    def trace_signatures(self) -> list[tuple]:
        return [record.signature() for record in self.records]

    def _run(self):
        for command in self.commands:
            issue_time = self.sim.time
            while True:
                accepted = yield from self.bus_port.call(
                    "try_put_command", command
                )
                if accepted:
                    break
                self.retries += 1
                yield Timeout(self.poll_interval)
            response: DataType | None = None
            if command.is_read:
                while True:
                    ready, response = yield from self.bus_port.call(
                        "try_app_data_get"
                    )
                    if ready:
                        break
                    self.retries += 1
                    yield Timeout(self.poll_interval)
            self.records.append(
                TransactionRecord(command, response, issue_time, self.sim.time)
            )
        self.done = True
        self.finished.notify_delta()
