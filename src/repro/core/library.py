"""The interface-IP library.

The methodology's payoff: *"when a proper library of such interfaces
would be provided, in order to refine the communication from a
high-level model down to its implementation, it would suffice to replace
the high level interface with the appropriate one."* This module is that
library: interface element classes indexed by (bus, abstraction level),
so a platform builder picks the right IP by name.
"""

from __future__ import annotations


from ..errors import RefinementError
from .bus_interface import BusInterface
from .functional_interface import FunctionalBusInterface
from .pci_interface import PciBusInterface


class InterfaceLibrary:
    """A registry of bus-interface element classes."""

    def __init__(self) -> None:
        self._elements: dict[tuple[str, str], type] = {}

    def register(self, element_cls: type) -> type:
        """Add *element_cls*; keyed by its BUS_NAME / ABSTRACTION tags."""
        if not (isinstance(element_cls, type) and issubclass(element_cls, BusInterface)):
            raise RefinementError(
                f"{element_cls!r} is not a BusInterface subclass"
            )
        key = (element_cls.BUS_NAME, element_cls.ABSTRACTION)
        if key in self._elements and self._elements[key] is not element_cls:
            raise RefinementError(
                f"library already has an element for bus={key[0]!r} "
                f"abstraction={key[1]!r}: {self._elements[key].__name__}"
            )
        self._elements[key] = element_cls
        return element_cls

    def lookup(self, bus: str, abstraction: str) -> type:
        """The element class for *bus* at *abstraction* level."""
        try:
            return self._elements[(bus, abstraction)]
        except KeyError:
            raise RefinementError(
                f"no interface element for bus={bus!r} abstraction="
                f"{abstraction!r}; available: {self.available()}"
            ) from None

    def abstractions_for(self, bus: str) -> list[str]:
        """Every abstraction level the library covers for *bus*."""
        return sorted(a for (b, a) in self._elements if b == bus)

    def available(self) -> list[tuple[str, str]]:
        return sorted(self._elements)


def default_library() -> InterfaceLibrary:
    """The library shipped with the reproduction.

    Four bus families: PCI (the paper's example), Wishbone and AXI4-Lite
    (pin-level generalisations), and the TLM-2.0-style generic payload
    (transaction level). Each pin-level family also carries a functional
    alias, so any family can be simulated before refinement.
    """
    # Local imports: these packages build on repro.core.
    from ..axi.interface import (
        AxiLiteBusInterface,
        AxiLiteFunctionalInterface,
    )
    from ..tlm.generic_payload import (
        TlmGpBusInterface,
        TlmGpFunctionalInterface,
    )
    from ..wishbone.interface import (
        WishboneBusInterface,
        WishboneFunctionalInterface,
    )

    library = InterfaceLibrary()
    library.register(FunctionalBusInterface)
    library.register(PciBusInterface)
    library.register(WishboneFunctionalInterface)
    library.register(WishboneBusInterface)
    library.register(AxiLiteFunctionalInterface)
    library.register(AxiLiteBusInterface)
    library.register(TlmGpFunctionalInterface)
    library.register(TlmGpBusInterface)
    return library
