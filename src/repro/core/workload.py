"""Deterministic workload generation for examples, tests and benches.

A tiny explicit LCG keeps every workload reproducible from its seed with
no global random state (the kernel forbids wall-clock entropy anyway).
"""

from __future__ import annotations

import typing

from ..errors import SimulationError
from .command import CommandType


class _Lcg:
    """Minimal 31-bit linear congruential generator."""

    def __init__(self, seed: int) -> None:
        self._state = (seed ^ 0x5DEECE66D) & 0x7FFFFFFF

    def next_int(self, bound: int) -> int:
        if bound <= 0:
            raise SimulationError(f"LCG bound must be positive, got {bound}")
        self._state = (self._state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._state % bound

    def next_float(self) -> float:
        return self.next_int(1 << 24) / float(1 << 24)


def generate_workload(
    seed: int,
    n_commands: int,
    address_base: int = 0,
    address_span: int = 0x1000,
    max_burst: int = 4,
    write_fraction: float = 0.5,
    partial_byte_enable_fraction: float = 0.0,
) -> list[CommandType]:
    """Build a reproducible mixed read/write command list.

    :param address_base / address_span: word-aligned window commands
        target; bursts never cross its end.
    :param max_burst: maximum words per command.
    :param write_fraction: probability a command is a write.
    :param partial_byte_enable_fraction: probability a command uses a
        partial (non-0xF) byte-enable mask.
    """
    if address_base % 4 or address_span % 4 or address_span <= 0:
        raise SimulationError(
            f"bad address window base={address_base:#x} span={address_span:#x}"
        )
    if max_burst < 1:
        raise SimulationError(f"max_burst must be >= 1, got {max_burst}")
    if not 0.0 <= write_fraction <= 1.0:
        raise SimulationError(f"write_fraction must be in [0,1], got {write_fraction}")
    rng = _Lcg(seed)
    words_in_span = address_span // 4
    commands: list[CommandType] = []
    for __ in range(n_commands):
        burst = 1 + rng.next_int(max_burst)
        burst = min(burst, words_in_span)
        start_word = rng.next_int(words_in_span - burst + 1)
        address = address_base + 4 * start_word
        byte_enables = 0xF
        if rng.next_float() < partial_byte_enable_fraction:
            byte_enables = 1 + rng.next_int(0xF)  # never zero
        if rng.next_float() < write_fraction:
            data = [rng.next_int(1 << 31) * 2 + rng.next_int(2) for _ in range(burst)]
            commands.append(CommandType.write(address, data, byte_enables))
        else:
            commands.append(CommandType.read(address, count=burst, byte_enables=byte_enables))
    return commands


def sequential_fill(
    address_base: int, n_words: int, seed: int = 1
) -> list[CommandType]:
    """Writes covering [base, base + 4*n_words) followed by a verify read."""
    rng = _Lcg(seed)
    commands = [
        CommandType.write(address_base + 4 * i, rng.next_int(1 << 31))
        for i in range(n_words)
    ]
    commands.append(CommandType.read(address_base, count=n_words))
    return commands


def expected_memory_image(
    commands: typing.Sequence[CommandType], span_words: int, base: int = 0
) -> list[int]:
    """Golden model: apply the write stream to a zeroed window."""
    image = [0] * span_words
    for command in commands:
        if not command.is_write:
            continue
        for offset, word in enumerate(command.data):
            index = (command.address - base) // 4 + offset
            if 0 <= index < span_words:
                merged = image[index]
                for lane in range(4):
                    if command.byte_enables & (1 << lane):
                        mask = 0xFF << (8 * lane)
                        merged = (merged & ~mask) | (word & mask)
                image[index] = merged
    return image
