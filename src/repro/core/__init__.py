"""The paper's primary contribution: the bus-interface design pattern.

* :class:`BusInterfaceChannel` — the global object with the paper's
  guarded methods (putCommand / getCommand / appDataGet / reset);
* :class:`BusInterface` — the pattern every library element follows;
* :class:`PciBusInterface` — the pin-accurate PCI library element;
* :class:`FunctionalBusInterface` — the transaction-level element;
* :class:`InterfaceLibrary` — pick-the-right-IP registry;
* :class:`Application` — guarded-method stimuli generators;
* refinement helpers reproducing the Figure 3 swap.
"""

from .application import Application, TransactionRecord, wait_for_all
from .bus_interface import BusInterface, BusInterfaceChannel
from .command import READ, WRITE, CommandType, DataType
from .functional_interface import FunctionalBusInterface
from .library import InterfaceLibrary, default_library
from .nonblocking import NonBlockingBusInterfaceChannel, PollingApplication
from .pci_interface import PciBusInterface
from .refinement import (
    PlatformHandle,
    RefinementReport,
    RunResult,
    compare_refinement,
)
from .workload import expected_memory_image, generate_workload, sequential_fill

__all__ = [
    "Application",
    "BusInterface",
    "BusInterfaceChannel",
    "CommandType",
    "DataType",
    "FunctionalBusInterface",
    "InterfaceLibrary",
    "NonBlockingBusInterfaceChannel",
    "PciBusInterface",
    "PollingApplication",
    "PlatformHandle",
    "READ",
    "RefinementReport",
    "RunResult",
    "TransactionRecord",
    "WRITE",
    "compare_refinement",
    "default_library",
    "expected_memory_image",
    "generate_workload",
    "sequential_fill",
    "wait_for_all",
]
