"""The paper's primary contribution: the bus-interface design pattern.

* :class:`BusInterfaceChannel` — the global object with the paper's
  guarded methods (putCommand / getCommand / appDataGet / reset);
* :class:`BusInterface` — the pattern every library element follows;
* :class:`PciBusInterface` — the pin-accurate PCI library element;
* :class:`FunctionalBusInterface` — the transaction-level element;
* :class:`InterfaceLibrary` — pick-the-right-IP registry;
* :class:`Application` — guarded-method stimuli generators;
* refinement helpers reproducing the Figure 3 swap.
"""

from .application import Application, TransactionRecord, wait_for_all
from .bus_interface import BusInterface, BusInterfaceChannel
from .command import READ, WRITE, CommandType, DataType
from .nonblocking import NonBlockingBusInterfaceChannel, PollingApplication
from .refinement import (
    PlatformHandle,
    RefinementReport,
    RunResult,
    compare_refinement,
)
from .workload import expected_memory_image, generate_workload, sequential_fill

#: Concrete element classes resolved lazily: they subclass
#: repro.iface.InterfaceElement, which itself builds on this package —
#: eager imports here would close the cycle when repro.iface is the
#: import entry point.
_ELEMENT_NAMES = {
    "FunctionalBusInterface": "functional_interface",
    "PciBusInterface": "pci_interface",
    "InterfaceLibrary": "library",
    "default_library": "library",
}


def __getattr__(name: str):
    module_name = _ELEMENT_NAMES.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Application",
    "BusInterface",
    "BusInterfaceChannel",
    "CommandType",
    "DataType",
    "FunctionalBusInterface",
    "InterfaceLibrary",
    "NonBlockingBusInterfaceChannel",
    "PciBusInterface",
    "PollingApplication",
    "PlatformHandle",
    "READ",
    "RefinementReport",
    "RunResult",
    "TransactionRecord",
    "WRITE",
    "compare_refinement",
    "default_library",
    "expected_memory_image",
    "generate_workload",
    "sequential_fill",
    "wait_for_all",
]
