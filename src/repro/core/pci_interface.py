"""The PCI library element: pin-accurate bus interface.

This is the representative library component the paper implements: *"an
handler of a simplified version of the PCI bus ... receives requests by
an application in the form of function and procedure invocation and
translates them into pin-level PCI operation requests."*

Structure (paper, Section 1): the interface module consists of

* one global object (the :class:`~repro.core.bus_interface.
  BusInterfaceChannel`) to communicate with the application, and
* several processes implementing the pin-level PCI protocol — here the
  command dispatcher plus the :class:`~repro.pci.master.PciMaster`
  engine it drives.
"""

from __future__ import annotations

from ..hdl.module import Module
from ..hdl.signal import Signal
from ..iface.element import InterfaceElement
from ..iface.params import IfaceParams
from ..osss.arbiter import Arbiter
from ..pci.constants import STATUS_OK
from ..pci.master import PciMaster
from ..pci.signals import PciBus
from .command import DataType


class PciBusInterface(InterfaceElement):
    """Pin-accurate PCI interface element.

    :param bus: the PCI wire bundle to attach to.
    :param clk: the bus clock.
    :param master_index: which REQ#/GNT# pair to use.
    """

    BUS_NAME = "pci"
    ABSTRACTION = "pin_accurate"

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: PciBus,
        clk: Signal,
        master_index: int = 0,
        arbiter: Arbiter | None = None,
        response_capacity: int | None = None,
        channel_cls: type | None = None,
        params: IfaceParams | None = None,
    ) -> None:
        from .bus_interface import BusInterfaceChannel

        if params is None:
            params = IfaceParams(data_width=bus.ad_width)
        super().__init__(parent, name, arbiter, params, response_capacity,
                         channel_cls or BusInterfaceChannel)
        self.check_bus_widths(data_width=bus.ad_width)
        self.bus = bus
        self.clk = clk
        self.master = PciMaster(self, "master", bus, clk, master_index)
        self.operations_failed = 0
        self.thread(self._dispatch, "dispatch")

    def _apply_recovery(self, recovery) -> None:
        """Arm PERR#-style read-parity checking in the master engine."""
        self.master.check_parity = bool(
            getattr(recovery, "check_parity", False)
        )

    @staticmethod
    def _operation_failure(operation) -> str | None:
        """Failure tag of a completed PCI operation, None on success."""
        if operation.status != STATUS_OK:
            return operation.status
        if operation.parity_error:
            return "parity"
        return None

    def _dispatch(self):
        """Forever: take a command from the channel, run it on the pins.

        With recovery armed, failed operations (master abort, target
        abort, read-parity mismatch) are replayed from the command a
        bounded number of times before the failure is surfaced.
        """
        while True:
            epoch, command = yield from self.channel.call("get_command")
            if self.recovery is None:
                operation = command.to_pci_operation()
                yield from self.master.transact(operation)
            else:
                operation = yield from self._transact_with_recovery(
                    command,
                    lambda cmd: cmd.to_pci_operation(),
                    self.master.transact,
                    self._operation_failure,
                )
            self.commands_serviced += 1
            if self._operation_failure(operation) is not None:
                self.operations_failed += 1
            if command.is_read:
                response = DataType(operation.data, operation.status)
                response.corr_id = operation.corr_id
                yield from self.channel.call("put_response", epoch, response)
