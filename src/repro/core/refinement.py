"""Communication refinement (the paper's Figure 3).

Refining communication means rebuilding the executable model with a
different library interface element and *nothing else changed*. The
checkable claim behind the methodology is that the application's
observable transaction trace is identical across abstraction levels,
while the functional platform simulates much faster. This module
packages that experiment.
"""

from __future__ import annotations

import time
import typing

from ..errors import RefinementError
from ..kernel.simulator import Simulator
from .application import Application


class RunResult:
    """Outcome of running one platform to application completion."""

    def __init__(
        self,
        label: str,
        wall_seconds: float,
        sim_time: int,
        delta_cycles: int,
        traces: dict[str, list[tuple]],
    ) -> None:
        self.label = label
        self.wall_seconds = wall_seconds
        self.sim_time = sim_time
        self.delta_cycles = delta_cycles
        self.traces = traces

    @property
    def transactions(self) -> int:
        return sum(len(trace) for trace in self.traces.values())

    def __repr__(self) -> str:
        return (
            f"RunResult({self.label}: {self.transactions} txns, "
            f"{self.delta_cycles} deltas, {self.wall_seconds:.4f}s wall)"
        )


class PlatformHandle:
    """A built executable model, ready to run.

    :param sim: the platform's simulator.
    :param applications: the application modules whose completion ends
        the run and whose records form the observable trace.
    :param label: human-readable platform name (e.g. ``"functional"``).
    :param quiesce: optional predicate polled after the applications
        finish; the run only stops once it returns true. Needed because
        writes are *posted* — the last one may still be draining through
        the interface when the application's thread completes.
    :param quiesce_poll: polling period for the quiesce predicate (fs).
    """

    def __init__(
        self,
        sim: Simulator,
        applications: typing.Sequence[Application],
        label: str,
        quiesce: typing.Callable[[], bool] | None = None,
        quiesce_poll: int = 1000,
    ) -> None:
        if not applications:
            raise RefinementError("a platform needs at least one application")
        self.sim = sim
        self.applications = list(applications)
        self.label = label
        self.quiesce = quiesce
        self.quiesce_poll = quiesce_poll
        sim.spawn(self._stop_when_done, f"{label}.platform_watcher")

    def _stop_when_done(self):
        from ..kernel.process import Timeout
        from .application import wait_for_all

        yield from wait_for_all(self.applications)
        if self.quiesce is not None:
            while not self.quiesce():
                yield Timeout(self.quiesce_poll)
        self.sim.stop()

    def run(self, max_time: int) -> RunResult:
        """Run until every application finishes (bounded by *max_time*)."""
        started = time.perf_counter()
        self.sim.run(max_time)
        wall = time.perf_counter() - started
        unfinished = [a.path for a in self.applications if not a.done]
        if unfinished:
            raise RefinementError(
                f"platform {self.label!r}: applications did not finish "
                f"within {max_time} fs: {unfinished}"
            )
        traces = {
            # Key by leaf name so traces are comparable across platforms
            # even when the hierarchies differ.
            app.name: app.trace_signatures()
            for app in self.applications
        }
        return RunResult(
            self.label, wall, self.sim.time, self.sim.delta_count, traces
        )


PlatformBuilder = typing.Callable[[], PlatformHandle]


class RefinementReport:
    """Comparison of a reference platform against a refined one."""

    def __init__(self, reference: RunResult, refined: RunResult) -> None:
        self.reference = reference
        self.refined = refined
        self.mismatches = self._compare()

    def _compare(self) -> list[str]:
        problems = []
        ref, fin = self.reference.traces, self.refined.traces
        for name in sorted(set(ref) | set(fin)):
            if name not in ref or name not in fin:
                problems.append(f"application {name!r} missing from one platform")
                continue
            if ref[name] != fin[name]:
                problems.append(
                    f"application {name!r}: traces differ "
                    f"({len(ref[name])} vs {len(fin[name])} records)"
                )
        return problems

    @property
    def consistent(self) -> bool:
        """True when every application observed identical transactions."""
        return not self.mismatches

    @property
    def speedup(self) -> float:
        """Wall-clock ratio refined/reference (>1: reference is faster)."""
        if self.reference.wall_seconds <= 0:
            return float("inf")
        return self.refined.wall_seconds / self.reference.wall_seconds

    @property
    def delta_ratio(self) -> float:
        """Kernel-activity ratio (deltas refined / deltas reference)."""
        if self.reference.delta_cycles <= 0:
            return float("inf")
        return self.refined.delta_cycles / self.reference.delta_cycles

    def summary(self) -> str:
        lines = [
            f"reference: {self.reference!r}",
            f"refined:   {self.refined!r}",
            f"trace-consistent: {self.consistent}",
            f"refined/reference wall-clock ratio: {self.speedup:.2f}x",
            f"refined/reference delta-cycle ratio: {self.delta_ratio:.2f}x",
        ]
        lines.extend(f"MISMATCH: {m}" for m in self.mismatches)
        return "\n".join(lines)


def compare_refinement(
    reference_builder: PlatformBuilder,
    refined_builder: PlatformBuilder,
    max_time: int,
) -> RefinementReport:
    """Build and run both platforms; compare observable traces and cost."""
    reference = reference_builder().run(max_time)
    refined = refined_builder().run(max_time)
    return RefinementReport(reference, refined)
