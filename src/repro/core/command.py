"""Application-level command and response types.

The paper's interface methods exchange ``CommandType`` and ``DataType``
values between the application and the bus interface. A
:class:`CommandType` says *what* transfer to perform, abstracted from any
bus protocol; :class:`DataType` carries the result of a read back to the
application.
"""

from __future__ import annotations

import typing

from ..errors import ProtocolError
from ..pci.constants import CMD_MEM_READ, CMD_MEM_WRITE
from ..pci.transaction import PciOperation

#: Transfer kinds understood by every bus interface in the library.
READ = "read"
WRITE = "write"


class CommandType:
    """One abstract bus command issued by the application.

    :param kind: :data:`READ` or :data:`WRITE`.
    :param address: byte address, word aligned.
    :param data: words to write (:data:`WRITE` only).
    :param count: words to read (:data:`READ` only).
    :param byte_enables: active-high lane mask for every data word.
    """

    def __init__(
        self,
        kind: str,
        address: int,
        data: typing.Sequence[int] | None = None,
        count: int = 1,
        byte_enables: int = 0xF,
    ) -> None:
        if kind not in (READ, WRITE):
            raise ProtocolError(f"unknown command kind {kind!r}")
        if address % 4 or not 0 <= address < 2**32:
            raise ProtocolError(f"bad command address {address:#x}")
        if not 0 <= byte_enables <= 0xF:
            raise ProtocolError(f"bad byte enables {byte_enables:#x}")
        self.kind = kind
        self.address = address
        self.byte_enables = byte_enables
        #: Correlation id threaded from the issuing application down to
        #: the pin level (set by Application.perform; deterministic for a
        #: given workload, so spec and RTL runs can be matched span by
        #: span). Not part of the observable signature.
        self.corr_id: str | None = None
        #: Stable id for transaction probe pairing (functional interface).
        self.txn_id: int | None = None
        if kind == WRITE:
            if not data:
                raise ProtocolError("write command needs data words")
            self.data: list[int] = list(data)
            for word in self.data:
                if not 0 <= word < 2**32:
                    raise ProtocolError(f"word {word:#x} does not fit in 32 bits")
            self.count = len(self.data)
        else:
            if data is not None:
                raise ProtocolError("read command must not carry data")
            if count <= 0:
                raise ProtocolError(f"read count must be positive, got {count}")
            self.data = []
            self.count = count

    @classmethod
    def read(cls, address: int, count: int = 1, byte_enables: int = 0xF) -> "CommandType":
        return cls(READ, address, count=count, byte_enables=byte_enables)

    @classmethod
    def write(
        cls, address: int, data: "int | typing.Sequence[int]", byte_enables: int = 0xF
    ) -> "CommandType":
        words = [data] if isinstance(data, int) else list(data)
        return cls(WRITE, address, data=words, byte_enables=byte_enables)

    @property
    def is_read(self) -> bool:
        return self.kind == READ

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    def to_pci_operation(self) -> PciOperation:
        """Lower to the pin-level operation the PCI master executes."""
        if self.is_write:
            operation = PciOperation(
                CMD_MEM_WRITE,
                self.address,
                data=self.data,
                byte_enables=self.byte_enables,
            )
        else:
            operation = PciOperation(
                CMD_MEM_READ,
                self.address,
                count=self.count,
                byte_enables=self.byte_enables,
            )
        operation.corr_id = self.corr_id
        return operation

    def signature(self) -> tuple:
        """Observable content, used in trace comparison."""
        return (self.kind, self.address, tuple(self.data), self.count, self.byte_enables)

    def __repr__(self) -> str:
        return f"CommandType({self.kind} @{self.address:#010x} x{self.count})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommandType):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class DataType:
    """The response to a read command (the paper's ``DataType``).

    :param data: the words read.
    :param status: completion status string (``"ok"`` on success).
    """

    def __init__(self, data: typing.Sequence[int], status: str = "ok") -> None:
        self.data: list[int] = list(data)
        self.status = status
        #: Correlation id of the command this response answers (threaded
        #: back by the bus interface; not part of the signature).
        self.corr_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def signature(self) -> tuple:
        return (tuple(self.data), self.status)

    def __repr__(self) -> str:
        return f"DataType({len(self.data)} words, {self.status})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataType):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())
