"""Recovery observability: the log, episode assembly, latency stats.

:class:`RecoveryLog` is a probe-bus subscriber over the four
``resilience.*`` kinds, in the same shape as
:class:`~repro.instrument.metrics.DetectionLog`. It groups raw events
into *episodes* — one per ``(path, method)`` stream, opened by the
first timeout/retry and closed by a ``recovered`` or ``giveup`` — and
derives the recovery-latency numbers the fault-campaign report quotes.

:class:`InterfaceRecovery` is the picklable knob bundle the bus
interface elements consult for protocol-level transaction replay.
"""

from __future__ import annotations

from ..errors import SimulationError
from ..instrument.probes import (
    RESILIENCE_GIVEUP,
    RESILIENCE_RECOVERED,
    RESILIENCE_RETRY,
    RESILIENCE_TIMEOUT,
    ProbeBus,
    ResilienceEvent,
)
from ..kernel.simtime import US

_KINDS = (
    RESILIENCE_TIMEOUT,
    RESILIENCE_RETRY,
    RESILIENCE_GIVEUP,
    RESILIENCE_RECOVERED,
)


class RecoveryEpisode:
    """One contiguous recovery attempt sequence on a single stream."""

    __slots__ = ("path", "method", "start", "end", "outcome", "attempts", "detail")

    def __init__(self, path: str, method: str, start: int) -> None:
        self.path = path
        self.method = method
        self.start = start
        self.end: int | None = None
        #: ``"recovered"``, ``"giveup"``, or ``"open"`` at end of run.
        self.outcome = "open"
        self.attempts = 0
        self.detail = ""

    @property
    def latency(self) -> int | None:
        """fs from first failure signal to recovery (None unless recovered)."""
        if self.outcome != "recovered" or self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"RecoveryEpisode({self.path}.{self.method} {self.outcome} "
            f"after {self.attempts} attempts)"
        )


class RecoveryLog:
    """Collects ``resilience.*`` probes and assembles episodes."""

    def __init__(self) -> None:
        self.events: list[ResilienceEvent] = []
        self._bus: ProbeBus | None = None

    def attach(self, bus: ProbeBus) -> "RecoveryLog":
        if self._bus is not None:
            raise SimulationError("RecoveryLog is already attached to a bus")
        for kind in _KINDS:
            bus.subscribe(kind, self._record)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind in _KINDS:
            self._bus.unsubscribe(kind, self._record)
        self._bus = None

    def _record(self, event: ResilienceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- counters ------------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def timeouts(self) -> int:
        return self.count(RESILIENCE_TIMEOUT)

    @property
    def retries(self) -> int:
        return self.count(RESILIENCE_RETRY)

    @property
    def giveups(self) -> int:
        return self.count(RESILIENCE_GIVEUP)

    @property
    def recoveries(self) -> int:
        return self.count(RESILIENCE_RECOVERED)

    # -- episodes ------------------------------------------------------------

    def episodes(self) -> list[RecoveryEpisode]:
        """Events grouped into per-stream recovery episodes, in order."""
        open_by_stream: dict[tuple[str, str], RecoveryEpisode] = {}
        episodes: list[RecoveryEpisode] = []
        for event in self.events:
            key = (event.path, event.method)
            episode = open_by_stream.get(key)
            if episode is None:
                episode = RecoveryEpisode(event.path, event.method, event.time)
                open_by_stream[key] = episode
                episodes.append(episode)
            episode.attempts = max(episode.attempts, event.attempt)
            if event.kind in (RESILIENCE_RECOVERED, RESILIENCE_GIVEUP):
                episode.end = event.time
                episode.outcome = (
                    "recovered"
                    if event.kind == RESILIENCE_RECOVERED
                    else "giveup"
                )
                episode.detail = event.detail
                del open_by_stream[key]
        return episodes

    def recovery_latencies(self) -> list[int]:
        """Latencies (fs) of every episode that ended in recovery."""
        return [
            episode.latency
            for episode in self.episodes()
            if episode.latency is not None
        ]

    def stats(self) -> dict:
        """JSON-ready summary: counts + latency aggregates."""
        latencies = self.recovery_latencies()
        episodes = self.episodes()
        return {
            "timeouts": self.timeouts,
            "retries": self.retries,
            "giveups": self.giveups,
            "recoveries": self.recoveries,
            "episodes": len(episodes),
            "recovered_episodes": len(latencies),
            "mean_recovery_latency": (
                sum(latencies) // len(latencies) if latencies else 0
            ),
            "max_recovery_latency": max(latencies) if latencies else 0,
        }


class InterfaceRecovery:
    """Protocol-replay knobs for the swappable bus-interface elements.

    :param replay_limit: bounded re-issues of one failed operation.
    :param backoff: fs before the first replay.
    :param multiplier: backoff growth per replay (no jitter — replay
        pacing is a protocol property, not a contention spreader).
    :param check_parity: PCI only — have the master verify PAR on read
        data phases (PERR#-style detection) and treat a mismatch as a
        replayable failure.
    """

    def __init__(
        self,
        replay_limit: int = 3,
        backoff: int = 2 * US,
        multiplier: float = 2.0,
        check_parity: bool = True,
    ) -> None:
        if replay_limit < 0:
            raise SimulationError(
                f"replay_limit must be >= 0, got {replay_limit}"
            )
        if backoff < 0:
            raise SimulationError(f"backoff must be >= 0 fs, got {backoff}")
        if multiplier < 1.0:
            raise SimulationError(
                f"multiplier must be >= 1.0, got {multiplier}"
            )
        self.replay_limit = replay_limit
        self.backoff = backoff
        self.multiplier = multiplier
        self.check_parity = check_parity

    def backoff_delay(self, replay: int) -> int:
        """fs of delay before 1-based *replay*."""
        return int(self.backoff * (self.multiplier ** (replay - 1)))

    def __repr__(self) -> str:
        return (
            f"InterfaceRecovery(replays={self.replay_limit}, "
            f"backoff={self.backoff}, parity={self.check_parity})"
        )
