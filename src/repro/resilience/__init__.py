"""repro.resilience — error recovery across the communication stack.

The paper's central claim is that communication behaviour lives in
swappable interface elements. This package exploits that for
*robustness*: recovery is layered into exactly those elements, leaving
application code untouched at every refinement level.

Four levels:

* **guarded-call policies** (:mod:`.policy`) — declarative
  :class:`RetryPolicy` objects attached to shared-object methods;
  timeouts, bounded exponential backoff in sim-time, seeded jitter.
* **protocol recovery** (:class:`InterfaceRecovery`) — transaction
  replay inside the PCI/Wishbone interface IPs for master aborts, bus
  errors and PERR#-style read-parity mismatches.
* **kernel watchdog + checkpoint/rollback** (:mod:`.watchdog`,
  :mod:`.checkpoint`) — portable in-sim run supervision and
  deterministic replay-based rollback.
* **self-healing campaigns** — consumed by :mod:`repro.fault`: worker
  supervision, the ``recovered`` outcome class, recovery-latency stats.

Everything recovery does is observable over the probe bus
(``resilience.timeout/retry/giveup/recovered``); :class:`RecoveryLog`
collects those events and aggregates latency statistics.
"""

from __future__ import annotations

import typing

from .checkpoint import (
    KernelCheckpoint,
    ReplayCheckpointer,
    capture,
    restore,
    stable_content_hash,
)
from .policy import (
    ALL_METHODS,
    RetryPolicy,
    attach_retry_policy,
    default_guard_policy,
)
from .recovery import InterfaceRecovery, RecoveryEpisode, RecoveryLog
from .watchdog import RunWatchdog, communication_progress

#: Application-side channel methods a campaign policy covers. The
#: protocol-side methods (``get_command``, ``put_response``) block as
#: part of normal operation — a dispatcher idling on an empty channel
#: must never "time out" — so policies are deliberately not attached
#: to them.
APPLICATION_METHODS: tuple[str, ...] = ("put_command", "app_data_get")


class ResilienceConfig:
    """The full recovery configuration of one platform (picklable).

    :param guard_policy: retry policy for the application-side channel
        methods (None = no call-level recovery).
    :param interface: protocol replay knobs for the bus interface
        element (None = no transaction replay).
    :param watchdog_poll: fs between run-watchdog ticks.
    :param watchdog_strikes: no-progress ticks before the stall trigger.
    """

    def __init__(
        self,
        guard_policy: RetryPolicy | None = None,
        interface: InterfaceRecovery | None = None,
        watchdog_poll: int | None = None,
        watchdog_strikes: int = 5,
    ) -> None:
        self.guard_policy = guard_policy
        self.interface = interface
        self.watchdog_poll = watchdog_poll
        self.watchdog_strikes = watchdog_strikes

    @classmethod
    def default(cls, seed: int = 11) -> "ResilienceConfig":
        """The stock configuration ``fault --resilience`` runs with."""
        return cls(
            guard_policy=default_guard_policy(seed),
            interface=InterfaceRecovery(),
        )

    def __repr__(self) -> str:
        return (
            f"ResilienceConfig(policy={self.guard_policy!r}, "
            f"interface={self.interface!r})"
        )


def apply_resilience(target: typing.Any, config: ResilienceConfig) -> None:
    """Wire *config* onto a built platform.

    *target* is a platform bundle (anything with an ``interface``
    attribute) or the interface element itself. Attaches the guard
    policy to the interface channel's application-side methods and arms
    the element's protocol replay (including master-side parity checking
    on PCI). Application modules are not touched — the whole point.
    """
    interface = getattr(target, "interface", target)
    if config.guard_policy is not None:
        attach_retry_policy(
            interface.channel, config.guard_policy, APPLICATION_METHODS
        )
    if config.interface is not None:
        enable = getattr(interface, "enable_recovery", None)
        if enable is not None:
            enable(config.interface)


__all__ = [
    "ALL_METHODS",
    "APPLICATION_METHODS",
    "InterfaceRecovery",
    "KernelCheckpoint",
    "RecoveryEpisode",
    "RecoveryLog",
    "ReplayCheckpointer",
    "ResilienceConfig",
    "RetryPolicy",
    "RunWatchdog",
    "apply_resilience",
    "attach_retry_policy",
    "capture",
    "communication_progress",
    "default_guard_policy",
    "restore",
    "stable_content_hash",
]
