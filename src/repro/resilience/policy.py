"""Declarative retry policies for guarded calls and protocol replay.

A :class:`RetryPolicy` turns a blocking guarded-method call into a
bounded sequence of attempts: each attempt gets a sim-time deadline;
between attempts the caller backs off exponentially, with deterministic
jitter drawn from the same seeded LCG family the workload generator and
the campaign expander use. A call that exhausts its attempts raises
:class:`~repro.errors.GuardTimeoutError` in the *caller* — the failure
surfaces where it can be handled instead of hanging a process forever.

Policies are plain picklable data. They are attached to a shared state
space (per method, or ``"*"`` for all methods) and consulted by
:meth:`~repro.osss.global_object.GlobalObject.call` through duck typing,
so the OSSS layer never imports this package.
"""

from __future__ import annotations

import typing
import zlib

from ..core.workload import _Lcg
from ..errors import SimulationError
from ..kernel.simtime import US

#: Policy key meaning "every method of the shared class".
ALL_METHODS = "*"


class RetryPolicy:
    """Timeout + bounded exponential backoff for one guarded method.

    :param timeout: fs each attempt may take before it is cancelled.
    :param max_attempts: total attempts (first call + retries).
    :param backoff: fs of delay before the first retry.
    :param multiplier: backoff growth factor per retry.
    :param max_backoff: fs cap on any single backoff delay.
    :param jitter: fraction of each delay randomised (``0.1`` = ±10%),
        drawn deterministically from *seed* and the call identity so
        serial and parallel campaign runs see identical schedules.
    :param seed: base seed of the jitter stream.
    """

    def __init__(
        self,
        timeout: int = 20 * US,
        max_attempts: int = 4,
        backoff: int = 2 * US,
        multiplier: float = 2.0,
        max_backoff: int = 50 * US,
        jitter: float = 0.1,
        seed: int = 11,
    ) -> None:
        if timeout <= 0:
            raise SimulationError(f"RetryPolicy timeout must be > 0 fs, got {timeout}")
        if max_attempts < 1:
            raise SimulationError(
                f"RetryPolicy max_attempts must be >= 1, got {max_attempts}"
            )
        if backoff < 0 or max_backoff < 0:
            raise SimulationError("RetryPolicy backoff delays must be >= 0")
        if multiplier < 1.0:
            raise SimulationError(
                f"RetryPolicy multiplier must be >= 1.0, got {multiplier}"
            )
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(f"RetryPolicy jitter must be in [0, 1), got {jitter}")
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.seed = seed

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(timeout={self.timeout}, attempts={self.max_attempts}, "
            f"backoff={self.backoff}x{self.multiplier})"
        )

    # -- deterministic schedules --------------------------------------------

    def stream(self, *keys: object) -> _Lcg:
        """The jitter LCG for one call identity.

        Keys are folded in with CRC32 (stable across processes, unlike
        ``hash``), so the schedule for ``(client, method, arrival_time)``
        is reproducible in any worker.
        """
        mixed = self.seed & 0x7FFFFFFF
        for key in keys:
            mixed ^= zlib.crc32(str(key).encode("utf-8")) & 0x7FFFFFFF
        return _Lcg(mixed)

    def backoff_schedule(self, *keys: object) -> list[int]:
        """Delays (fs) before retries 1..max_attempts-1, jitter applied."""
        rng = self.stream(*keys)
        delays: list[int] = []
        delay = float(self.backoff)
        for __ in range(self.max_attempts - 1):
            bounded = min(delay, float(self.max_backoff))
            if self.jitter and bounded > 0:
                # Uniform in [-jitter, +jitter], from one 31-bit draw.
                unit = rng.next_int(0x7FFFFFFF) / float(0x7FFFFFFE)
                bounded *= 1.0 + self.jitter * (2.0 * unit - 1.0)
            delays.append(max(0, int(bounded)))
            delay *= self.multiplier
        return delays

    def attempt_timeout(self, attempt: int) -> int:
        """Deadline (fs) of 1-based *attempt*; constant in this policy."""
        return self.timeout


def attach_retry_policy(
    handle: typing.Any,
    policy: RetryPolicy,
    methods: typing.Sequence[str] = (ALL_METHODS,),
) -> RetryPolicy:
    """Attach *policy* to a global-object handle (or a state space).

    :param handle: a :class:`~repro.osss.global_object.GlobalObject` or
        its :class:`~repro.osss.global_object.SharedStateSpace`.
    :param methods: method names to cover; ``"*"`` covers every method
        without an explicit policy of its own.
    """
    space = getattr(handle, "space", handle)
    policies = getattr(space, "retry_policies", None)
    if policies is None:
        raise SimulationError(
            f"{handle!r} does not accept retry policies (no state space)"
        )
    for method in methods:
        policies[method] = policy
    return policy


def default_guard_policy(seed: int = 11) -> RetryPolicy:
    """The stock policy campaigns attach to application-side methods.

    Sized against the demo campaign: fault windows span a quarter of the
    golden horizon (~50 µs at the default spec), so four attempts with
    20 µs deadlines and 4→8→16 µs backoffs outlive any single window
    while staying well inside ``CampaignSpec.max_time``.
    """
    return RetryPolicy(
        timeout=20 * US,
        max_attempts=4,
        backoff=4 * US,
        multiplier=2.0,
        max_backoff=20 * US,
        jitter=0.1,
        seed=seed,
    )


__all__ = [
    "ALL_METHODS",
    "RetryPolicy",
    "attach_retry_policy",
    "default_guard_policy",
]
