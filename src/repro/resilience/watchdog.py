"""Run supervision from inside the simulation.

:class:`RunWatchdog` replaces the fault runner's old SIGALRM wall-clock
alarm with a plain simulation process, which makes it portable (no
POSIX signals, works off the main thread, composes with pool workers)
and lets it watch two things at once:

* **wall budget** — host seconds consumed by the run, polled at every
  watchdog tick; and
* **communication stall** — no guarded-method traffic for N consecutive
  ticks while calls are still pending (the deadlock signature), which
  ends a doomed run after ``poll × stall_strikes`` sim-time instead of
  burning the full horizon.

On firing it either stops the scheduler (``action="stop"``) or aborts
every pending guarded call by completing it with a
:class:`~repro.errors.GuardTimeoutError` (``action="abort"``), which
surfaces the deadlock in the *callers* — the hook checkpoint/re-run
recovery builds on.

The watchdog's pending timeout keeps the scheduler event queue non-empty
for as long as it is armed; pair it with a platform that stops itself
(e.g. :class:`~repro.core.refinement.PlatformHandle`) or call
:meth:`RunWatchdog.cancel` before waiting for event starvation.
"""

from __future__ import annotations

import time as _time
import typing

from ..errors import GuardTimeoutError
from ..kernel.process import Timeout
from ..kernel.simtime import US, format_time


def communication_progress(sim: typing.Any) -> tuple:
    """A cheap, deterministic snapshot of guarded-call traffic.

    Clock toggles keep a deadlocked platform's delta counter spinning,
    so progress must be measured at the communication layer: submitted
    and completed request counts over every shared state space.
    """
    submitted = 0
    completed = 0
    pending = 0
    for __, obj in sim.iter_named():
        space = getattr(obj, "_space", None)
        if space is None:
            continue
        stats = space.stats
        submitted += stats.total_requests
        completed += stats.total_completed
        pending += len(space.pending)
    return (submitted, completed, pending)


class RunWatchdog:
    """A supervisor process armed over one simulator.

    :param sim: the simulator to supervise.
    :param wall_budget: host seconds the run may take (None = unlimited).
    :param poll: fs between watchdog ticks.
    :param stall_strikes: consecutive no-progress ticks (with calls
        pending) before the stall trigger fires; 0 disables stall
        detection and leaves only the wall budget.
    :param action: ``"stop"`` or ``"abort"`` (see module docstring).
    :param progress: override the progress snapshot callable.
    """

    def __init__(
        self,
        sim: typing.Any,
        wall_budget: float | None = None,
        poll: int = 10 * US,
        stall_strikes: int = 5,
        action: str = "stop",
        progress: typing.Callable[[], tuple] | None = None,
    ) -> None:
        if action not in ("stop", "abort"):
            raise ValueError(f"unknown watchdog action {action!r}")
        if poll <= 0:
            raise ValueError(f"watchdog poll must be > 0 fs, got {poll}")
        self.sim = sim
        self.wall_budget = wall_budget
        self.poll = poll
        self.stall_strikes = stall_strikes
        self.action = action
        self._progress = progress or (lambda: communication_progress(sim))
        self.fired = False
        #: ``"wall"`` or ``"stall"`` once fired.
        self.reason: str | None = None
        self.fired_time: int | None = None
        self.aborted_calls = 0
        self._started_wall = _time.perf_counter()
        self._process = sim.spawn(self._watch, "resilience_watchdog")

    def cancel(self) -> None:
        """Disarm the watchdog (it never fires afterwards)."""
        self._process.kill()

    @property
    def wall_elapsed(self) -> float:
        return _time.perf_counter() - self._started_wall

    # -- the supervisor process ---------------------------------------------

    def _watch(self):
        strikes = 0
        last = self._progress()
        while True:
            yield Timeout(self.poll)
            if (
                self.wall_budget is not None
                and self.wall_elapsed > self.wall_budget
            ):
                self._fire("wall")
                return
            if not self.stall_strikes:
                continue
            snapshot = self._progress()
            if snapshot == last and snapshot[-1] > 0:
                strikes += 1
                if strikes >= self.stall_strikes:
                    self._fire("stall")
                    return
            else:
                strikes = 0
                last = snapshot

    def _fire(self, reason: str) -> None:
        self.fired = True
        self.reason = reason
        self.fired_time = self.sim.time
        if self.action == "abort":
            # Surface the failure in the callers and keep simulating;
            # the watchdog is one-shot — re-arm for renewed protection.
            self._abort_pending_calls()
        else:
            self.sim.stop()

    def _abort_pending_calls(self) -> None:
        """Complete every pending guarded call with a GuardTimeoutError."""
        seen: set[int] = set()
        for __, obj in self.sim.iter_named():
            space = getattr(obj, "_space", None)
            if space is None or id(space) in seen:
                continue
            seen.add(id(space))
            for request in list(space.pending):
                space.cancel(request)
                request.error = GuardTimeoutError(
                    f"watchdog aborted {request.client}->{request.method} "
                    f"({self.reason} at {format_time(self.sim.time)})"
                )
                request.completed = True
                request.complete_time = self.sim.time
                if request.done_event is not None:
                    request.done_event.notify_delta()
                self.aborted_calls += 1
