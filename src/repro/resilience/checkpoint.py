"""Kernel checkpointing and replay-based rollback.

Python generators cannot be snapshotted, so the kernel checkpoint comes
in two fidelities:

* :class:`KernelCheckpoint` — a **passive state snapshot**: committed
  signal values (including per-driver contributions of resolved buses),
  deep copies of every shared-object state, and the done flags of all
  processes. :func:`capture` takes one at a *quiescent* point (no
  pending guarded calls); :func:`restore` pushes the state back into a
  live simulator of the same hierarchy. Process program counters are
  untouched — restore is for state-level recovery at transaction
  boundaries, not time travel.

* :class:`ReplayCheckpointer` — **full-fidelity rollback** by
  determinism: rebuild the platform from its builder and re-run it to
  the checkpoint time. The rebuilt state is verified against the
  baseline checkpoint signature, turning the kernel's determinism
  guarantee into a checked property; the fresh platform can then re-run
  the damaged interval with recovery enabled.

``Simulator.checkpoint()`` / ``Simulator.restore()`` are thin wrappers
over :func:`capture` / :func:`restore`.
"""

from __future__ import annotations

import copy
import hashlib
import json
import typing
from collections import deque

from ..errors import CheckpointError
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal

_PLAIN_TYPES = (int, float, str, bool, bytes, type(None))


def stable_content_hash(document: object) -> str:
    """SHA-256 hex digest of a canonical JSON encoding of *document*.

    The encoding is sorted-key, compact-separator JSON with non-JSON
    leaves rendered through ``str``, so the digest is stable across
    processes and sessions for any picklable plain-data tree. This is
    the one content-address primitive shared by checkpoint signatures
    and the durable campaign layer (journal spec hashes, result-cache
    keys).
    """
    payload = json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _space_signature(state: object) -> tuple:
    """Order-stable reduced view of one shared state.

    Plain attributes compare by value; containers by length (their
    elements are arbitrary user payloads without reliable ``__eq__``).
    """
    items: list[tuple[str, object]] = []
    for name in sorted(vars(state)):
        value = getattr(state, name)
        if isinstance(value, _PLAIN_TYPES):
            items.append((name, value))
        elif isinstance(value, (list, tuple, deque, dict, set)):
            items.append((name, f"len={len(value)}"))
    return (type(state).__name__, tuple(items))


class KernelCheckpoint:
    """A passive snapshot of one simulator's observable state."""

    def __init__(self, time: int) -> None:
        self.time = time
        #: path -> committed value (Signal).
        self.signal_values: dict[str, object] = {}
        #: path -> {driver name: contribution} (ResolvedSignal).
        self.driver_values: dict[str, dict[str, object]] = {}
        #: path -> resolved committed value (ResolvedSignal).
        self.resolved_values: dict[str, object] = {}
        #: space path -> deep copy of the shared state object.
        self.space_states: dict[str, object] = {}
        #: space path -> reduced comparable view.
        self.space_signatures: dict[str, tuple] = {}
        #: process name -> done flag.
        self.process_done: dict[str, bool] = {}

    def signature(self) -> tuple:
        """A picklable, comparable digest for determinism checks."""
        return (
            self.time,
            tuple(sorted(
                (path, str(value))
                for path, value in self.signal_values.items()
            )),
            tuple(sorted(
                (path, str(value))
                for path, value in self.resolved_values.items()
            )),
            tuple(sorted(self.space_signatures.items())),
            tuple(sorted(self.process_done.items())),
        )

    def content_hash(self) -> str:
        """Content address of this checkpoint's observable state.

        Two checkpoints compare equal iff their content hashes match,
        which makes the hash usable as a cache/journal key where the
        full signature tuple would be unwieldy.
        """
        return stable_content_hash(self.signature())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KernelCheckpoint):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(self.signature())

    def __repr__(self) -> str:
        return (
            f"KernelCheckpoint(t={self.time}, "
            f"{len(self.signal_values) + len(self.resolved_values)} signals, "
            f"{len(self.space_states)} spaces)"
        )


def _iter_spaces(sim: typing.Any):
    seen: set[int] = set()
    for path, obj in sim.iter_named():
        space = getattr(obj, "_space", None)
        if space is None or id(space) in seen:
            continue
        seen.add(id(space))
        yield path, space


def capture(sim: typing.Any, strict: bool = True) -> KernelCheckpoint:
    """Snapshot *sim* at a quiescent point.

    :param strict: require quiescence. Pass ``False`` when the snapshot
        is used as a determinism *signature* only (replay-based
        rollback): a protocol dispatcher idling in ``get_command`` is
        pending forever by design, and a rebuilt re-run reproduces its
        waiting generator by replay — no restore needed.
    :raises CheckpointError: in strict mode, when guarded calls are
        still pending — the waiting generators could not be reproduced
        by a restore.
    """
    checkpoint = KernelCheckpoint(sim.time)
    for path, space in _iter_spaces(sim):
        if strict and (space.pending or space.busy):
            stuck = ", ".join(
                f"{r.client}->{r.method}" for r in space.pending[:3]
            ) or "busy server"
            raise CheckpointError(
                f"cannot checkpoint at {sim.time_str()}: {path} has "
                f"in-flight guarded calls ({stuck})"
            )
        try:
            checkpoint.space_states[path] = copy.deepcopy(space.state)
        except Exception as error:
            raise CheckpointError(
                f"shared state at {path} is not snapshottable: {error}"
            ) from error
        checkpoint.space_signatures[path] = _space_signature(space.state)
    for path, obj in sim.iter_named():
        if isinstance(obj, ResolvedSignal):
            checkpoint.resolved_values[path] = obj.read()
            checkpoint.driver_values[path] = {
                name: obj.get_driver(name).contribution
                for name in obj.driver_names
            }
        elif isinstance(obj, Signal):
            checkpoint.signal_values[path] = copy.deepcopy(obj.read())
    for process in sim.scheduler.processes:
        checkpoint.process_done[process.name] = process.done
    return checkpoint


def restore(sim: typing.Any, checkpoint: KernelCheckpoint) -> None:
    """Push *checkpoint*'s state back into *sim* (same hierarchy).

    Signals are forced to their checkpointed committed values, resolved
    buses get their per-driver contributions back, and every shared
    state object is replaced by a fresh deep copy of its snapshot (the
    space is touched so guards re-evaluate). Process program counters
    are not rewound; restore at the same kind of quiescent point the
    checkpoint was taken at.
    """
    named = dict(sim.iter_named())
    missing = [
        path
        for path in (
            list(checkpoint.signal_values)
            + list(checkpoint.resolved_values)
            + list(checkpoint.space_states)
        )
        if path not in named
    ]
    if missing:
        raise CheckpointError(
            f"cannot restore: {len(missing)} checkpointed paths missing "
            f"from this simulator (first: {missing[0]!r})"
        )
    for path, space in _iter_spaces(sim):
        if path not in checkpoint.space_states:
            raise CheckpointError(
                f"cannot restore: {path} was not in the checkpoint"
            )
        if space.pending or space.busy:
            raise CheckpointError(
                f"cannot restore at {sim.time_str()}: {path} has in-flight "
                "guarded calls"
            )
        space.state = copy.deepcopy(checkpoint.space_states[path])
        space.touch()
    for path, value in checkpoint.signal_values.items():
        signal = named[path]
        if signal.read() != value:
            signal.force(copy.deepcopy(value))
    for path, contributions in checkpoint.driver_values.items():
        bus = typing.cast(ResolvedSignal, named[path])
        for name, contribution in contributions.items():
            bus.get_driver(name).write(contribution)


class ReplayCheckpointer:
    """Full-fidelity rollback by deterministic rebuild + re-run.

    :param builder: zero-argument callable producing a fresh platform;
        anything exposing ``sim`` directly or through ``.handle`` works
        (a :class:`~repro.flow.platforms.PlatformBundle`, a
        :class:`~repro.core.refinement.PlatformHandle`, a simulator).
    """

    def __init__(self, builder: typing.Callable[[], typing.Any]) -> None:
        self.builder = builder
        self.checkpoint: KernelCheckpoint | None = None
        self.checkpoint_time: int | None = None

    @staticmethod
    def _sim_of(platform: typing.Any):
        for candidate in (platform, getattr(platform, "handle", None)):
            sim = getattr(candidate, "sim", None)
            if sim is not None:
                return sim
        if hasattr(platform, "scheduler"):
            return platform
        raise CheckpointError(
            f"builder product {platform!r} exposes no simulator"
        )

    def baseline(self, checkpoint_time: int) -> tuple[typing.Any, KernelCheckpoint]:
        """Build, run to *checkpoint_time*, snapshot; returns (platform, cp)."""
        platform = self.builder()
        sim = self._sim_of(platform)
        sim.run(checkpoint_time - sim.time)
        self.checkpoint = capture(sim, strict=False)
        self.checkpoint_time = checkpoint_time
        return platform, self.checkpoint

    def rollback(self) -> typing.Any:
        """Rebuild and re-run to the checkpoint; verify, return the platform.

        :raises CheckpointError: when the rebuilt run does not reproduce
            the baseline checkpoint — the design is nondeterministic and
            replay-based recovery would silently diverge.
        """
        if self.checkpoint is None or self.checkpoint_time is None:
            raise CheckpointError("rollback before baseline()")
        platform = self.builder()
        sim = self._sim_of(platform)
        sim.run(self.checkpoint_time - sim.time)
        replayed = capture(sim, strict=False)
        if replayed.signature() != self.checkpoint.signature():
            raise CheckpointError(
                f"replay diverged from checkpoint at t={self.checkpoint_time}: "
                "the platform builder is not deterministic"
            )
        return platform
