"""Wishbone bus substrate — the interface library's second bus."""

from .interface import WishboneBusInterface, WishboneFunctionalInterface
from .master import WishboneMaster, WishboneOperation
from .monitor import WishboneMonitor, WishboneTransfer
from .signals import WishboneBus
from .slave import WishboneSlave

__all__ = [
    "WishboneBus",
    "WishboneBusInterface",
    "WishboneFunctionalInterface",
    "WishboneMaster",
    "WishboneMonitor",
    "WishboneOperation",
    "WishboneSlave",
    "WishboneTransfer",
]
