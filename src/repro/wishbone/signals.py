"""Wishbone B3 wire bundle (the library's second bus).

The paper's payoff is a *library* of interface elements, one per bus.
Besides PCI we ship a classic-cycle Wishbone bus: single-master,
point-to-multipoint, synchronous, with ACK/ERR termination. Unlike PCI
the wires are simple single-driver signals — no tri-state — which also
exercises the pattern on a very different protocol style.

Classic cycle: the master asserts CYC+STB with ADR/WE/SEL (and DAT_W for
writes); the addressed slave answers with ACK (DAT_R valid for reads) or
ERR. Keeping CYC asserted across consecutive STBs forms a burst.
"""

from __future__ import annotations

from ..hdl.module import Module
from ..kernel.simulator import Simulator

from ..errors import ProtocolError

#: Default width of the address and data paths (elaboration defaults;
#: a parameterized bus derives SEL width and masks from its own widths).
ADDR_WIDTH = 32
DATA_WIDTH = 32
SEL_WIDTH = DATA_WIDTH // 8


class WishboneBus(Module):
    """All wires of one single-master Wishbone segment.

    The master drives the ``_o`` group; slaves share the ``_i`` group
    (each slave only drives when addressed — enforced by the slaves'
    decode, checked by the monitor).

    :param data_width: DAT_W/DAT_R width (multiple of 8); SEL grows one
        lane per byte.
    :param addr_width: ADR width.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        data_width: int = DATA_WIDTH,
        addr_width: int = ADDR_WIDTH,
    ) -> None:
        super().__init__(parent, name)
        if data_width < 8 or data_width % 8:
            raise ProtocolError(
                f"data_width must be a positive multiple of 8, got "
                f"{data_width}"
            )
        if addr_width < 1:
            raise ProtocolError(f"addr_width must be >= 1, got {addr_width}")
        #: Structural widths/masks the agents elaborate against.
        self.data_width = data_width
        self.addr_width = addr_width
        self.sel_width = data_width // 8
        self.sel_mask = (1 << self.sel_width) - 1
        self.data_mask = (1 << data_width) - 1
        self.addr_mask = (1 << addr_width) - 1
        # Master outputs.
        self.cyc = self.signal("cyc", width=1, init=0)
        self.stb = self.signal("stb", width=1, init=0)
        self.we = self.signal("we", width=1, init=0)
        self.adr = self.signal("adr", width=addr_width, init=0)
        self.dat_w = self.signal("dat_w", width=data_width, init=0)
        self.sel = self.signal("sel", width=self.sel_width,
                               init=self.sel_mask)
        # Slave outputs (resolved so several slaves can share the rail;
        # exactly one may drive at a time).
        self.ack = self.resolved_signal("ack", 1)
        self.err = self.resolved_signal("err", 1)
        self.dat_r = self.resolved_signal("dat_r", data_width)

    def request_active(self) -> bool:
        """CYC and STB both sampled high."""
        return (
            self.cyc.read().to_int_default(0) == 1
            and self.stb.read().to_int_default(0) == 1
        )

    def ack_active(self) -> bool:
        value = self.ack.read()
        return value.is_fully_defined and value.to_int() == 1

    def err_active(self) -> bool:
        value = self.err.read()
        return value.is_fully_defined and value.to_int() == 1
