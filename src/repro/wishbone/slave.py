"""Wishbone slave with a configurable ACK latency."""

from __future__ import annotations

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..tlm.interfaces import TlmTarget
from .signals import WishboneBus


class WishboneSlave(Module):
    """A memory-mapped slave answering classic cycles.

    :param store: the functional model behind this slave.
    :param base / size: decoded address window (byte addresses).
    :param ack_latency: clocks between sampling the request and ACK
        (0 = combinational-style answer on the next edge).
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: WishboneBus,
        clk: Signal,
        store: TlmTarget,
        base: int,
        size: int,
        ack_latency: int = 0,
    ) -> None:
        super().__init__(parent, name)
        if base % 4 or size <= 0 or size % 4:
            raise ProtocolError(f"bad window base={base:#x} size={size:#x}")
        if ack_latency < 0:
            raise ProtocolError("ack latency must be >= 0")
        self.bus = bus
        self.clk = clk
        self.store = store
        self.base = base
        self.size = size
        self.ack_latency = ack_latency
        self._ack = bus.ack.get_driver(self.path)
        self._err = bus.err.get_driver(self.path)
        self._dat_r = bus.dat_r.get_driver(self.path)
        self.requests_served = 0
        self.errors_signalled = 0
        self.thread(self._serve, "serve")

    def decodes(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def _release(self) -> None:
        self._ack.release()
        self._err.release()
        self._dat_r.release()

    def _serve(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            if not bus.request_active():
                self._release()
                continue
            adr = bus.adr.read()
            if not adr.is_fully_defined or not self.decodes(adr.to_int()):
                self._release()
                continue
            address = adr.to_int()
            # Wait states before terminating the phase.
            aborted = False
            for __ in range(self.ack_latency):
                yield self.clk.posedge
                if not bus.request_active():
                    aborted = True
                    break
            if aborted:
                self._release()
                continue
            local = address - self.base
            we = bus.we.read().to_int_default(0)
            try:
                if we:
                    sel = bus.sel.read().to_int_default(bus.sel_mask)
                    data = bus.dat_w.read()
                    if not data.is_fully_defined:
                        raise ProtocolError(
                            f"{self.path}: write with undefined DAT_W"
                        )
                    self.store.write_word(local, data.to_int(), sel)
                    self._dat_r.release()
                else:
                    value = self.store.read_word(local)
                    self._dat_r.write(LogicVector(bus.data_width, value))
                self._ack.write(1)
                self._err.write(0)
                self.requests_served += 1
            except ProtocolError:
                # Functional model rejected the access: ERR termination.
                self._err.write(1)
                self._ack.write(0)
                self._dat_r.release()
                self.errors_signalled += 1
            # Hold the termination for exactly one clock.
            yield self.clk.posedge
            self._ack.write(0)
            self._err.write(0)
            self._dat_r.release()
