"""The Wishbone library interface element.

Same pattern as :class:`~repro.core.pci_interface.PciBusInterface`: the
application talks guarded methods, the dispatcher drives the pin-level
Wishbone master. Registering this class (plus the functional alias) in
an :class:`~repro.core.library.InterfaceLibrary` gives the library a
second bus — the generalisation the paper's methodology promises.
"""

from __future__ import annotations

from ..core.bus_interface import BusInterface
from ..core.command import CommandType, DataType
from ..core.functional_interface import FunctionalBusInterface
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..osss.arbiter import Arbiter
from .master import WishboneMaster, WishboneOperation
from .signals import WishboneBus


def _to_wishbone_operation(command: CommandType) -> WishboneOperation:
    if command.is_write:
        operation = WishboneOperation.write(
            command.address, command.data, sel=command.byte_enables
        )
    else:
        operation = WishboneOperation.read(
            command.address, count=command.count, sel=command.byte_enables
        )
    operation.corr_id = command.corr_id
    return operation


class WishboneBusInterface(BusInterface):
    """Pin-accurate Wishbone interface element."""

    BUS_NAME = "wishbone"
    ABSTRACTION = "pin_accurate"

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: WishboneBus,
        clk: Signal,
        arbiter: Arbiter | None = None,
        response_capacity: int = 4,
    ) -> None:
        super().__init__(parent, name, arbiter, response_capacity)
        self.bus = bus
        self.clk = clk
        self.master = WishboneMaster(self, "master", bus, clk)
        self.operations_failed = 0
        self.thread(self._dispatch, "dispatch")

    @staticmethod
    def _operation_failure(operation) -> str | None:
        return None if operation.status == "ok" else operation.status

    def _dispatch(self):
        while True:
            epoch, command = yield from self.channel.call("get_command")
            if self.recovery is None:
                operation = _to_wishbone_operation(command)
                yield from self.master.transact(operation)
            else:
                operation = yield from self._transact_with_recovery(
                    command,
                    _to_wishbone_operation,
                    self.master.transact,
                    self._operation_failure,
                )
            self.commands_serviced += 1
            if operation.status != "ok":
                self.operations_failed += 1
            if command.is_read:
                response = DataType(operation.data, operation.status)
                response.corr_id = operation.corr_id
                yield from self.channel.call("put_response", epoch, response)


class WishboneFunctionalInterface(FunctionalBusInterface):
    """The functional element re-tagged for the wishbone library slot."""

    BUS_NAME = "wishbone"
    ABSTRACTION = "functional"
