"""Wishbone master (initiator) engine."""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.event import Event
from .signals import WishboneBus


class WishboneOperation:
    """One requested classic-cycle transfer (possibly a burst).

    :param is_write: direction.
    :param address: word-aligned byte start address.
    :param data: words to write (writes only).
    :param count: words to read (reads only).
    :param sel: active-high byte-select mask applied to each phase.
    :param sel_bits: SEL lanes of the bus this operation targets (the
        validation bound; 4 for the default 32-bit data path).
    """

    def __init__(
        self,
        is_write: bool,
        address: int,
        data=None,
        count: int = 1,
        sel: int | None = None,
        sel_bits: int = 4,
    ) -> None:
        if address % 4 or not 0 <= address < 2**32:
            raise ProtocolError(f"bad wishbone address {address:#x}")
        if sel_bits < 1:
            raise ProtocolError(f"sel_bits must be >= 1, got {sel_bits}")
        if sel is None:
            sel = (1 << sel_bits) - 1
        if not 0 <= sel < (1 << sel_bits):
            raise ProtocolError(f"bad sel mask {sel:#x}")
        self.sel_bits = sel_bits
        self.is_write = is_write
        self.address = address
        self.sel = sel
        if is_write:
            if not data:
                raise ProtocolError("write operation needs data")
            self.data = list(data)
            self.count = len(self.data)
        else:
            if data is not None:
                raise ProtocolError("read operation must not carry data")
            if count < 1:
                raise ProtocolError("read count must be >= 1")
            self.data = []
            self.count = count
        self.status = "pending"
        self.enqueue_time: int | None = None
        self.start_time: int | None = None
        self.complete_time: int | None = None
        #: Correlation id inherited from the issuing CommandType.
        self.corr_id: str | None = None
        #: Stable id for transaction.begin/end probe pairing.
        self.txn_id: int | None = None

    @classmethod
    def read(cls, address: int, count: int = 1, sel: int | None = None,
             sel_bits: int = 4):
        return cls(False, address, count=count, sel=sel, sel_bits=sel_bits)

    @classmethod
    def write(cls, address: int, data, sel: int | None = None,
              sel_bits: int = 4):
        words = [data] if isinstance(data, int) else list(data)
        return cls(True, address, data=words, sel=sel, sel_bits=sel_bits)

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return f"WishboneOperation({kind} @{self.address:#010x} x{self.count})"


class WishboneMaster(Module):
    """Single bus master executing queued operations in order.

    :param timeout_cycles: clocks to wait for ACK/ERR before declaring a
        bus error (no slave decoded the address).
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: WishboneBus,
        clk: Signal,
        timeout_cycles: int = 16,
    ) -> None:
        super().__init__(parent, name)
        if timeout_cycles < 1:
            raise ProtocolError("timeout must be >= 1 cycle")
        self.bus = bus
        self.clk = clk
        self.timeout_cycles = timeout_cycles
        self._queue: deque[tuple[WishboneOperation, Event]] = deque()
        self._op_available = self.event("op_available")
        self.ops_completed = 0
        self.errors_seen = 0
        self.timeouts_seen = 0
        self.thread(self._engine, "engine")

    # -- public API ----------------------------------------------------------

    def submit(self, operation: WishboneOperation) -> Event:
        done = self.event("op_done")
        operation.enqueue_time = self.sim.time
        self._queue.append((operation, done))
        self._op_available.notify()
        return done

    def transact(self, operation: WishboneOperation):
        """Blocking helper for thread processes."""
        done = self.submit(operation)
        yield done
        return operation

    # -- engine ------------------------------------------------------------------

    def _engine(self):
        bus = self.bus
        while True:
            if not self._queue:
                yield self._op_available
                continue
            operation, done = self._queue.popleft()
            operation.start_time = self.sim.time
            if operation.txn_id is None:
                operation.txn_id = new_txn_id()
            probes = self.sim._probes
            if probes is not None:
                probes.emit(
                    TRANSACTION_BEGIN, self.sim.time, self.path, operation
                )
            status = "ok"
            for index in range(operation.count):
                address = operation.address + 4 * index
                bus.cyc.write(1)
                bus.stb.write(1)
                bus.adr.write(LogicVector(bus.addr_width,
                                           address & bus.addr_mask))
                bus.sel.write(LogicVector(bus.sel_width, operation.sel))
                if operation.is_write:
                    bus.we.write(1)
                    bus.dat_w.write(
                        LogicVector(bus.data_width, operation.data[index])
                    )
                else:
                    bus.we.write(0)
                waited = 0
                while True:
                    yield self.clk.posedge
                    if bus.err_active():
                        status = "bus_error"
                        self.errors_seen += 1
                        break
                    if bus.ack_active():
                        if not operation.is_write:
                            value = bus.dat_r.read()
                            if not value.is_fully_defined:
                                raise ProtocolError(
                                    f"{self.path}: ACK with undefined DAT_R"
                                )
                            operation.data.append(value.to_int())
                        break
                    waited += 1
                    if waited > self.timeout_cycles:
                        status = "timeout"
                        self.timeouts_seen += 1
                        break
                if status != "ok":
                    break
                # Phase done: deassert STB for one cycle (classic cycle with
                # a gap keeps the simple slave's bookkeeping unambiguous).
                bus.stb.write(0)
                yield self.clk.posedge
            bus.cyc.write(0)
            bus.stb.write(0)
            operation.status = status
            operation.complete_time = self.sim.time
            if probes is not None:
                probes.emit(TRANSACTION_END, self.sim.time, self.path, operation)
            if status == "ok":
                self.ops_completed += 1
            done.notify_delta()
