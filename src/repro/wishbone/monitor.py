"""Passive Wishbone monitor: protocol rules + transaction recording."""

from __future__ import annotations

from ..errors import ProtocolError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_END, new_txn_id
from .signals import WishboneBus


class WishboneTransfer:
    """One observed terminated phase."""

    def __init__(self, address: int, is_write: bool, data: int | None,
                 sel: int, time: int, terminated_by: str) -> None:
        self.address = address
        self.is_write = is_write
        self.data = data
        self.sel = sel
        self.time = time
        self.terminated_by = terminated_by
        #: Stable id for transaction probe pairing.
        self.txn_id: int | None = None
        #: Correlation id back-filled by the span layer (by time/address
        #: containment against the master's operation span).
        self.corr_id: str | None = None

    def signature(self) -> tuple:
        return (self.address, self.is_write, self.data, self.sel,
                self.terminated_by)

    def __repr__(self) -> str:
        kind = "write" if self.is_write else "read"
        return (f"WishboneTransfer({kind} @{self.address:#010x} "
                f"data={self.data!r} [{self.terminated_by}])")


class WishboneMonitor(Module):
    """Watches the wires; checks the basic classic-cycle rules."""

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: WishboneBus,
        clk: Signal,
        strict: bool = True,
    ) -> None:
        super().__init__(parent, name)
        self.bus = bus
        self.clk = clk
        self.strict = strict
        self.transfers: list[WishboneTransfer] = []
        self.violations: list[str] = []
        self.cycles_observed = 0
        self.busy_cycles = 0
        self.thread(self._watch, "watch")

    def _violation(self, message: str) -> None:
        text = f"{self.sim.time_str()}: {message}"
        self.violations.append(text)
        self.sim.report_detection(self.path, text)
        if self.strict:
            raise ProtocolError(f"{self.path}: {text}")

    def signatures(self) -> list[tuple]:
        return [t.signature() for t in self.transfers]

    def _watch(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            self.cycles_observed += 1
            request = bus.request_active()
            ack = bus.ack_active()
            err = bus.err_active()
            if request:
                self.busy_cycles += 1
            if (ack or err) and not request:
                self._violation("ACK/ERR asserted without CYC&STB")
                continue
            if ack and err:
                self._violation("ACK and ERR asserted together")
                continue
            if not (ack or err):
                continue
            adr = bus.adr.read()
            if not adr.is_fully_defined:
                self._violation("termination with undefined ADR")
                continue
            is_write = bus.we.read().to_int_default(0) == 1
            sel = bus.sel.read().to_int_default(bus.sel_mask)
            data: int | None = None
            if ack:
                source = bus.dat_w if is_write else bus.dat_r
                value = source.read()
                if not value.is_fully_defined:
                    self._violation("ACK with undefined data")
                    continue
                data = value.to_int()
            transfer = WishboneTransfer(
                adr.to_int(), is_write, data, sel, self.sim.time,
                "ack" if ack else "err",
            )
            transfer.txn_id = new_txn_id()
            self.transfers.append(transfer)
            # Wishbone classic cycles terminate in the cycle they are
            # observed; only the end probe is meaningful.
            probes = self.sim._probes
            if probes is not None:
                probes.emit(TRANSACTION_END, self.sim.time, self.path, transfer)
