"""Combinational levelization and the :class:`EvalSchedule` artifact.

A synthesized module's combinational logic forms a DAG from registers
and input ports to every derived wire — unless somebody introduced a
combinational cycle, in which case no evaluation order exists and the
netlist is broken (``NET003``). The levelizer runs Kahn's algorithm
over the :class:`~repro.analyze.graph.NetGraph`'s comb dependencies and
produces either the cycles it found or an :class:`EvalSchedule`: the
comb sites sorted into levels such that evaluating them level by level
(any order within a level) settles every wire in a single pass.

The schedule is executable. :meth:`EvalSchedule.evaluate` takes a
``{net name: value}`` environment for the boundary (registers and input
ports) and computes every comb-driven net exactly as a compiled
simulator would — one delta cycle with no event queue. This is the seed
of the ROADMAP's compiled fast-sim backend, and the equivalence tests
use it to cross-check the interpreted kernel's committed signal values.
"""

from __future__ import annotations

import typing

from ..errors import ReproError
from ..synthesis import ir
from .graph import NetGraph


class EvaluationError(ReproError):
    """The schedule evaluator hit a net with no value."""


def evaluate_expr(
    expr: ir.Expr, env: typing.Mapping[str, int]
) -> int:
    """Evaluate *expr* over ``{net name: value}``; results are masked
    to the expression width (two's-complement wraparound on ``-``)."""
    mask = (1 << expr.width) - 1
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.Ref):
        try:
            return env[expr.net.name] & mask
        except KeyError:
            raise EvaluationError(
                f"no value for net {expr.net.name!r} in the environment"
            ) from None
    if isinstance(expr, ir.UnOp):
        value = evaluate_expr(expr.operand, env)
        if expr.op == "~":
            return (~value) & mask
        if expr.op == "|":
            return 1 if value != 0 else 0
        operand_mask = (1 << expr.operand.width) - 1
        return 1 if value == operand_mask else 0  # reduce-and
    if isinstance(expr, ir.BinOp):
        left = evaluate_expr(expr.left, env)
        right = evaluate_expr(expr.right, env)
        if expr.op == "&":
            return left & right
        if expr.op == "|":
            return left | right
        if expr.op == "^":
            return left ^ right
        if expr.op == "+":
            return (left + right) & mask
        if expr.op == "-":
            return (left - right) & mask
        if expr.op == "==":
            return 1 if left == right else 0
        if expr.op == "!=":
            return 1 if left != right else 0
        return 1 if left < right else 0
    if isinstance(expr, ir.Mux):
        if evaluate_expr(expr.select, env):
            return evaluate_expr(expr.if_true, env)
        return evaluate_expr(expr.if_false, env)
    if isinstance(expr, ir.BitSelect):
        return (evaluate_expr(expr.operand, env) >> expr.index) & 1
    if isinstance(expr, ir.Concat):
        value = 0
        for part in expr.parts:  # first part is most significant
            part_mask = (1 << part.width) - 1
            value = (value << part.width) | (evaluate_expr(part, env) & part_mask)
        return value
    raise EvaluationError(f"cannot evaluate expression {expr!r}")


class ScheduleStep:
    """One comb evaluation: an assign, or an FSM Moore output decode."""

    __slots__ = ("kind", "target", "expr", "fsm")

    def __init__(
        self,
        kind: str,
        target: ir.Net,
        expr: ir.Expr | None = None,
        fsm: ir.Fsm | None = None,
    ) -> None:
        self.kind = kind  # "assign" | "fsm-output"
        self.target = target
        self.expr = expr
        self.fsm = fsm

    def evaluate(self, env: typing.Mapping[str, int]) -> int:
        if self.kind == "assign":
            assert self.expr is not None
            return evaluate_expr(self.expr, env)
        assert self.fsm is not None
        state_value = env.get(self.fsm.state_register.name)
        if state_value is None:
            raise EvaluationError(
                f"no value for state register "
                f"{self.fsm.state_register.name!r}"
            )
        # An over-wide environment value must decode like the hardware
        # would see it: truncated to the state register's width.
        state_value &= (1 << self.fsm.state_register.width) - 1
        target_mask = (1 << self.target.width) - 1
        for state, outputs in self.fsm.moore_outputs.items():
            if self.fsm.encode(state) != state_value:
                continue
            for net, value in outputs:
                if net is self.target:
                    return value & target_mask
        return 0  # Moore default: states with no entry drive 0

    def __repr__(self) -> str:
        return f"ScheduleStep({self.kind} -> {self.target.name})"


class CombLoop:
    """One combinational cycle, as the closed path of nets on it."""

    __slots__ = ("nets",)

    def __init__(self, nets: typing.Sequence[ir.Net]) -> None:
        self.nets = list(nets)

    def describe(self) -> str:
        names = [net.name for net in self.nets]
        return " -> ".join([*names, names[0]]) if names else "<empty>"

    def __repr__(self) -> str:
        return f"CombLoop({self.describe()})"


class EvalSchedule:
    """Topologically-levelized combinational evaluation order.

    :attr:`levels` lists the comb steps by dependency depth: level 0
    reads only registers and input ports, level *n* reads nothing above
    level *n − 1*. Flattened iteration order is therefore a valid
    single-pass evaluation order.
    """

    def __init__(
        self, module: ir.RtlModule, levels: typing.Sequence[typing.Sequence[ScheduleStep]]
    ) -> None:
        self.module = module
        self.levels = [list(level) for level in levels]
        self._boundary_widths: dict[str, int] | None = None

    @property
    def steps(self) -> list[ScheduleStep]:
        return [step for level in self.levels for step in level]

    @property
    def depth(self) -> int:
        """Number of levels — the longest comb path in evaluations."""
        return len(self.levels)

    def boundary_nets(self) -> list[ir.Net]:
        """Nets the environment must supply: every net a step reads
        that no step computes (registers and input ports)."""
        computed = {id(step.target) for step in self.steps}
        boundary: dict[int, ir.Net] = {}
        for level in self.levels:
            for step in level:
                sources: typing.Iterable[ir.Net]
                if step.expr is not None:
                    sources = step.expr.referenced_nets()
                else:
                    assert step.fsm is not None
                    sources = (step.fsm.state_register,)
                for net in sources:
                    if id(net) not in computed:
                        boundary.setdefault(id(net), net)
        return list(boundary.values())

    def evaluate(
        self, boundary: typing.Mapping[str, int]
    ) -> dict[str, int]:
        """One delta cycle: settle every comb net from *boundary*.

        Returns the full environment — boundary values plus every
        computed net, keyed by net name. Boundary values are masked to
        their net widths on entry (width-1 nets fed Python truthy
        values, state registers carrying stale high bits): the
        environment behaves like the wires it names, and the generated
        code of the compiled backend shares exactly this semantics.
        """
        env = dict(boundary)
        widths = self._boundary_widths
        if widths is None:
            widths = self._boundary_widths = {
                net.name: net.width for net in self.boundary_nets()
            }
        for name, width in widths.items():
            value = env.get(name)
            if value is not None:
                env[name] = value & ((1 << width) - 1)
        for level in self.levels:
            for step in level:
                env[step.target.name] = step.evaluate(env)
        return env

    def describe(self) -> str:
        lines = [
            f"schedule {self.module.name}: {len(self.steps)} steps, "
            f"depth {self.depth}"
        ]
        for depth, level in enumerate(self.levels):
            names = ", ".join(step.target.name for step in level)
            lines.append(f"  level {depth}: {names}")
        return "\n".join(lines)


class LevelizationResult:
    """Outcome of :func:`levelize`: a schedule, or the cycles found."""

    def __init__(
        self,
        module: ir.RtlModule,
        schedule: EvalSchedule | None,
        loops: typing.Sequence[CombLoop],
    ) -> None:
        self.module = module
        self.schedule = schedule
        self.loops = list(loops)

    @property
    def ok(self) -> bool:
        return self.schedule is not None


def _comb_steps(graph: NetGraph) -> dict[int, ScheduleStep]:
    """One step per comb-driven net (first driver wins; NET001 reports
    the conflict when there are several)."""
    steps: dict[int, ScheduleStep] = {}
    module = graph.module
    for assign in module.assigns:
        steps.setdefault(
            id(assign.target),
            ScheduleStep("assign", assign.target, expr=assign.expr),
        )
    for fsm in module.fsms:
        moore_nets: dict[int, ir.Net] = {}
        for outputs in fsm.moore_outputs.values():
            for net, __ in outputs:
                moore_nets.setdefault(id(net), net)
        for net in moore_nets.values():
            steps.setdefault(
                id(net), ScheduleStep("fsm-output", net, fsm=fsm)
            )
    return steps


def _extract_loop(
    stuck: set[int], edges: dict[int, set[int]], graph: NetGraph
) -> CombLoop:
    """Walk dependencies inside the stuck set until a net repeats."""
    start = next(iter(stuck))
    path: list[int] = []
    seen: dict[int, int] = {}
    node = start
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = next(dep for dep in edges.get(node, ()) if dep in stuck)
    cycle = path[seen[node]:]
    return CombLoop([graph.net_by_id(net_id) for net_id in reversed(cycle)])


def levelize(
    module: ir.RtlModule, graph: NetGraph | None = None
) -> LevelizationResult:
    """Levelize *module*'s combinational netlist.

    Kahn's algorithm over the comb dependency graph. If every comb net
    sorts, the result carries an :class:`EvalSchedule`; any leftover
    strongly-connected remainder is reported as :class:`CombLoop`\\ s
    (one representative cycle per connected remainder component).
    """
    graph = graph or NetGraph(module)
    edges = graph.comb_dependencies()
    steps = _comb_steps(graph)
    pending = {net_id: set(deps) for net_id, deps in edges.items()}
    dependents: dict[int, list[int]] = {}
    for net_id, deps in edges.items():
        for dep in deps:
            dependents.setdefault(dep, []).append(net_id)

    levels: list[list[ScheduleStep]] = []
    ready = sorted(
        (net_id for net_id, deps in pending.items() if not deps),
        key=lambda net_id: graph.net_by_id(net_id).name,
    )
    for net_id in ready:
        del pending[net_id]
    while ready:
        levels.append([steps[net_id] for net_id in ready if net_id in steps])
        next_ready: list[int] = []
        for net_id in ready:
            for dependent in dependents.get(net_id, ()):
                deps = pending.get(dependent)
                if deps is None:
                    continue
                deps.discard(net_id)
                if not deps:
                    next_ready.append(dependent)
                    del pending[dependent]
        next_ready.sort(key=lambda net_id: graph.net_by_id(net_id).name)
        ready = next_ready

    if not pending:
        return LevelizationResult(module, EvalSchedule(module, levels), [])

    loops: list[CombLoop] = []
    stuck = set(pending)
    while stuck:
        loop = _extract_loop(stuck, edges, graph)
        loops.append(loop)
        stuck.difference_update(id(net) for net in loop.nets)
        # Drop everything that can only be stuck through the reported
        # loop, so each remaining report is a genuinely distinct cycle.
        changed = True
        while changed:
            changed = False
            for net_id in list(stuck):
                if not any(dep in stuck for dep in edges.get(net_id, ())):
                    stuck.discard(net_id)
                    changed = True
    return LevelizationResult(module, None, loops)
