"""X-propagation from unreset registers to primary outputs.

A register declared with ``reset_value=None`` powers up unknown. Every
combinational net that (transitively) reads it is unknown too, until
the register is first clocked — and if such a net reaches an output
port, the module exposes X to its neighbours right after reset, which
is exactly when the handshake protocol starts sampling. This static
pass computes the combinational X-closure and reports tainted output
ports with one example source-to-port path (``NET004``).

Registers *with* a reset stop the taint: their post-reset value is
defined regardless of what their (possibly tainted) next-state logic
computes, which matches what the first delta cycle after reset sees.
"""

from __future__ import annotations

import typing

from ..synthesis import ir
from .graph import NetGraph


class XPropFinding:
    """One tainted primary output, with a witness path."""

    __slots__ = ("port", "source", "path")

    def __init__(
        self, port: ir.Port, source: ir.Register,
        path: typing.Sequence[ir.Net],
    ) -> None:
        self.port = port
        self.source = source
        #: Nets from the unreset register to the port, inclusive.
        self.path = list(path)

    def describe_path(self) -> str:
        return " -> ".join(net.name for net in self.path)

    def __repr__(self) -> str:
        return f"XPropFinding({self.source.name} ~> {self.port.name})"


def x_sources(module: ir.RtlModule) -> list[ir.Register]:
    """Registers with no reset assign (the X roots)."""
    return [r for r in module.registers if not r.has_reset]


def find_x_propagation(
    module: ir.RtlModule, graph: NetGraph | None = None
) -> list[XPropFinding]:
    """Tainted output ports of *module*, one finding per port.

    Breadth-first over combinational drivers only: the taint of net *n*
    comes from any comb driver of *n* reading a tainted source. Clocked
    assigns to reset registers absorb the taint (see module doc);
    clocked assigns to other unreset registers add nothing new — those
    registers are roots already.
    """
    graph = graph or NetGraph(module)
    roots = x_sources(module)
    if not roots:
        return []
    # parent[id(net)] = the tainted source net that infected it,
    # letting us rebuild one witness path per tainted net.
    parent: dict[int, ir.Net | None] = {id(root): None for root in roots}
    root_of: dict[int, ir.Register] = {id(root): root for root in roots}
    changed = True
    while changed:
        changed = False
        for net in graph.nets():
            if id(net) in parent:
                continue
            for driver in graph.comb_drivers_of(net):
                source = next(
                    (s for s in driver.sources if id(s) in parent), None
                )
                if source is None:
                    continue
                parent[id(net)] = source
                root_of[id(net)] = root_of[id(source)]
                changed = True
                break

    findings: list[XPropFinding] = []
    for port in module.ports:
        if port.direction != "out" or id(port) not in parent:
            continue
        path: list[ir.Net] = []
        node: ir.Net | None = port
        while node is not None:
            path.append(node)
            node = parent[id(node)]
        path.reverse()
        findings.append(XPropFinding(port, root_of[id(port)], path))
    return findings
