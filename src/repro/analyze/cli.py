"""``python -m repro analyze`` — netlist analysis over a user script.

Executes an arbitrary Python script (typically an example platform)
with a process-wide synthesis sink installed, so every
:func:`~repro.synthesis.tool.synthesize_communication` run the script
performs is captured without the script changing a line. Each captured
run is then analyzed: driver/reader graph, combinational levelization
(``--schedule`` dumps it), FSM liveness, X-propagation, and the
design-level shared-state race check. Output is a human-readable
table, plain JSON, or SARIF for code-scanning upload; the exit status
is non-zero when any error-severity finding survives.
"""

from __future__ import annotations

import argparse
import runpy
import sys
import typing

from ..lint.engine import (
    LintConfig,
    LintRuleError,
    default_registry,
    validate_suppressions,
)
from ..lint.sarif import render_sarif
from ..synthesis.tool import set_synthesis_sink
from .passes import AnalysisReport, analyze_design

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.simulator import Simulator
    from ..synthesis.tool import SynthesisResult


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "script",
        help="Python script to execute under the analyzer "
             "(e.g. examples/pci_system.py)",
    )
    parser.add_argument(
        "script_args",
        nargs=argparse.REMAINDER,
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="treat warnings as errors",
    )
    parser.add_argument(
        "--suppress", action="append", default=[], metavar="RULE[@GLOB]",
        help="suppress a rule, optionally limited to paths matching the "
             "glob (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--format", choices=("table", "json", "sarif"), default="table",
        help="output format (default table)",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--schedule", action="store_true",
        help="dump the levelized evaluation schedule of every netlist",
    )
    parser.add_argument(
        "--quiet-script", action="store_true",
        help="suppress the analyzed script's stdout",
    )


def _split_suppressions(entries: typing.Iterable[str]) -> list[str]:
    result: list[str] = []
    for entry in entries:
        result.extend(part for part in entry.split(",") if part.strip())
    return result


def _run_script(script: str, script_args: list[str], quiet: bool) -> None:
    saved_argv = sys.argv
    sys.argv = [script, *script_args]
    saved_stdout = sys.stdout
    if quiet:
        import io

        sys.stdout = io.StringIO()
    try:
        runpy.run_path(script, run_name="__main__")
    finally:
        sys.stdout = saved_stdout
        sys.argv = saved_argv


def _render_table(reports: list[AnalysisReport], show_schedule: bool) -> str:
    lines: list[str] = []
    for report in reports:
        lines.append(report.summary_line())
        for analysis in report.modules:
            stats = analysis.stats()
            lines.append(
                f"  {analysis.module.name}: {stats['nets']} nets, "
                f"{stats['registers']} registers, {stats['fsms']} fsm(s), "
                f"{stats['comb_steps']} comb steps "
                f"(depth {stats['comb_depth']}, "
                f"{stats['comb_loops']} loop(s))"
            )
            if show_schedule and analysis.schedule is not None:
                for line in analysis.schedule.describe().splitlines():
                    lines.append(f"    {line}")
        if report.lint.diagnostics:
            for diagnostic in sorted(
                report.lint.diagnostics,
                key=lambda d: (-int(d.severity), d.rule_id, d.path),
            ):
                lines.append(diagnostic.render())
    return "\n".join(lines)


def run(args: argparse.Namespace) -> int:
    entries = _split_suppressions(args.suppress)
    try:
        unknown = validate_suppressions(entries)
        if unknown:
            known = sorted(r.rule_id for r in default_registry.rules())
            print(
                "error: unknown rule in --suppress: "
                + ", ".join(repr(u) for u in unknown)
                + f" (known ids: {', '.join(known)})"
            )
            return 2
        config = LintConfig(suppress=entries, strict=args.strict)
    except LintRuleError as exc:
        print(f"error: {exc}")
        return 2

    captured: "list[tuple[Simulator, SynthesisResult]]" = []
    previous = set_synthesis_sink(
        lambda sim, result: captured.append((sim, result))
    )
    try:
        _run_script(args.script, args.script_args, args.quiet_script)
    finally:
        set_synthesis_sink(previous)

    if not captured:
        print(
            f"analyze: {args.script} performed no communication synthesis "
            "(nothing to analyze)"
        )
        return 2

    reports = [
        analyze_design(result, sim, config, label=f"run{index}")
        for index, (sim, result) in enumerate(captured)
    ]

    if args.format == "sarif":
        text = render_sarif([r.lint for r in reports], "repro-analyze")
    elif args.format == "json":
        import json

        text = json.dumps([r.to_dict() for r in reports], indent=2)
    else:
        text = _render_table(reports, args.schedule)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        for report in reports:
            print(report.summary_line())
    else:
        print(text)
    return 1 if any(r.has_errors for r in reports) else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="netlist dataflow analysis over a script's synthesis "
                    "runs",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
