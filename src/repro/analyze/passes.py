"""Analysis pass driver and the :class:`AnalysisReport` artifact.

:func:`analyze_module` runs the per-netlist structural passes (graph,
levelization, FSM, X-propagation) over one
:class:`~repro.synthesis.ir.RtlModule`. :func:`analyze_design` runs
them over every netlist of a
:class:`~repro.synthesis.tool.SynthesisResult`, layers the IR lint
rules (including ``NET001``–``NET004`` / ``FSM001``–``FSM003``) and the
design-level ``RACE001`` race check on top, and returns one
:class:`AnalysisReport` — what the ``python -m repro analyze`` CLI
prints and the :class:`~repro.flow.design_flow.DesignFlow`
post-synthesis gate checks.
"""

from __future__ import annotations

import typing

from ..synthesis import ir
from .fsm import FsmFinding, analyze_fsms
from .graph import NetGraph
from .schedule import EvalSchedule, LevelizationResult, levelize
from .xprop import XPropFinding, find_x_propagation

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.simulator import Simulator
    from ..lint.diagnostics import LintReport
    from ..lint.engine import LintConfig
    from ..synthesis.tool import SynthesisResult


class ModuleAnalysis:
    """Structural analysis artifacts of one netlist."""

    def __init__(self, module: ir.RtlModule) -> None:
        self.module = module
        self.graph = NetGraph(module)
        self.levelization: LevelizationResult = levelize(module, self.graph)
        self.fsm_findings: list[FsmFinding] = analyze_fsms(module)
        self.xprop_findings: list[XPropFinding] = find_x_propagation(
            module, self.graph
        )

    @property
    def schedule(self) -> EvalSchedule | None:
        return self.levelization.schedule

    def stats(self) -> dict[str, int]:
        schedule = self.schedule
        return {
            "nets": len(self.module.nets),
            "registers": len(self.module.registers),
            "ports": len(self.module.ports),
            "fsms": len(self.module.fsms),
            "comb_steps": len(schedule.steps) if schedule else 0,
            "comb_depth": schedule.depth if schedule else 0,
            "comb_loops": len(self.levelization.loops),
        }

    def to_dict(self) -> dict:
        payload: dict = {"module": self.module.name, **self.stats()}
        payload["loops"] = [
            loop.describe() for loop in self.levelization.loops
        ]
        payload["fsm_findings"] = [
            {"kind": f.kind, "fsm": f.fsm.name, "subject": f.subject,
             "message": f.message}
            for f in self.fsm_findings
        ]
        payload["x_propagation"] = [
            {"port": f.port.name, "source": f.source.name,
             "path": f.describe_path()}
            for f in self.xprop_findings
        ]
        return payload


def analyze_module(module: ir.RtlModule) -> ModuleAnalysis:
    """Run the structural passes over one netlist."""
    return ModuleAnalysis(module)


class AnalysisReport:
    """Whole-design analysis outcome: artifacts plus lint findings."""

    def __init__(self, label: str = "analysis") -> None:
        self.label = label
        self.modules: list[ModuleAnalysis] = []
        from ..lint.diagnostics import LintReport as _LintReport

        self.lint: "LintReport" = _LintReport(label)

    @property
    def has_errors(self) -> bool:
        return self.lint.has_errors

    def schedules(self) -> dict[str, EvalSchedule]:
        """``{module name: schedule}`` for every levelizable netlist."""
        return {
            analysis.module.name: analysis.schedule
            for analysis in self.modules
            if analysis.schedule is not None
        }

    def module_named(self, name: str) -> ModuleAnalysis:
        for analysis in self.modules:
            if analysis.module.name == name:
                return analysis
        raise KeyError(name)

    def summary_line(self) -> str:
        counts = self.lint.counts()
        parts = [f"{n} {label}{'s' if n != 1 else ''}"
                 for label, n in (("error", counts["error"]),
                                  ("warning", counts["warning"]),
                                  ("info", counts["info"]))
                 if n]
        body = ", ".join(parts) if parts else "clean"
        if self.lint.suppressed:
            body += f" ({self.lint.suppressed} suppressed)"
        return (
            f"analyze {self.label}: {len(self.modules)} module(s), {body}"
        )

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "modules": [analysis.to_dict() for analysis in self.modules],
            "diagnostics": [d.to_dict() for d in self.lint.diagnostics],
            "suppressed": self.lint.suppressed,
            "rules_run": list(self.lint.rules_run),
        }


def analyze_design(
    result: "SynthesisResult",
    sim: "Simulator | None" = None,
    config: "LintConfig | None" = None,
    label: str = "design",
) -> AnalysisReport:
    """Analyze every netlist of a synthesis run.

    :param sim: the built simulator; when given, the design-level
        ``RACE001`` shared-state race check runs too.
    :param config: lint policy (suppressions / strict) applied to every
        finding, same semantics as ``python -m repro lint``.
    """
    # Importing the runner registers every rule module (NET/FSM/RACE
    # included) into the default registry.
    from ..lint import runner
    from ..lint.context import DesignContext
    from ..lint.engine import DESIGN, LintEngine, default_registry, RuleRegistry

    report = AnalysisReport(label)
    for group in result.groups:
        for module in (group.channel_ir, group.object_ir,
                       *group.dispatch_irs):
            report.modules.append(analyze_module(module))
            report.lint.extend(runner.lint_rtl_module(module, config))
    if sim is not None:
        race_registry = RuleRegistry()
        race_registry.register(type(default_registry.get("RACE001"))())
        engine = LintEngine(config, race_registry)
        report.lint.extend(
            engine.run(DesignContext(sim), DESIGN, f"{label} races")
        )
    return report
