"""Netlist dataflow analysis over the synthesis IR.

The synthesizer's output is only trustworthy if the structural netlist
is free of the classic hazards that break guarded-method semantics:
multiple drivers fighting over a wire, combinational cycles, FSM states
the protocol can never leave, X values leaking from unreset registers
to the module boundary, and shared object state mutated behind the
arbiter's back. This package builds a whole-design driver/reader graph
(:mod:`~repro.analyze.graph`), levelizes the combinational netlist into
a reusable :class:`~repro.analyze.schedule.EvalSchedule`
(:mod:`~repro.analyze.schedule` — the seed of the compiled fast-sim
backend), analyses FSM reachability (:mod:`~repro.analyze.fsm`), tracks
X-propagation (:mod:`~repro.analyze.xprop`) and cross-references shared
state writers (:mod:`~repro.analyze.races`). The findings surface as
lint rules ``NET001``–``NET004``, ``FSM001``–``FSM003`` and ``RACE001``
(:mod:`repro.lint`), and :mod:`~repro.analyze.passes` bundles everything
into one :class:`~repro.analyze.passes.AnalysisReport` for the
``python -m repro analyze`` CLI and the
:class:`~repro.flow.design_flow.DesignFlow` post-synthesis gate.
"""

from .graph import Driver, NetGraph
from .passes import AnalysisReport, ModuleAnalysis, analyze_design, analyze_module
from .schedule import (
    CombLoop,
    EvalSchedule,
    EvaluationError,
    LevelizationResult,
    ScheduleStep,
    evaluate_expr,
    levelize,
)

__all__ = [
    "AnalysisReport",
    "CombLoop",
    "Driver",
    "EvalSchedule",
    "EvaluationError",
    "LevelizationResult",
    "ModuleAnalysis",
    "NetGraph",
    "ScheduleStep",
    "analyze_design",
    "analyze_module",
    "evaluate_expr",
    "levelize",
]
