"""Whole-module driver/reader graph.

The graph answers, for every named net of an :class:`RtlModule`, two
questions every analysis pass needs: *what drives it* (and with which
kind of logic) and *who reads it*. Drivers are classified so the rules
can tell a legal single comb assign from a comb/clocked conflict:

* ``"assign"`` — a continuous combinational assignment;
* ``"clocked"`` — a registered assignment at the clock edge;
* ``"fsm-state"`` — an FSM's next-state logic owning its state register;
* ``"fsm-output"`` — an FSM's Moore output decoder (one driver per FSM
  per net, however many states set it).

Reader entries are the :class:`~repro.synthesis.ir.ExprSite` occurrences
whose expression references the net. All keying is by net *identity*
(``id``), matching the IR's aliasing semantics: two modules may reuse a
name, but a net object is one wire.
"""

from __future__ import annotations

import typing

from ..synthesis import ir


class Driver:
    """One structural driver of a net."""

    __slots__ = ("kind", "label", "target", "sources", "expr_width")

    def __init__(
        self,
        kind: str,
        label: str,
        target: ir.Net,
        sources: typing.Sequence[ir.Net],
        expr_width: int | None = None,
    ) -> None:
        self.kind = kind
        self.label = label
        self.target = target
        #: Nets this driver reads (deduplicated, identity-keyed order).
        self.sources = list(sources)
        #: Width of the driving expression (``None`` for FSM drivers,
        #: whose decode always matches the target by construction).
        self.expr_width = expr_width

    @property
    def is_combinational(self) -> bool:
        return self.kind in ("assign", "fsm-output")

    def __repr__(self) -> str:
        return f"Driver({self.kind} -> {self.target.name})"


def _unique_nets(nets: typing.Iterable[ir.Net]) -> list[ir.Net]:
    seen: dict[int, ir.Net] = {}
    for net in nets:
        seen.setdefault(id(net), net)
    return list(seen.values())


class NetGraph:
    """Driver/reader graph of one module.

    Build once per module, query many times — every NET/FSM analysis
    and the :class:`~repro.analyze.schedule.EvalSchedule` levelization
    run off the same instance.
    """

    def __init__(self, module: ir.RtlModule) -> None:
        self.module = module
        self._drivers: dict[int, list[Driver]] = {}
        self._readers: dict[int, list[ir.ExprSite]] = {}
        self._nets: dict[int, ir.Net] = {
            id(net): net for net in module.all_nets()
        }
        self._build()

    def _build(self) -> None:
        module = self.module
        for site in module.iter_expr_sites():
            for net in site.expr.referenced_nets():
                self._nets.setdefault(id(net), net)
                self._readers.setdefault(id(net), []).append(site)
        for assign in module.assigns:
            self._add(Driver(
                "assign", f"assign {assign.target.name}", assign.target,
                _unique_nets(assign.expr.referenced_nets()),
                assign.expr.width,
            ))
        for clocked in module.clocked_assigns:
            reads = list(clocked.expr.referenced_nets())
            if clocked.enable is not None:
                reads.extend(clocked.enable.referenced_nets())
            self._add(Driver(
                "clocked", f"clocked assign {clocked.target.name}",
                clocked.target, _unique_nets(reads), clocked.expr.width,
            ))
        for fsm in module.fsms:
            condition_reads: list[ir.Net] = []
            for transition in fsm.transitions:
                if transition.condition is not None:
                    condition_reads.extend(
                        transition.condition.referenced_nets()
                    )
            self._add(Driver(
                "fsm-state", f"{fsm.name} next-state logic",
                fsm.state_register, _unique_nets(condition_reads),
            ))
            moore_nets: dict[int, ir.Net] = {}
            for outputs in fsm.moore_outputs.values():
                for net, __ in outputs:
                    moore_nets.setdefault(id(net), net)
            for net in moore_nets.values():
                self._nets.setdefault(id(net), net)
                self._add(Driver(
                    "fsm-output", f"{fsm.name} output decoder", net,
                    [fsm.state_register],
                ))

    def _add(self, driver: Driver) -> None:
        self._nets.setdefault(id(driver.target), driver.target)
        self._drivers.setdefault(id(driver.target), []).append(driver)

    # -- queries ---------------------------------------------------------------

    def nets(self) -> list[ir.Net]:
        """Every net the graph knows about (module lists plus strays)."""
        return list(self._nets.values())

    def drivers_of(self, net: ir.Net) -> list[Driver]:
        return self._drivers.get(id(net), [])

    def readers_of(self, net: ir.Net) -> list[ir.ExprSite]:
        return self._readers.get(id(net), [])

    def comb_drivers_of(self, net: ir.Net) -> list[Driver]:
        return [d for d in self.drivers_of(net) if d.is_combinational]

    def is_comb_driven(self, net: ir.Net) -> bool:
        return bool(self.comb_drivers_of(net))

    def comb_dependencies(self) -> dict[int, set[int]]:
        """``id(target) -> {id(source), ...}`` over combinational drivers.

        Only sources that are themselves combinationally driven appear —
        registers and input ports are level-0 boundary values, not graph
        edges. This is exactly the dependency relation the levelizer
        topologically sorts.
        """
        edges: dict[int, set[int]] = {}
        for net_id, drivers in self._drivers.items():
            for driver in drivers:
                if not driver.is_combinational:
                    continue
                deps = edges.setdefault(net_id, set())
                for source in driver.sources:
                    if self.is_comb_driven(source):
                        deps.add(id(source))
        return edges

    def net_by_id(self, net_id: int) -> ir.Net:
        return self._nets[net_id]
