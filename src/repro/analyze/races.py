"""Shared-state race analysis (``RACE001``).

The OSSS safety argument serializes every shared-object mutation
through the arbiter: clients ``yield from handle.method(...)``, the
server executes one body at a time. Nothing stops a process from
reaching around that — ``self.channel.state.count += 1`` or
``self.channel.state.queue.append(x)`` mutate the shared instance
directly, racing both the arbiter's method bodies and any other process
doing the same. This pass cross-references, per connection group and
state attribute, the *serialized* writers (guarded-method bodies that
are actually invoked through a channel call somewhere in the design)
with the *out-of-band* writers (direct AST mutations of the state
object resolved by identity), and reports every attribute with more
than one writing party of which at least one is out-of-band.

When the raced attribute holds a live :class:`~repro.hdl.signal.Signal`
the finding carries its name, so the dynamic race sanitizer
(:class:`~repro.instrument.sanitizer.RaceSanitizer`) can confirm or
refute the static report from ``signal.commit`` traffic at sim time.
"""

from __future__ import annotations

import ast
import typing

from ..hdl.signal import Signal
from ..lint.astutils import (
    MUTATING_METHODS,
    attr_chain,
    class_method_asts,
    first_arg_name,
    self_attr_writes,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..lint.context import DesignContext, ProcessInfo
    from ..osss.global_object import GlobalObject


class OutOfBandWrite:
    """One direct state mutation found in a process body."""

    __slots__ = ("process_name", "attr", "detail")

    def __init__(self, process_name: str, attr: str, detail: str) -> None:
        self.process_name = process_name
        self.attr = attr
        self.detail = detail

    def __repr__(self) -> str:
        return f"OutOfBandWrite({self.process_name}: {self.detail})"


class RaceFinding:
    """One raced shared-state attribute."""

    __slots__ = (
        "group_path", "attr", "out_of_band", "serialized_methods",
        "signal_name",
    )

    def __init__(
        self,
        group_path: str,
        attr: str,
        out_of_band: typing.Sequence[OutOfBandWrite],
        serialized_methods: typing.Sequence[str],
        signal_name: str | None,
    ) -> None:
        self.group_path = group_path
        self.attr = attr
        self.out_of_band = list(out_of_band)
        self.serialized_methods = sorted(serialized_methods)
        #: Name of the raced signal, when the attribute holds one.
        self.signal_name = signal_name

    def parties(self) -> list[str]:
        names = sorted({w.process_name for w in self.out_of_band})
        if self.serialized_methods:
            names.append(
                "the arbiter (via "
                + ", ".join(self.serialized_methods) + ")"
            )
        return names

    def __repr__(self) -> str:
        return f"RaceFinding({self.group_path}.{self.attr})"


def _resolve_positions(
    instance: object, chain: typing.Sequence[str]
) -> list[object]:
    """Objects at each chain position: result[k] is ``chain[:k+1]``
    resolved (``result[0]`` = the self instance). Stops at the first
    unresolvable step."""
    positions: list[object] = [instance]
    target = instance
    for name in chain[1:]:
        try:
            target = getattr(target, name)
        except Exception:
            break
        positions.append(target)
    return positions


class _GroupFacts:
    """Identity map of one connection group's shared state."""

    def __init__(self, root: "GlobalObject") -> None:
        self.root = root
        self.path = root.path
        self.space = root.space
        self.state = self.space.state
        cls = type(self.state)
        self.method_writes: dict[str, set[str]] = {
            name: self_attr_writes(node)
            for name, node in class_method_asts(cls).items()
            if name != "__init__"
        }


def _scan_out_of_band(
    info: "ProcessInfo", states: dict[int, _GroupFacts]
) -> typing.Iterator[tuple[_GroupFacts, OutOfBandWrite]]:
    """Direct state mutations in one process body."""
    if not info.analyzable:
        return
    node = info.node
    instance = info.instance
    self_name = first_arg_name(node)
    if self_name is None:
        return
    process_name = info.process.name

    def state_hit(
        chain: typing.Sequence[str],
    ) -> tuple[_GroupFacts, int] | None:
        if not chain or chain[0] != self_name:
            return None
        positions = _resolve_positions(instance, chain)
        for index, obj in enumerate(positions):
            facts = states.get(id(obj))
            if facts is not None:
                return facts, index
        return None

    for sub in ast.walk(node):
        targets: list[ast.AST] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        for target in targets:
            for leaf in ast.walk(target):
                if not isinstance(leaf, ast.Attribute):
                    continue
                chain = attr_chain(leaf)
                if chain is None:
                    continue
                hit = state_hit(chain[:-1])
                if hit is None:
                    continue
                facts, index = hit
                if index + 1 >= len(chain):
                    continue
                attr = chain[index + 1]
                yield facts, OutOfBandWrite(
                    process_name, attr,
                    f"assignment to {'.'.join(chain[1:])}",
                )
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            chain = attr_chain(sub.func.value)
            if chain is None:
                continue
            hit = state_hit(chain)
            if hit is None:
                continue
            facts, index = hit
            call_name = sub.func.attr
            receiver = ".".join(chain[1:]) or self_name
            if index == len(chain) - 1:
                # Method call directly on the state object, bypassing
                # the channel: attribute effects come from the body.
                written = facts.method_writes.get(call_name)
                if written is None and call_name not in MUTATING_METHODS:
                    continue
                for attr in sorted(written or {f"<{call_name}>"}):
                    yield facts, OutOfBandWrite(
                        process_name, attr,
                        f"direct call {receiver}.{call_name}()",
                    )
            elif call_name in MUTATING_METHODS and index + 1 < len(chain):
                yield facts, OutOfBandWrite(
                    process_name, chain[index + 1],
                    f"mutating call {receiver}.{call_name}()",
                )


def analyze_races(design: "DesignContext") -> list[RaceFinding]:
    """All shared-state race findings of *design*, sorted by path."""
    groups = [
        _GroupFacts(handles[0]._root())
        for handles in design.connection_groups()
    ]
    states = {id(facts.state): facts for facts in groups}

    # Which method bodies the arbiter actually runs for each group.
    serialized: dict[int, set[str]] = {id(f.state): set() for f in groups}
    for info in design.processes:
        for call in info.channel_calls:
            facts = states.get(id(call.handle._root().space.state))
            if facts is None:
                continue
            writes = facts.method_writes.get(call.method)
            if writes:
                serialized[id(facts.state)].add(call.method)

    out_of_band: dict[tuple[int, str], list[OutOfBandWrite]] = {}
    for info in design.processes:
        for facts, write in _scan_out_of_band(info, states):
            out_of_band.setdefault(
                (id(facts.state), write.attr), []
            ).append(write)

    findings: list[RaceFinding] = []
    for (state_id, attr), writes in out_of_band.items():
        facts = states[state_id]
        methods = {
            method for method in serialized[state_id]
            if attr in facts.method_writes.get(method, ())
        }
        parties = len({w.process_name for w in writes}) + (1 if methods else 0)
        if parties < 2:
            continue
        value = getattr(facts.state, attr, None)
        signal_name = value.name if isinstance(value, Signal) else None
        findings.append(RaceFinding(
            facts.path, attr, writes, sorted(methods), signal_name,
        ))
    findings.sort(key=lambda f: (f.group_path, f.attr))
    return findings
