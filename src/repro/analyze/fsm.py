"""FSM reachability, deadlock and guard analysis.

The synthesized arbiter/server FSMs must keep the protocol live: every
reachable state needs a way out, every transition guard must be
satisfiable, and no reachable cycle may spin without doing protocol
work. These checks back the ``FSM001``–``FSM003`` lint rules; the
functions return plain finding objects so both the rules and the
``analyze`` CLI can consume them.
"""

from __future__ import annotations

import typing

from ..synthesis import ir


class FsmFinding:
    """One FSM analysis result."""

    __slots__ = ("kind", "fsm", "subject", "message")

    def __init__(
        self, kind: str, fsm: ir.Fsm, subject: str, message: str
    ) -> None:
        self.kind = kind  # "terminal" | "false-guard" | "livelock"
        self.fsm = fsm
        self.subject = subject
        self.message = message

    def __repr__(self) -> str:
        return f"FsmFinding({self.kind}: {self.fsm.name}.{self.subject})"


def const_fold(expr: ir.Expr) -> int | None:
    """The expression's constant value, or ``None`` if it reads a net."""
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.Ref):
        return None
    if isinstance(expr, ir.UnOp):
        operand = const_fold(expr.operand)
        if operand is None:
            return None
        if expr.op == "~":
            return (~operand) & ((1 << expr.width) - 1)
        if expr.op == "|":
            return 1 if operand != 0 else 0
        return 1 if operand == (1 << expr.operand.width) - 1 else 0
    if isinstance(expr, ir.BinOp):
        left = const_fold(expr.left)
        right = const_fold(expr.right)
        # Short-circuit annihilators: 0 & x and 1-bit 1 | x fold even
        # when the other side is unknown.
        if expr.op == "&" and (left == 0 or right == 0):
            return 0
        if expr.op == "|" and expr.width == 1 and 1 in (left, right):
            return 1
        if left is None or right is None:
            return None
        mask = (1 << expr.width) - 1
        if expr.op == "&":
            return left & right
        if expr.op == "|":
            return left | right
        if expr.op == "^":
            return left ^ right
        if expr.op == "+":
            return (left + right) & mask
        if expr.op == "-":
            return (left - right) & mask
        if expr.op == "==":
            return 1 if left == right else 0
        if expr.op == "!=":
            return 1 if left != right else 0
        return 1 if left < right else 0
    if isinstance(expr, ir.Mux):
        select = const_fold(expr.select)
        if select is None:
            true_value = const_fold(expr.if_true)
            false_value = const_fold(expr.if_false)
            if true_value is not None and true_value == false_value:
                return true_value  # both arms agree: select is moot
            return None
        return const_fold(expr.if_true if select else expr.if_false)
    if isinstance(expr, ir.BitSelect):
        operand = const_fold(expr.operand)
        if operand is None:
            return None
        return (operand >> expr.index) & 1
    if isinstance(expr, ir.Concat):
        value = 0
        for part in expr.parts:
            part_value = const_fold(part)
            if part_value is None:
                return None
            value = (value << part.width) | part_value
        return value
    return None


def _live_transitions(fsm: ir.Fsm) -> list[ir.FsmTransition]:
    """Transitions whose guard is not statically false."""
    return [
        t for t in fsm.transitions
        if t.condition is None or const_fold(t.condition) != 0
    ]


def reachable_states(fsm: ir.Fsm) -> set[str]:
    """States reachable from reset over statically-live transitions."""
    successors: dict[str, set[str]] = {s: set() for s in fsm.states}
    for transition in _live_transitions(fsm):
        successors[transition.source].add(transition.target)
    reachable = {fsm.reset_state}
    frontier = [fsm.reset_state]
    while frontier:
        state = frontier.pop()
        for nxt in successors[state]:
            if nxt not in reachable:
                reachable.add(nxt)
                frontier.append(nxt)
    return reachable


def find_terminal_states(fsm: ir.Fsm) -> typing.Iterator[FsmFinding]:
    """Reachable states with no live way out (protocol deadlock)."""
    reachable = reachable_states(fsm)
    live = _live_transitions(fsm)
    for state in fsm.states:
        if state not in reachable:
            continue  # IR001's concern
        arcs = [t for t in live if t.source == state]
        if arcs:
            continue
        dead = [t for t in fsm.transitions if t.source == state]
        detail = (
            f" ({len(dead)} transition(s) with statically-false guards)"
            if dead else ""
        )
        yield FsmFinding(
            "terminal", fsm, state,
            f"reachable state {state!r} has no outgoing transition"
            f"{detail}; the FSM deadlocks there",
        )


def find_false_guards(fsm: ir.Fsm) -> typing.Iterator[FsmFinding]:
    """Transitions whose condition constant-folds to 0."""
    for transition in fsm.transitions:
        if transition.condition is None:
            continue
        if const_fold(transition.condition) == 0:
            yield FsmFinding(
                "false-guard", fsm,
                f"{transition.source}->{transition.target}",
                f"transition {transition.source!r} -> "
                f"{transition.target!r} guard is statically false; the "
                "arc can never be taken",
            )


def _strongly_connected(
    states: typing.Sequence[str], successors: dict[str, set[str]]
) -> list[list[str]]:
    """Tarjan's SCCs, iterative, in *states* order."""
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(successors.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors_iter = work[-1]
            advanced = False
            for nxt in successors_iter:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(successors.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    for state in states:
        if state not in index:
            strongconnect(state)
    return components


def find_livelock_cycles(fsm: ir.Fsm) -> typing.Iterator[FsmFinding]:
    """Reachable cycles the FSM can never leave or do work in.

    A component is flagged when every internal arc is unconditional
    (the machine *must* keep cycling), no live arc exits the component,
    and no state in it produces a Moore output — the FSM spins forever
    without granting anything.
    """
    reachable = reachable_states(fsm)
    live = _live_transitions(fsm)
    successors: dict[str, set[str]] = {s: set() for s in fsm.states}
    for transition in live:
        successors[transition.source].add(transition.target)
    for component in _strongly_connected(fsm.states, successors):
        members = set(component)
        internal = [
            t for t in live
            if t.source in members and t.target in members
        ]
        if not internal:
            continue  # trivial SCC with no self-loop: not a cycle
        if len(members) == 1 and len(fsm.states) == 1:
            continue  # a one-state FSM necessarily self-loops
        if not members & reachable:
            continue  # IR001 reports unreachable states
        if any(t.source in members and t.target not in members
               for t in live):
            continue  # there is a way out
        if any(t.condition is not None for t in internal):
            continue  # a conditional arc means the FSM can hold/choose
        if any(fsm.moore_outputs.get(state) for state in members):
            continue  # the cycle does protocol work
        cycle = " -> ".join(sorted(members))
        yield FsmFinding(
            "livelock", fsm, sorted(members)[0],
            f"states {{{cycle}}} form an unconditional cycle with no "
            "exit and no outputs; the FSM spins without doing work",
        )


def analyze_fsms(module: ir.RtlModule) -> list[FsmFinding]:
    """All FSM findings of *module*, in rule order."""
    findings: list[FsmFinding] = []
    for fsm in module.fsms:
        findings.extend(find_terminal_states(fsm))
        findings.extend(find_false_guards(fsm))
        findings.extend(find_livelock_cycles(fsm))
    return findings
