"""Scoreboards: expected-vs-observed checking during simulation."""

from __future__ import annotations

import typing
from collections import deque

from ..errors import ConsistencyError
from ..tlm.memory import Memory


class Scoreboard:
    """A FIFO scoreboard: expectations are matched in order.

    :param name: label used in error messages.
    :param strict: raise on the first mismatch (otherwise collect).
    :param sim: optional simulator; mismatches are then also reported
        through :meth:`~repro.kernel.simulator.Simulator.report_detection`
        so fault-injection campaigns can classify them as *detected*.
    """

    def __init__(
        self, name: str = "scoreboard", strict: bool = True, sim=None
    ) -> None:
        self.name = name
        self.strict = strict
        self.sim = sim
        self._expected: deque = deque()
        self.matched = 0
        self.mismatches: list[str] = []

    def expect(self, item: object) -> None:
        self._expected.append(item)

    def expect_all(self, items: typing.Iterable) -> None:
        for item in items:
            self.expect(item)

    def observe(self, item: object) -> None:
        if not self._expected:
            self._fail(f"{self.name}: unexpected item {item!r}")
            return
        expected = self._expected.popleft()
        if expected != item:
            self._fail(f"{self.name}: expected {expected!r}, observed {item!r}")
            return
        self.matched += 1

    def _fail(self, message: str) -> None:
        self.mismatches.append(message)
        if self.sim is not None:
            self.sim.report_detection(self.name, message)
        if self.strict:
            raise ConsistencyError(message)

    @property
    def outstanding(self) -> int:
        return len(self._expected)

    @property
    def clean(self) -> bool:
        return not self.mismatches and not self._expected

    def require_clean(self) -> None:
        if self.mismatches:
            raise ConsistencyError(
                f"{self.name}: {len(self.mismatches)} mismatch(es): "
                f"{self.mismatches[0]}"
            )
        if self._expected:
            raise ConsistencyError(
                f"{self.name}: {len(self._expected)} expectation(s) never observed"
            )


def check_memory_image(
    memory: Memory,
    expected: typing.Sequence[int],
    base: int = 0,
    name: str = "memory",
) -> None:
    """Compare a memory window against a golden word image."""
    actual = memory.dump(base, len(expected))
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            raise ConsistencyError(
                f"{name}[{base + 4 * index:#x}]: expected {want:#010x}, "
                f"found {got:#010x}"
            )
