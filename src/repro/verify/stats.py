"""Platform utilization and latency reporting.

Aggregates what the monitors and channels already count into one
printable report: bus utilization, interface throughput, per-application
latency percentiles. Used by the benches and handy when tuning the
platform parameters (wait states, arbitration, burst sizes).
"""

from __future__ import annotations

import typing


def percentile(values: typing.Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile (0.0..1.0) of *values*."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return float(ordered[rank])


class LatencySummary:
    """Distribution summary of a latency sample set (femtoseconds)."""

    def __init__(self, samples: typing.Sequence[int]) -> None:
        self.count = len(samples)
        self.mean = sum(samples) / len(samples) if samples else 0.0
        self.minimum = min(samples) if samples else 0
        self.maximum = max(samples) if samples else 0
        self.p50 = percentile(samples, 0.50)
        self.p95 = percentile(samples, 0.95)

    def row(self, unit: int = 1) -> list:
        return [
            self.count,
            f"{self.mean / unit:.1f}",
            self.minimum // unit,
            int(self.p50) // unit,
            int(self.p95) // unit,
            self.maximum // unit,
        ]


class PlatformStats:
    """Collected statistics of one platform run."""

    def __init__(self, bundle: typing.Any, time_unit: int = 1_000_000) -> None:
        """:param bundle: a :class:`~repro.flow.platforms.PlatformBundle`
        after its run completed.
        :param time_unit: fs per reported unit (default: ns)."""
        self.time_unit = time_unit
        self.app_latencies = {
            app.name: LatencySummary([r.latency for r in app.records])
            for app in bundle.handle.applications
        }
        monitor = getattr(bundle, "monitor", None)
        if monitor is not None and getattr(monitor, "cycles_observed", 0):
            self.bus_utilization = monitor.busy_cycles / monitor.cycles_observed
            self.bus_cycles = monitor.cycles_observed
        else:
            self.bus_utilization = 0.0
            self.bus_cycles = 0
        interface = getattr(bundle, "interface", None)
        self.commands_serviced = getattr(interface, "commands_serviced", 0)
        synthesis = getattr(bundle, "synthesis", None)
        if synthesis is not None and synthesis.groups:
            channel = synthesis.groups[0].channel
            total = channel.idle_cycles + channel.busy_cycles
            self.channel_utilization = (
                channel.busy_cycles / total if total else 0.0
            )
            self.channel_calls = channel.calls_serviced
        else:
            self.channel_utilization = None
            self.channel_calls = None

    def render(self) -> str:
        lines = ["platform statistics", "-" * 48]
        lines.append(f"bus utilization:      {self.bus_utilization:.1%} "
                     f"({self.bus_cycles} cycles observed)")
        lines.append(f"commands serviced:    {self.commands_serviced}")
        if self.channel_utilization is not None:
            lines.append(
                f"channel utilization:  {self.channel_utilization:.1%} "
                f"({self.channel_calls} calls)"
            )
        lines.append("")
        lines.append("per-application latency (ns): "
                     "count / mean / min / p50 / p95 / max")
        for name, summary in sorted(self.app_latencies.items()):
            cells = summary.row(self.time_unit)
            lines.append(f"  {name}: " + " / ".join(str(c) for c in cells))
        return "\n".join(lines)
