"""Pre/post-synthesis consistency checking (the paper's step 3).

The paper validates its flow by simulating the executable specification,
synthesizing, re-simulating, and checking *"behavior consistency with
the original model, at least with respect to the test set adopted"*.
Consistency here means equality of observable traces: the applications'
transaction records and (optionally) the bus monitor's reconstructed
transaction stream.
"""

from __future__ import annotations

import typing

from ..errors import ConsistencyError


class ConsistencyReport:
    """Outcome of comparing two observable traces."""

    def __init__(self, label_a: str, label_b: str) -> None:
        self.label_a = label_a
        self.label_b = label_b
        self.mismatches: list[str] = []
        self.compared_streams = 0
        self.compared_items = 0

    @property
    def consistent(self) -> bool:
        return not self.mismatches

    def add_mismatch(self, message: str) -> None:
        self.mismatches.append(message)

    def require_consistent(self) -> None:
        """Raise :class:`ConsistencyError` if any mismatch was found."""
        if self.mismatches:
            raise ConsistencyError(
                f"{self.label_a} vs {self.label_b}: "
                + "; ".join(self.mismatches[:5])
                + (f" (+{len(self.mismatches) - 5} more)"
                   if len(self.mismatches) > 5 else "")
            )

    def summary(self) -> str:
        status = "CONSISTENT" if self.consistent else "INCONSISTENT"
        lines = [
            f"{self.label_a} vs {self.label_b}: {status} "
            f"({self.compared_streams} streams, {self.compared_items} items)"
        ]
        lines.extend(f"  mismatch: {m}" for m in self.mismatches)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "consistent": self.consistent,
            "compared_streams": self.compared_streams,
            "compared_items": self.compared_items,
            "mismatches": list(self.mismatches),
        }


def compare_streams(
    report: ConsistencyReport,
    name: str,
    stream_a: typing.Sequence,
    stream_b: typing.Sequence,
) -> None:
    """Compare two equally-ordered observable streams item by item."""
    report.compared_streams += 1
    report.compared_items += max(len(stream_a), len(stream_b))
    if len(stream_a) != len(stream_b):
        report.add_mismatch(
            f"{name}: {len(stream_a)} items vs {len(stream_b)}"
        )
        return
    for index, (item_a, item_b) in enumerate(zip(stream_a, stream_b)):
        if item_a != item_b:
            report.add_mismatch(
                f"{name}[{index}]: {item_a!r} != {item_b!r}"
            )
            return


def check_traces(
    traces_a: typing.Mapping[str, typing.Sequence],
    traces_b: typing.Mapping[str, typing.Sequence],
    label_a: str = "pre-synthesis",
    label_b: str = "post-synthesis",
) -> ConsistencyReport:
    """Compare keyed trace dictionaries (e.g. per-application records)."""
    report = ConsistencyReport(label_a, label_b)
    for key in sorted(set(traces_a) | set(traces_b)):
        if key not in traces_a or key not in traces_b:
            report.add_mismatch(f"stream {key!r} missing from one side")
            continue
        compare_streams(report, key, traces_a[key], traces_b[key])
    return report


def check_bus_transactions(
    signatures_a: typing.Sequence[tuple],
    signatures_b: typing.Sequence[tuple],
    label_a: str = "pre-synthesis",
    label_b: str = "post-synthesis",
    order_insensitive: bool = False,
) -> ConsistencyReport:
    """Compare two monitor transaction-signature streams.

    :param order_insensitive: with several concurrent initiators the
        global interleaving may legally differ; compare as multisets.
    """
    report = ConsistencyReport(label_a, label_b)
    if order_insensitive:
        report.compared_streams += 1
        report.compared_items += max(len(signatures_a), len(signatures_b))
        if sorted(signatures_a) != sorted(signatures_b):
            report.add_mismatch(
                "bus transaction multisets differ "
                f"({len(signatures_a)} vs {len(signatures_b)})"
            )
    else:
        compare_streams(report, "bus", signatures_a, signatures_b)
    return report
