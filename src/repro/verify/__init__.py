"""Verification substrate: consistency checking, scoreboards, coverage,
runtime invariant checkers."""

from .checkers import InvariantChecker, OneHotChecker
from .consistency import (
    ConsistencyReport,
    check_bus_transactions,
    check_traces,
    compare_streams,
)
from .coverage import CoverageCollector, CoverPoint, ProbeCoverage
from .scoreboard import Scoreboard, check_memory_image
from .stats import LatencySummary, PlatformStats, percentile

__all__ = [
    "LatencySummary",
    "PlatformStats",
    "percentile",
    "ConsistencyReport",
    "CoverPoint",
    "CoverageCollector",
    "InvariantChecker",
    "OneHotChecker",
    "ProbeCoverage",
    "Scoreboard",
    "check_bus_transactions",
    "check_memory_image",
    "check_traces",
    "compare_streams",
]
