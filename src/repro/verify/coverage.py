"""Functional coverage collection.

Small covergroup-style bookkeeping: named coverpoints with explicit
bins, sampled by the testbench, reported as hit percentages. Used by the
integration tests to demonstrate that the adopted test set exercises the
interesting protocol corners (burst lengths, terminations, guard
blocking).
"""

from __future__ import annotations

import typing

from ..errors import CoverageError


class CoverPoint:
    """One named coverage dimension with explicit bins."""

    def __init__(
        self,
        name: str,
        bins: typing.Sequence[object],
        at_least: int = 1,
    ) -> None:
        if not bins:
            raise CoverageError(f"coverpoint {name!r} needs at least one bin")
        if at_least < 1:
            raise CoverageError(f"coverpoint {name!r}: at_least must be >= 1")
        self.name = name
        self.at_least = at_least
        self.hits: dict[object, int] = {bin_: 0 for bin_ in bins}
        self.others = 0

    def sample(self, value: object) -> None:
        if value in self.hits:
            self.hits[value] += 1
        else:
            self.others += 1

    @property
    def covered_bins(self) -> int:
        return sum(1 for count in self.hits.values() if count >= self.at_least)

    @property
    def coverage(self) -> float:
        return self.covered_bins / len(self.hits)

    def holes(self) -> list[object]:
        return [bin_ for bin_, count in self.hits.items() if count < self.at_least]


class CoverageCollector:
    """A set of coverpoints with an aggregate goal."""

    def __init__(self, name: str = "coverage") -> None:
        self.name = name
        self._points: dict[str, CoverPoint] = {}

    def add_point(
        self, name: str, bins: typing.Sequence[object], at_least: int = 1
    ) -> CoverPoint:
        if name in self._points:
            raise CoverageError(f"duplicate coverpoint {name!r}")
        point = CoverPoint(name, bins, at_least)
        self._points[name] = point
        return point

    def sample(self, name: str, value: object) -> None:
        try:
            self._points[name].sample(value)
        except KeyError:
            raise CoverageError(f"unknown coverpoint {name!r}") from None

    def point(self, name: str) -> CoverPoint:
        try:
            return self._points[name]
        except KeyError:
            raise CoverageError(f"unknown coverpoint {name!r}") from None

    @property
    def coverage(self) -> float:
        if not self._points:
            return 1.0
        return sum(p.coverage for p in self._points.values()) / len(self._points)

    def require(self, goal: float = 1.0) -> None:
        """Raise :class:`CoverageError` if aggregate coverage < *goal*."""
        if self.coverage + 1e-12 < goal:
            holes = {
                name: point.holes()
                for name, point in self._points.items()
                if point.holes()
            }
            raise CoverageError(
                f"{self.name}: coverage {self.coverage:.1%} below goal "
                f"{goal:.1%}; holes: {holes}"
            )

    def report(self) -> str:
        lines = [f"coverage report: {self.name} ({self.coverage:.1%})"]
        for name, point in sorted(self._points.items()):
            lines.append(
                f"  {name}: {point.covered_bins}/{len(point.hits)} bins "
                f"({point.coverage:.1%})"
                + (f", holes: {point.holes()}" if point.holes() else "")
            )
        return "\n".join(lines)


class ProbeCoverage:
    """Samples coverpoints straight off the probe bus.

    Instead of sprinkling ``collector.sample(...)`` calls through the
    testbench, bind a coverpoint to a probe kind with an extractor that
    maps the probe payload to a bin value (return ``None`` to skip the
    emission)::

        cov = CoverageCollector("bus")
        cov.add_point("burst", [1, 2, 4])
        ProbeCoverage(cov).cover(
            TRANSACTION_END, "burst",
            lambda time, source, txn: txn.word_count,
        ).attach(sim.probes)
    """

    def __init__(self, collector: CoverageCollector) -> None:
        self.collector = collector
        self._bindings: list[tuple[str, typing.Callable]] = []
        self._bus = None

    def cover(
        self,
        kind: str,
        point: str,
        extractor: typing.Callable[..., object],
    ) -> "ProbeCoverage":
        if self._bus is not None:
            raise CoverageError("add bindings before attach()")
        self.collector.point(point)  # fail early on unknown points

        def sampler(*args, _point=point, _extract=extractor):
            value = _extract(*args)
            if value is not None:
                self.collector.sample(_point, value)

        self._bindings.append((kind, sampler))
        return self

    def attach(self, bus) -> "ProbeCoverage":
        for kind, sampler in self._bindings:
            bus.subscribe(kind, sampler)
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind, sampler in self._bindings:
            self._bus.unsubscribe(kind, sampler)
        self._bus = None
