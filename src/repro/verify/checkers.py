"""Runtime invariant checkers attached to signals."""

from __future__ import annotations

import typing

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal


class InvariantChecker(Module):
    """Applies a predicate to a signal's value on every change.

    :param predicate: called with the new value; falsy means violation.
    :param strict: raise immediately (otherwise collect in
        :attr:`violations`).
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        signal: Signal,
        predicate: typing.Callable[[object], bool],
        message: str = "invariant violated",
        strict: bool = True,
    ) -> None:
        super().__init__(parent, name)
        self.watched = signal
        self.predicate = predicate
        self.message = message
        self.strict = strict
        self.violations: list[str] = []
        self.checks = 0
        self.method(self._check, sensitivity=[signal], initialize=False)

    def _check(self) -> None:
        self.checks += 1
        value = self.watched.read()
        if self.predicate(value):
            return
        text = f"{self.sim.time_str()}: {self.message} (value={value!r})"
        self.violations.append(text)
        self.sim.report_detection(self.path, text)
        if self.strict:
            raise ProtocolError(f"{self.path}: {text}")


class OneHotChecker(Module):
    """Checks that at most one of a set of 1-bit signals is asserted.

    Used on the synthesized channel's grant lines and the PCI GNT# pins
    (active level configurable).
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        signals: typing.Sequence[Signal],
        active_low: bool = False,
        strict: bool = True,
    ) -> None:
        super().__init__(parent, name)
        self.watched = list(signals)
        self.active_low = active_low
        self.strict = strict
        self.violations: list[str] = []
        self.checks = 0
        self.method(
            self._check, sensitivity=list(self.watched), initialize=False
        )

    def _asserted(self, value: object) -> bool:
        if isinstance(value, LogicVector):
            level = value.to_int_default(1 if self.active_low else 0)
        else:
            level = int(bool(value))
        return level == 0 if self.active_low else level == 1

    def _check(self) -> None:
        self.checks += 1
        asserted = [
            signal.name
            for signal in self.watched
            if self._asserted(signal.read())
        ]
        if len(asserted) <= 1:
            return
        text = f"{self.sim.time_str()}: multiple asserted: {asserted}"
        self.violations.append(text)
        self.sim.report_detection(self.path, text)
        if self.strict:
            raise ProtocolError(f"{self.path}: {text}")
