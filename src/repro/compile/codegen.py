"""Lowering synthesized netlists to straight-line Python.

This is the compiled counterpart of the interpreted execution path:
where :class:`~repro.analyze.schedule.EvalSchedule` walks the IR
expression trees node by node, :func:`compile_module` emits the same
levelized evaluation order as *generated Python source* — one flat
function per netlist, no recursion, no event queue, no delta churn.

The generated artifact has two entry points:

``_comb(env)``
    One settled delta cycle over the full combinational netlist, with
    exactly the semantics of :meth:`EvalSchedule.evaluate` (boundary
    values masked to net widths, wrap-to-width arithmetic, Moore
    defaults). The equivalence tests diff the two paths over random
    vectors; they must be interchangeable.

``_cycle(regs, ins, outs)``
    One clock edge in three phases:

    * **phase A** evaluates the pre-edge combinational slice needed by
      the sequential logic (FSM transition conditions, clocked-assign
      data/enable expressions, observed control flags);
    * **phase B** computes every register's next value from the
      pre-edge picture, then commits them together — the two-phase
      semantics a clocked process gets from the kernel's staged signal
      writes, without the kernel;
    * **phase C** re-evaluates the output-port cone from the *new*
      register values, so outputs carry the same values the interpreted
      channel commits at the same edge.

Netlist cones the runtime substitutes behaviourally (for the channel:
the arbiter-internal state, whose executable policy object is shared
with the interpreted backend) are cut out by naming their result nets
``external`` — they become plain inputs — and their private registers
via ``skip_register_prefixes``.
"""

from __future__ import annotations

import keyword
import typing

from ..analyze.schedule import EvalSchedule, EvaluationError, levelize
from ..errors import ReproError
from ..synthesis import ir


class CodegenError(ReproError):
    """The netlist cannot be lowered to code."""


def _mask(width: int) -> int:
    return (1 << width) - 1


def _local_names(nets: typing.Sequence[ir.Net]) -> dict[int, str]:
    """One safe Python identifier per net.

    A net name is used verbatim when it is a valid public identifier;
    anything else (keywords, collisions, leading underscores — which
    would collide with the generated ``_n_*`` next-value locals) is
    renamed positionally.
    """
    names: dict[int, str] = {}
    used: set[str] = set()
    for index, net in enumerate(nets):
        name = net.name
        if (
            not name.isidentifier()
            or keyword.iskeyword(name)
            or name.startswith("_")
            or name in used
        ):
            name = f"_v{index}"
        used.add(name)
        names[id(net)] = name
    return names


class _Emitter:
    """IR expression -> Python source, wrap-to-width everywhere."""

    def __init__(self, names: dict[int, str]) -> None:
        self._names = names

    def local(self, net: ir.Net) -> str:
        try:
            return self._names[id(net)]
        except KeyError:
            raise CodegenError(
                f"net {net.name!r} is not bound to a local"
            ) from None

    def emit(self, expr: ir.Expr) -> str:
        if isinstance(expr, ir.Const):
            return str(expr.value)
        if isinstance(expr, ir.Ref):
            return self.local(expr.net)
        if isinstance(expr, ir.UnOp):
            operand = self.emit(expr.operand)
            if expr.op == "~":
                return f"(~{operand} & {_mask(expr.width)})"
            if expr.op == "|":
                return f"(1 if {operand} else 0)"
            return f"(1 if {operand} == {_mask(expr.operand.width)} else 0)"
        if isinstance(expr, ir.BinOp):
            left = self.emit(expr.left)
            right = self.emit(expr.right)
            if expr.op in ("&", "|", "^"):
                return f"({left} {expr.op} {right})"
            if expr.op in ("+", "-"):
                return f"(({left} {expr.op} {right}) & {_mask(expr.width)})"
            return f"(1 if {left} {expr.op} {right} else 0)"
        if isinstance(expr, ir.Mux):
            select = self.emit(expr.select)
            if_true = self.emit(expr.if_true)
            if_false = self.emit(expr.if_false)
            return f"({if_true} if {select} else {if_false})"
        if isinstance(expr, ir.BitSelect):
            return f"(({self.emit(expr.operand)} >> {expr.index}) & 1)"
        if isinstance(expr, ir.Concat):
            pieces = []
            shift = 0
            for part in reversed(expr.parts):  # first part most significant
                code = self.emit(part)
                pieces.append(f"({code} << {shift})" if shift else code)
                shift += part.width
            if len(pieces) == 1:
                return pieces[0]
            return "(" + " | ".join(reversed(pieces)) + ")"
        raise CodegenError(f"cannot lower expression {expr!r}")

    def emit_step(self, step) -> str:
        """One EvalSchedule step (assign or Moore output decode)."""
        if step.kind == "assign":
            return self.emit(step.expr)
        fsm = step.fsm
        state_local = self.local(fsm.state_register)
        cases: list[tuple[int, int]] = []
        for state, outputs in fsm.moore_outputs.items():
            for net, value in outputs:
                if net is step.target:
                    cases.append(
                        (fsm.encode(state), value & _mask(net.width))
                    )
                    break
        code = "0"  # Moore default: states with no entry drive 0
        for encoded, value in reversed(cases):
            code = f"({value} if {state_local} == {encoded} else {code})"
        return code


class CompiledNetlist:
    """One netlist lowered to executable Python.

    :attr:`source` holds the generated module text (what
    ``python -m repro compile --dump`` prints); :attr:`cycle` and
    :attr:`comb` are the compiled functions themselves.
    """

    def __init__(
        self,
        module: ir.RtlModule,
        source: str,
        cycle_fn,
        comb_fn,
        resets: dict[str, int],
        input_names: list[str],
        output_names: list[str],
        observed: list[str],
        stats: dict,
    ) -> None:
        self.module = module
        self.source = source
        self.cycle = cycle_fn
        self._comb = comb_fn
        self._resets = resets
        self.input_names = input_names
        self.output_names = output_names
        self.observed = observed
        self.stats = stats

    def reset_registers(self) -> dict[str, int]:
        """A fresh register file at its reset values."""
        return dict(self._resets)

    @property
    def register_names(self) -> list[str]:
        return list(self._resets)

    def comb(self, env: typing.Mapping[str, int]) -> dict[str, int]:
        """One settled delta over the full comb netlist.

        Drop-in for :meth:`EvalSchedule.evaluate` — same boundary
        masking, same outputs, same error on a missing boundary value.
        """
        try:
            return self._comb(env)
        except KeyError as missing:
            raise EvaluationError(
                f"no value for net {missing.args[0]!r} in the environment"
            ) from None

    def describe(self) -> str:
        stats = self.stats
        return (
            f"compiled {self.module.name}: "
            f"{stats['comb_steps']} comb steps "
            f"(edge slice {stats['phase_a_steps']}+{stats['phase_c_steps']}), "
            f"{len(self._resets)} registers, "
            f"{len(self.input_names)} inputs, "
            f"{stats['source_lines']} source lines"
        )


def _comb_closure(
    roots: typing.Iterable[ir.Net],
    step_by_id: dict,
    register_ids: set[int],
    in_port_ids: set[int],
    external_names: set[str],
    skipped_ids: set[int],
    module_name: str,
) -> tuple[set[int], dict[str, ir.Net], set[int]]:
    """Backward slice from *roots* over the comb steps.

    Returns (needed comb-net ids, inputs by name, register ids read).
    External nets and skipped-register cones fall out of the slice;
    reading a skipped register from *kept* logic is an error, because
    the runtime would have no value to supply for it.
    """
    needed: set[int] = set()
    inputs: dict[str, ir.Net] = {}
    regs_read: set[int] = set()
    stack = list(roots)
    seen: set[int] = set()
    while stack:
        net = stack.pop()
        net_id = id(net)
        if net_id in seen:
            continue
        seen.add(net_id)
        if net.name in external_names:
            inputs[net.name] = net
            continue
        if net_id in register_ids:
            if net_id in skipped_ids:
                raise CodegenError(
                    f"module {module_name!r}: kept logic reads skipped "
                    f"register {net.name!r}"
                )
            regs_read.add(net_id)
            continue
        if net_id in in_port_ids:
            inputs[net.name] = net
            continue
        step = step_by_id.get(net_id)
        if step is None:
            raise CodegenError(
                f"module {module_name!r}: net {net.name!r} has no driver "
                "and is not an input"
            )
        needed.add(net_id)
        if step.expr is not None:
            stack.extend(step.expr.referenced_nets())
        else:
            stack.append(step.fsm.state_register)
    return needed, inputs, regs_read


def compile_module(
    module: ir.RtlModule,
    external: typing.Sequence[str] = (),
    observe: typing.Sequence[str] = (),
    skip_register_prefixes: typing.Sequence[str] = (),
) -> CompiledNetlist:
    """Lower *module* to a :class:`CompiledNetlist`.

    :param external: net names whose values the runtime supplies as
        inputs instead of their netlist drivers (cutting their cones
        out of the generated code).
    :param observe: comb net names published into the ``outs`` dict
        under ``"pre:<name>"`` keys with their *pre-edge* values.
    :param skip_register_prefixes: registers (by name prefix) owned by
        an externally-substituted cone; their clocked assigns are
        dropped and they carry no state in the compiled register file.
    """
    result = levelize(module)
    if not result.ok:
        loops = "; ".join(loop.describe() for loop in result.loops)
        raise CodegenError(
            f"module {module.name!r} has combinational loops: {loops}"
        )
    schedule: EvalSchedule = result.schedule
    ordered = schedule.steps
    step_by_id = {id(step.target): step for step in ordered}

    register_ids = {id(register) for register in module.registers}
    in_port_ids = {
        id(port) for port in module.ports if port.direction == "in"
    }
    out_ports = [port for port in module.ports if port.direction == "out"]
    external_names = set(external)
    skipped_ids = {
        id(register)
        for register in module.registers
        if any(register.name.startswith(p) for p in skip_register_prefixes)
    }
    kept_registers = [
        register for register in module.registers
        if id(register) not in skipped_ids
    ]
    fsm_state_ids = {
        id(fsm.state_register)
        for fsm in module.fsms
        if id(fsm.state_register) not in skipped_ids
    }
    kept_fsms = [
        fsm for fsm in module.fsms
        if id(fsm.state_register) not in skipped_ids
    ]
    # FSM state registers advance through the FSM dispatch; a stray
    # plain clocked assign onto one would double-drive it.
    plain_clocked = [
        clocked for clocked in module.clocked_assigns
        if id(clocked.target) not in skipped_ids
        and id(clocked.target) not in fsm_state_ids
    ]

    nets_by_name = {net.name: net for net in module.all_nets()}
    for name in external_names | set(observe):
        if name not in nets_by_name:
            raise CodegenError(
                f"module {module.name!r} has no net {name!r}"
            )

    emitter = _Emitter(_local_names(module.all_nets()))

    # -- slice the edge function -------------------------------------------
    phase_a_roots: list[ir.Net] = [nets_by_name[name] for name in observe]
    for fsm in kept_fsms:
        for transition in fsm.transitions:
            if transition.condition is not None:
                phase_a_roots.extend(transition.condition.referenced_nets())
    for clocked in plain_clocked:
        phase_a_roots.extend(clocked.expr.referenced_nets())
        if clocked.enable is not None:
            phase_a_roots.extend(clocked.enable.referenced_nets())
    needed_a, inputs_a, __ = _comb_closure(
        phase_a_roots, step_by_id, register_ids, in_port_ids,
        external_names, skipped_ids, module.name,
    )
    needed_c, inputs_c, __ = _comb_closure(
        out_ports, step_by_id, register_ids, in_port_ids,
        external_names, skipped_ids, module.name,
    )
    inputs = dict(sorted({**inputs_a, **inputs_c}.items()))

    # -- generate ----------------------------------------------------------
    lines: list[str] = []
    emit = lines.append
    emit(f"# generated by repro.compile from netlist {module.name!r}")
    emit("")
    emit("def _cycle(__regs, __ins, __outs):")
    emit("    # inputs (masked to port width on entry)")
    for name, net in inputs.items():
        emit(
            f"    {emitter.local(net)} = "
            f"__ins[{name!r}] & {_mask(net.width):#x}"
        )
    if kept_registers:
        emit("    # committed register values")
    for register in kept_registers:
        emit(f"    {emitter.local(register)} = __regs[{register.name!r}]")
    emit("    # phase A: pre-edge combinational slice")
    for step in ordered:
        if id(step.target) in needed_a:
            emit(
                f"    {emitter.local(step.target)} = "
                f"{emitter.emit_step(step)}"
            )
    for name in observe:
        emit(f"    __outs['pre:{name}'] = {emitter.local(nets_by_name[name])}")
    emit("    # phase B: next-state values, then a single commit")
    committed: list[ir.Register] = []
    for fsm in kept_fsms:
        state_local = emitter.local(fsm.state_register)
        emit(f"    # fsm {fsm.name}: flattened state dispatch")
        first = True
        for state in fsm.states:
            arcs = [t for t in fsm.transitions if t.source == state]
            if not arcs:
                continue
            code = state_local  # no arc taken: hold
            for transition in reversed(arcs):
                target = fsm.encode(transition.target)
                if transition.condition is None:
                    code = str(target)
                else:
                    condition = emitter.emit(transition.condition)
                    code = f"({target} if {condition} else {code})"
            keyword_ = "if" if first else "elif"
            first = False
            emit(f"    {keyword_} {state_local} == {fsm.encode(state)}:")
            emit(f"        _n_{state_local} = {code}")
        if first:
            emit(f"    _n_{state_local} = {state_local}")
        else:
            emit("    else:")
            emit(f"        _n_{state_local} = {state_local}")
        committed.append(fsm.state_register)
    for clocked in plain_clocked:
        local = emitter.local(clocked.target)
        code = emitter.emit(clocked.expr)
        if clocked.enable is not None:
            enable = emitter.emit(clocked.enable)
            code = f"({code}) if {enable} else {local}"
        emit(f"    _n_{local} = {code}")
        committed.append(clocked.target)
    for register in committed:
        local = emitter.local(register)
        emit(f"    __regs[{register.name!r}] = {local} = _n_{local}")
    emit("    # phase C: output cone from the new register values")
    for step in ordered:
        if id(step.target) in needed_c:
            emit(
                f"    {emitter.local(step.target)} = "
                f"{emitter.emit_step(step)}"
            )
    for port in out_ports:
        emit(f"    __outs[{port.name!r}] = {emitter.local(port)}")
    if not (inputs or kept_registers or needed_a or committed or out_ports):
        emit("    pass")
    emit("")
    emit("")

    # -- the full-netlist comb function (EvalSchedule.evaluate twin) -------
    emit("def _comb(__env):")
    emit("    __out = dict(__env)")
    emit("    # boundary nets, masked to net width on entry")
    boundary = sorted(schedule.boundary_nets(), key=lambda net: net.name)
    for net in boundary:
        emit(
            f"    {emitter.local(net)} = __out[{net.name!r}] = "
            f"__env[{net.name!r}] & {_mask(net.width):#x}"
        )
    emit("    # levelized combinational evaluation")
    for step in ordered:
        emit(
            f"    {emitter.local(step.target)} = "
            f"__out[{step.target.name!r}] = {emitter.emit_step(step)}"
        )
    emit("    return __out")
    emit("")

    source = "\n".join(lines)
    namespace: dict[str, typing.Any] = {}
    exec(compile(source, f"<repro.compile:{module.name}>", "exec"), namespace)

    resets = {
        register.name: (
            register.reset_value if register.reset_value is not None else 0
        )
        for register in kept_registers
    }
    stats = {
        "comb_steps": len(ordered),
        "phase_a_steps": len(needed_a),
        "phase_c_steps": len(needed_c),
        "levels": schedule.depth,
        "source_lines": len(lines),
    }
    return CompiledNetlist(
        module,
        source,
        namespace["_cycle"],
        namespace["_comb"],
        resets,
        list(inputs),
        [port.name for port in out_ports],
        [f"pre:{name}" for name in observe],
        stats,
    )
