"""repro.compile — the compiled fast-sim backend.

Lowers synthesized RTL netlists (``repro.synthesis.ir``) to generated
straight-line Python and packages the result as a
:class:`CompiledChannel`, a drop-in replacement for the interpreted
:class:`~repro.synthesis.rtl_channel.RtlMethodChannel` selected with
``backend="compiled"`` on :class:`~repro.synthesis.tool.SynthesisConfig`
(or the platform/flow/CLI knobs layered above it). The two backends are
cycle- and commit-equivalent by construction; the equivalence gate is
enforced by the backend-parity test suite.
"""

from .codegen import CodegenError, CompiledNetlist, compile_module
from .channel import CompiledChannel
from .yosys import emit_yosys_script

__all__ = [
    "CodegenError",
    "CompiledChannel",
    "CompiledNetlist",
    "compile_module",
    "emit_yosys_script",
]
