"""The compiled RT-level method channel.

Drop-in replacement for
:class:`~repro.synthesis.rtl_channel.RtlMethodChannel`: same
constructor, same signal tree (so fault targets, tracers and probes see
identical paths), same handshake timing, same call log and statistics —
but the server is a single clocked METHOD process driving the
*generated* netlist code from :mod:`repro.compile.codegen` instead of a
generator resuming through the delta queue every edge.

What changes under the hood, cycle-for-cycle equivalent by design:

* the server FSM, grant/method/counter registers and gnt/done output
  logic run as straight-line compiled Python (phase A/B/C, see the
  codegen module) — one function call per clock edge;
* clients block on a per-port completion event the server notifies at
  the first DONE edge, instead of polling ``done`` at every posedge —
  the committed ``req``/``gnt``/``done`` waveforms are unchanged, the
  wakeups per call drop from ~cycles-in-flight to two;
* edges where the channel is provably inert (IDLE with no request on
  any port: every register holds, every output holds) skip the netlist
  call entirely — no staged write, no update-queue entry;
* arbiter *selection* stays delegated to the executable policy object
  both backends share (the emitted arbiter IR is a structural model
  whose tick timing differs from the policy; compiling it verbatim
  would diverge from the interpreted backend). Its result enters the
  netlist through the ``arb_grant_index`` input and the
  arbiter-internal registers are sliced out of the generated code.

Eligibility (request AND guard true on the shared state) is evaluated
behaviourally per client exactly as the interpreted server does — same
``space.descriptor`` call pattern, so channel-level fault models
(delayed grant windows) intercept identically — and enters the netlist
through the per-client ``eligible_i`` inputs.
"""

from __future__ import annotations

import typing

from ..errors import SynthesisError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import METHOD_CALL, METHOD_COMPLETE, METHOD_GRANT
from ..kernel.event import Event
from ..kernel.simulator import Simulator
from ..osss.global_object import GlobalObject, SharedStateSpace
from ..osss.request import MethodRequest
from ..synthesis.arbiter_synth import RtlArbiterPolicy, lower_arbiter
from ..synthesis.ir import RtlModule
from ..synthesis.rtl_channel import ST_DONE, ST_EXEC, ST_IDLE, ChannelCallRecord
from .codegen import CompiledNetlist, compile_module


class CompiledChannel(Module):
    """Compiled-backend implementation of one connection group.

    Constructor contract is identical to ``RtlMethodChannel``; the
    synthesizer must call :meth:`bind_netlist` with the group's channel
    IR before the simulation starts.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        space: SharedStateSpace,
        handles: typing.Sequence[GlobalObject],
        clk: Signal,
        body_cycles: int = 1,
    ) -> None:
        super().__init__(parent, name)
        if body_cycles < 1:
            raise SynthesisError("body_cycles must be >= 1")
        if not handles:
            raise SynthesisError("a channel needs at least one client")
        self.space = space
        self.clk = clk
        self.body_cycles = body_cycles
        self.clients = sorted(handles, key=lambda h: h.path)
        self.client_paths = [handle.path for handle in self.clients]
        self._index_of = {id(h): i for i, h in enumerate(self.clients)}
        n = len(self.clients)
        self.method_names = sorted(space.methods)
        self.policy: RtlArbiterPolicy = lower_arbiter(
            space.arbiter, n, self.client_paths
        )
        # Per-client wires — same names, same paths as the interpreted
        # channel, so fault targets and VCD traces line up exactly.
        self.req = [self.signal(f"req_{i}", width=1, init=0) for i in range(n)]
        self.gnt = [self.signal(f"gnt_{i}", width=1, init=0) for i in range(n)]
        self.done = [self.signal(f"done_{i}", width=1, init=0) for i in range(n)]
        self.payload: list[Signal] = [
            self.signal(f"payload_{i}", init=None) for i in range(n)
        ]
        self.result: list[Signal] = [
            self.signal(f"result_{i}", init=None) for i in range(n)
        ]
        # Observability.
        self.state_sig = self.signal("server_state", width=2, init=ST_IDLE)
        self.grant_sig = self.signal(
            "grant_index", width=max(1, (n - 1).bit_length() or 1), init=0
        )
        # Client-side mutexes (one outstanding call per hardware port).
        self._port_busy = [False] * n
        self._port_free = [self.event(f"port_free_{i}") for i in range(n)]
        self.call_log: list[ChannelCallRecord] = []
        self.calls_serviced = 0
        self.idle_cycles = 0
        self.busy_cycles = 0
        # Compiled-backend state.
        self._n_clients = n
        self._method_code_of = {m: k for k, m in enumerate(self.method_names)}
        self._method_codes = [0] * n
        self._completion = [self.event(f"completion_{i}") for i in range(n)]
        self._gnt_shadow = [0] * n
        self._done_shadow = [0] * n
        self._state = ST_IDLE
        self._grant = 0
        self._current: MethodRequest | None = None
        self._notify_done = False
        self._netlist: CompiledNetlist | None = None
        self._regs: dict[str, int] = {}
        # A METHOD on the rising edge only: the Event passes through
        # Module.method's sensitivity conversion untouched (a Signal
        # would subscribe both edges) and nothing runs at time zero.
        self.method(
            self._server_edge, sensitivity=(clk.posedge,),
            name="server", initialize=False,
        )

    # -- netlist binding -------------------------------------------------------

    def bind_netlist(self, module: RtlModule) -> None:
        """Compile the group's channel IR into this channel's core."""
        n = self._n_clients
        external = ["arb_grant_index"] + [f"eligible_{i}" for i in range(n)]
        self._netlist = compile_module(
            module,
            external=external,
            observe=("take_grant", "exec_go"),
            skip_register_prefixes=("arb_",),
        )
        self._regs = self._netlist.reset_registers()
        self._state_key = f"{module.name}_server_state"
        if self._state_key not in self._regs:
            raise SynthesisError(
                f"channel IR {module.name!r} has no server state register"
            )
        self._ins = {name: 0 for name in self._netlist.input_names}
        self._ins["rst_n"] = 1
        self._outs: dict[str, int] = {}
        self._req_keys = [f"req_{i}" for i in range(n)]
        self._method_keys = [f"method_{i}" for i in range(n)]
        self._eligible_keys = [f"eligible_{i}" for i in range(n)]
        self._gnt_keys = [f"gnt_{i}" for i in range(n)]
        self._done_keys = [f"done_{i}" for i in range(n)]

    @property
    def netlist(self) -> CompiledNetlist:
        if self._netlist is None:
            raise SynthesisError(
                f"channel {self.path} has no compiled netlist bound"
            )
        return self._netlist

    # -- client side -----------------------------------------------------------

    def client_index(self, handle: GlobalObject) -> int:
        try:
            return self._index_of[id(handle)]
        except KeyError:
            raise SynthesisError(
                f"{handle.path} is not a client of channel {self.path}"
            ) from None

    def client_call(
        self,
        handle: GlobalObject,
        method: str,
        args: tuple,
        kwargs: dict,
        timeout: int | None = None,
        client: str | None = None,
        priority: int = 0,
    ):
        """The lowered blocking call (generator; substituted for
        :meth:`GlobalObject.call` after synthesis).

        Identical to the interpreted channel's transaction — same
        request object, same probe, same signal writes at the same
        edges — except the per-posedge ``done`` poll becomes a single
        wait on the server's completion event.
        """
        if timeout is not None:
            raise SynthesisError(
                "call timeouts are not supported on a synthesized channel"
            )
        index = self.client_index(handle)
        self.space.descriptor(method)  # validate the method name early
        # One outstanding call per hardware port: serialize extra processes.
        while self._port_busy[index]:
            yield self._port_free[index]
        self._port_busy[index] = True
        try:
            request = MethodRequest(
                client=client or handle.path,
                method=method,
                args=args,
                kwargs=kwargs,
                arrival_time=self.sim.time,
                done_event=Event(self.sim.scheduler, f"{self.path}.unused"),
                priority=priority,
            )
            self.payload[index].write(request)
            self._method_codes[index] = self._method_code_of.get(method, 0)
            self.req[index].write(1)
            self.space.stats.total_requests += 1
            probes = self.sim._probes
            if probes is not None:
                probes.emit(METHOD_CALL, self.sim.time, self.space, request)
            while True:
                yield self._completion[index]
                if self.done[index].read().to_int_default(0):
                    break
            outcome = self.result[index].read()
            self.req[index].write(0)
            # Let the server observe the dropped request before this port
            # can issue again (DONE must clear between calls).
            yield self.clk.posedge
        finally:
            self._port_busy[index] = False
            self._port_free[index].notify()
        error = typing.cast("BaseException | None", outcome[1])
        if error is not None:
            raise error
        return outcome[0]

    # -- server side -------------------------------------------------------------

    def _server_edge(self) -> None:
        """One clock edge of the compiled server core."""
        req = self.req
        n = self._n_clients
        req_vals = [req[i].read().to_int_default(0) for i in range(n)]
        self.policy.tick([value != 0 for value in req_vals])
        state = self._state
        if state == ST_IDLE:
            self.idle_cycles += 1
            if not any(req_vals):
                # Inert edge: no request, nothing eligible, and the
                # netlist provably holds every register and output
                # (all enables false, FSM self-loops). Skip it.
                return
        ins = self._ins
        space = self.space
        eligible_keys = self._eligible_keys
        req_keys = self._req_keys
        method_keys = self._method_keys
        method_codes = self._method_codes
        if state == ST_IDLE:
            eligible = []
            for i in range(n):
                flag = 0
                if req_vals[i]:
                    request = self.payload[i].read()
                    if space.descriptor(request.method).guard_true(space.state):
                        flag = 1
                        eligible.append(i)
                ins[eligible_keys[i]] = flag
                ins[req_keys[i]] = req_vals[i]
                ins[method_keys[i]] = method_codes[i]
            ins["arb_grant_index"] = (
                self.policy.select(eligible) if eligible else 0
            )
        else:
            for i in range(n):
                ins[eligible_keys[i]] = 0
                ins[req_keys[i]] = req_vals[i]
                ins[method_keys[i]] = method_codes[i]
            ins["arb_grant_index"] = 0
        outs = self._outs
        self._netlist.cycle(self._regs, ins, outs)
        new_state = self._regs[self._state_key]

        # Behavioural effects, keyed off the compiled control flags, in
        # the interpreted server's order.
        granted_this_edge = False
        if state == ST_IDLE:
            if outs["pre:take_grant"]:
                grant = ins["arb_grant_index"]
                current = typing.cast(
                    MethodRequest, self.payload[grant].read()
                )
                self._grant = grant
                self._current = current
                granted_this_edge = True
                current.grant_time = self.sim.time
                space.stats.record_grant(current, self.sim.time)
                probes = self.sim._probes
                if probes is not None:
                    probes.emit(METHOD_GRANT, self.sim.time, space, current)
        elif state == ST_EXEC:
            self.busy_cycles += 1
            if outs["pre:exec_go"]:
                current = self._current
                assert current is not None
                descriptor = space.descriptor(current.method)
                try:
                    value = descriptor.invoke(
                        space.state, *current.args, **current.kwargs
                    )
                    outcome: tuple = (value, None)
                except Exception as error:
                    current.error = error
                    outcome = (None, error)
                current.result = outcome[0]
                current.completed = True
                current.complete_time = self.sim.time
                space.stats.record_completion(current)
                probes = self.sim._probes
                if probes is not None:
                    probes.emit(
                        METHOD_COMPLETE, self.sim.time, space, current
                    )
                self.result[self._grant].write(outcome)
                self._notify_done = True
        else:  # ST_DONE
            self.busy_cycles += 1
            if self._notify_done:
                # First DONE edge after completion: the client's next
                # observation point. It reads the committed done/result
                # now — exactly when the interpreted client's posedge
                # poll would have seen done=1.
                self._notify_done = False
                self._completion[self._grant].notify()
            if not req_vals[self._grant]:
                current = self._current
                assert current is not None
                self.call_log.append(
                    ChannelCallRecord(
                        current.client,
                        current.method,
                        current.arrival_time,
                        current.grant_time or current.arrival_time,
                        self.sim.time,
                    )
                )
                self.calls_serviced += 1
                self._current = None

        self._state = new_state
        # Drive the handshake wires from the post-edge output cone; a
        # write only when the value moves keeps the update queue quiet
        # (commits are change-deduplicated anyway, so the committed
        # waveforms match the interpreted channel's exactly). Staging
        # order mirrors the interpreted server within an edge: done
        # before gnt, gnt before grant_index, state last.
        gnt_shadow = self._gnt_shadow
        done_shadow = self._done_shadow
        gnt_keys = self._gnt_keys
        done_keys = self._done_keys
        for i in range(n):
            value = outs[done_keys[i]]
            if value != done_shadow[i]:
                done_shadow[i] = value
                self.done[i].write(value)
            value = outs[gnt_keys[i]]
            if value != gnt_shadow[i]:
                gnt_shadow[i] = value
                self.gnt[i].write(value)
        if granted_this_edge:
            self.grant_sig.write(self._grant)
        if new_state != state:
            self.state_sig.write(new_state)

    # -- statistics -----------------------------------------------------------------

    def mean_call_cycles(self, clock_period: int) -> float:
        """Average request-to-done latency in clock cycles."""
        if not self.call_log:
            return 0.0
        total = sum(record.total_time for record in self.call_log)
        return total / len(self.call_log) / clock_period
