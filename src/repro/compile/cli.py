"""``python -m repro compile`` — lower a script's netlists to code.

Executes an arbitrary Python script (typically an example platform)
with a process-wide synthesis sink installed — the same capture trick
as ``python -m repro analyze`` — and pushes every synthesized channel
netlist through the :mod:`repro.compile` code generator. The default
output is a per-module stats table; ``--dump`` prints the generated
Python source, ``--check N`` cross-checks the generated combinational
code against :meth:`~repro.analyze.schedule.EvalSchedule.evaluate` on
*N* seeded random vectors per module (exit 1 on any mismatch), and
``--yosys`` emits the Yosys hand-off script for the same netlists'
Verilog.
"""

from __future__ import annotations

import argparse
import runpy
import sys
import typing

from ..core.workload import _Lcg
from ..synthesis.tool import set_synthesis_sink
from .codegen import CodegenError, CompiledNetlist, compile_module
from .yosys import emit_yosys_script

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel.simulator import Simulator
    from ..synthesis.tool import SynthesisResult


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "script",
        help="Python script to execute under the compiler "
             "(e.g. examples/pci_system.py)",
    )
    parser.add_argument(
        "script_args",
        nargs=argparse.REMAINDER,
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--dump", action="store_true",
        help="print the generated Python source of every netlist",
    )
    parser.add_argument(
        "--check", type=int, default=0, metavar="N",
        help="cross-check the generated code against the interpreted "
             "EvalSchedule on N seeded random vectors per module",
    )
    parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the output to FILE instead of stdout",
    )
    parser.add_argument(
        "--yosys", action="store_true",
        help="also emit the Yosys synthesis script for the netlists' "
             "generated Verilog",
    )
    parser.add_argument(
        "--quiet-script", action="store_true",
        help="suppress the compiled script's stdout",
    )


def _run_script(script: str, script_args: list[str], quiet: bool) -> None:
    saved_argv = sys.argv
    sys.argv = [script, *script_args]
    saved_stdout = sys.stdout
    if quiet:
        import io

        sys.stdout = io.StringIO()
    try:
        runpy.run_path(script, run_name="__main__")
    finally:
        sys.stdout = saved_stdout
        sys.argv = saved_argv


def _cross_check(
    module, netlist: CompiledNetlist, vectors: int, seed: int
) -> "tuple[int, str | None]":
    """Compare ``netlist.comb`` with the levelized interpreter on
    seeded random boundary vectors; ``(checked, first_mismatch)``."""
    from ..analyze.schedule import levelize

    result = levelize(module)
    if result.schedule is None:
        return 0, "module has combinational loops"
    schedule = result.schedule
    boundary = sorted(schedule.boundary_nets(), key=lambda net: net.name)
    rng = _Lcg(seed ^ 0x5EED)
    for _ in range(vectors):
        env = {
            net.name: rng.next_int(1 << min(net.width, 30))
            for net in boundary
        }
        expected = schedule.evaluate(env)
        got = netlist.comb(env)
        if got != expected:
            diverging = sorted(
                name for name in expected
                if got.get(name) != expected[name]
            )
            return 0, (
                f"mismatch on nets {', '.join(diverging[:5])} "
                f"(env={env!r})"
            )
    return vectors, None


def run(args: argparse.Namespace) -> int:
    captured: "list[tuple[Simulator, SynthesisResult]]" = []
    previous = set_synthesis_sink(
        lambda sim, result: captured.append((sim, result))
    )
    try:
        _run_script(args.script, args.script_args, args.quiet_script)
    finally:
        set_synthesis_sink(previous)

    if not captured:
        print(
            f"compile: {args.script} performed no communication synthesis "
            "(nothing to compile)"
        )
        return 2

    seed = getattr(args, "seed", None)
    seed = seed if seed is not None else 11
    lines: list[str] = []
    failed = False
    for run_index, (__, result) in enumerate(captured):
        for group in result.groups:
            module = group.channel_ir
            label = f"run{run_index}/{module.name}"
            try:
                netlist = compile_module(module)
            except CodegenError as error:
                lines.append(f"{label}: CODEGEN FAILED: {error}")
                failed = True
                continue
            stats = netlist.stats
            lines.append(
                f"{label}: {stats['comb_steps']} comb steps in "
                f"{stats['levels']} levels, "
                f"{len(netlist.register_names)} registers, "
                f"{stats['source_lines']} generated lines"
            )
            if args.check:
                checked, mismatch = _cross_check(
                    module, netlist, args.check, seed
                )
                if mismatch is None:
                    lines.append(
                        f"  check: {checked} random vectors equal to the "
                        "interpreted schedule"
                    )
                else:
                    lines.append(f"  check: FAILED: {mismatch}")
                    failed = True
            if args.dump:
                lines.append("")
                lines.extend(netlist.source.splitlines())
                lines.append("")
            if args.yosys:
                lines.append("")
                lines.append(f"# yosys script for {module.name}.v")
                lines.extend(
                    emit_yosys_script(
                        [f"{module.name}.v"], module.name,
                        output=f"{module.name}_synth.v",
                    ).splitlines()
                )
                lines.append("")

    text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 1 if failed else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compile",
        description="compiled fast-sim code generation over a script's "
                    "synthesis runs",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
