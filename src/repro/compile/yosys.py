"""Yosys hand-off script emission.

The compiled backend executes the synthesized netlist fast; the same
netlist's Verilog is the hand-off artifact to real logic synthesis.
:func:`emit_yosys_script` writes the conventional Yosys flow for it —
read the sources, elaborate from the top, then the standard
proc/fsm/memory/techmap ladder with cleanups between the passes and a
liberty-driven dff/ABC mapping at the end — so the generated HDL can be
pushed through an open tool chain unmodified.
"""

from __future__ import annotations

import typing


def emit_yosys_script(
    verilog_files: typing.Sequence[str],
    top: str,
    liberty: str = "vsclib013.lib",
    output: str = "synth.v",
) -> str:
    """A Yosys synthesis script for the emitted Verilog.

    :param verilog_files: paths of the Verilog sources to read, in
        dependency order.
    :param top: name of the top module to elaborate from.
    :param liberty: liberty cell library for dfflibmap/abc.
    :param output: path the synthesized netlist is written to.
    """
    lines = ["# read design modules"]
    for path in verilog_files:
        lines.append(f"read -sv {path}")
    lines += [
        "",
        "# elaborate design hierarchy",
        f"hierarchy -check -top {top}",
        "",
        "# convert behavioural processes to d-type flip-flops and muxes",
        "proc; opt",
        "",
        "# FSM extraction and optimization",
        "fsm; opt",
        "",
        "# convert memory constructs to flip-flops and multiplexers",
        "memory; opt",
        "",
        "# convert the design to gate-level netlists",
        "techmap; opt",
        "",
        "# map registers onto the cell library",
        f"dfflibmap -liberty {liberty}",
        "",
        "# map remaining logic with ABC",
        f"abc -liberty {liberty}",
        "",
        "# cleanup",
        "clean",
        "",
        "# write the synthesized design",
        f"write_verilog {output}",
        "",
    ]
    return "\n".join(lines)
