"""In-memory waveform capture.

:class:`WaveformCapture` implements the same tracer protocol as the VCD
writer but keeps the change history in memory, where it can be sampled,
compared against another run (pre- vs post-synthesis) and rendered as
ASCII art for the benchmark harnesses.
"""

from __future__ import annotations

import bisect
import typing

from ..errors import SimulationError
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal

Traceable = typing.Union[Signal, ResolvedSignal]


class WaveformCapture:
    """Records (time, value) change histories for a set of signals."""

    def __init__(self) -> None:
        self._watched: dict[int, Traceable] = {}
        #: name -> list of (time, value) changes, in time order.
        self.history: dict[str, list[tuple[int, object]]] = {}

    # -- registration -----------------------------------------------------

    def add_signal(self, signal: Traceable) -> None:
        if id(signal) not in self._watched:
            self._watched[id(signal)] = signal
            # Snapshot the value as of registration (time 0 for the usual
            # attach-before-run pattern) so value_at() is total.
            self.history[signal.name] = [(0, signal.read())]

    def add_signals(self, signals: typing.Iterable[Traceable]) -> None:
        for signal in signals:
            self.add_signal(signal)

    def add_module(self, module: typing.Any) -> None:
        prefix = module.path + "."
        for name, obj in module.sim.iter_named():
            if name.startswith(prefix) and isinstance(obj, (Signal, ResolvedSignal)):
                self.add_signal(obj)

    @property
    def signal_names(self) -> tuple[str, ...]:
        return tuple(self.history)

    # -- tracer protocol ---------------------------------------------------

    def record_change(self, time: int, signal: Traceable, value: object) -> None:
        changes = self.history.get(signal.name)
        if changes is None:
            return
        if changes and changes[-1][0] == time:
            changes[-1] = (time, value)
        else:
            changes.append((time, value))

    # -- querying --------------------------------------------------------------

    def value_at(self, name: str, time: int) -> object:
        """The value of signal *name* at simulation time *time*."""
        try:
            changes = self.history[name]
        except KeyError:
            raise SimulationError(f"signal {name!r} was not captured") from None
        if not changes:
            raise SimulationError(f"signal {name!r} has no recorded history")
        times = [t for t, __ in changes]
        index = bisect.bisect_right(times, time) - 1
        if index < 0:
            index = 0
        return changes[index][1]

    def sample(
        self, name: str, start: int, stop: int, step: int
    ) -> list[tuple[int, object]]:
        """Sample signal *name* every *step* fs over [start, stop)."""
        if step <= 0:
            raise SimulationError(f"sample step must be positive, got {step}")
        return [
            (time, self.value_at(name, time)) for time in range(start, stop, step)
        ]

    def changes(self, name: str) -> list[tuple[int, object]]:
        try:
            return list(self.history[name])
        except KeyError:
            raise SimulationError(f"signal {name!r} was not captured") from None

    def change_count(self, name: str) -> int:
        """Number of committed changes (excluding the initial snapshot)."""
        return max(0, len(self.changes(name)) - 1)

    # -- comparison ---------------------------------------------------------------

    def diff(
        self,
        other: "WaveformCapture",
        names: typing.Sequence[str] | None = None,
        rename: typing.Callable[[str], str] | None = None,
    ) -> list[str]:
        """Compare change histories with *other*; return human-readable diffs.

        :param names: signals to compare (default: all common names).
        :param rename: maps a name in ``self`` to the matching name in
            *other* (used when hierarchies differ between two runs).
        """
        mapper = rename or (lambda name: name)
        if names is None:
            names = [n for n in self.history if mapper(n) in other.history]
        problems = []
        for name in names:
            mine = self.history.get(name)
            theirs = other.history.get(mapper(name))
            if mine is None or theirs is None:
                problems.append(f"{name}: missing from one capture")
                continue
            if [v for __, v in mine] != [v for __, v in theirs]:
                problems.append(
                    f"{name}: value sequences differ "
                    f"({len(mine)} vs {len(theirs)} changes)"
                )
        return problems
