"""Latency attribution over assembled span trees.

Breaks every transaction's end-to-end latency into the methodology's
four cost centres:

``queue_wait``
    ``put_command`` issued → granted by the channel arbiter (zero on the
    behavioural spec, one-or-more clock edges after synthesis).
``arbitration``
    bus operation started → bus grant won (REQ#/GNT# handshake on PCI;
    zero for functional interfaces, which have no bus to arbitrate).
``bus_transfer``
    bus grant → last data phase retired.
``completion``
    bus done → application observes the result (``appDataGet`` path;
    zero for posted writes).

Anything the four centres do not explain (channel call overhead,
response-queue residency) is reported as ``other`` so the breakdown
always sums to the measured total.
"""

from __future__ import annotations

from .spans import BUS, METHOD, WIRE, Span, SpanTracer

#: Attribution cost centres, in pipeline order.
CATEGORIES = ("queue_wait", "arbitration", "bus_transfer", "completion", "other")


class TransactionAttribution:
    """Latency breakdown of one root span."""

    def __init__(self, root: Span) -> None:
        self.corr_id = root.corr_id or root.name
        self.root = root
        self.total = root.duration or 0
        self.categories = {name: 0 for name in CATEGORIES}
        self._attribute(root)

    def _attribute(self, root: Span) -> None:
        categories = self.categories
        put_span = root.find(METHOD, "put_command")
        if put_span is not None:
            grant = put_span.meta.get("grant_time")
            if grant is not None:
                categories["queue_wait"] = max(0, grant - put_span.start_time)
        bus_span = root.find(BUS) or root.find(WIRE)
        if bus_span is not None and bus_span.complete:
            grant = bus_span.meta.get("grant_time")
            if grant is not None:
                categories["arbitration"] = max(0, grant - bus_span.start_time)
                categories["bus_transfer"] = max(0, bus_span.end_time - grant)
            else:
                categories["bus_transfer"] = bus_span.duration or 0
            if root.end_time is not None:
                categories["completion"] = max(
                    0, root.end_time - bus_span.end_time
                )
        explained = sum(categories[name] for name in CATEGORIES[:-1])
        categories["other"] = max(0, self.total - explained)

    def to_dict(self) -> dict:
        return {
            "corr_id": self.corr_id,
            "total": self.total,
            "categories": dict(self.categories),
        }


class AttributionReport:
    """Per-transaction and aggregate latency attribution."""

    def __init__(self, transactions: list[TransactionAttribution]) -> None:
        self.transactions = transactions
        self.aggregate = {name: 0 for name in CATEGORIES}
        for txn in transactions:
            for name in CATEGORIES:
                self.aggregate[name] += txn.categories[name]
        self.total = sum(txn.total for txn in transactions)

    def __len__(self) -> int:
        return len(self.transactions)

    @property
    def mean_latency(self) -> float:
        if not self.transactions:
            return 0.0
        return self.total / len(self.transactions)

    def render(self, top: int | None = None) -> str:
        """Fixed-width table: one row per transaction plus totals."""
        header = f"{'transaction':<24} {'total':>12} " + " ".join(
            f"{name:>12}" for name in CATEGORIES
        )
        lines = [header, "-" * len(header)]
        rows = self.transactions if top is None else self.transactions[:top]
        for txn in rows:
            lines.append(
                f"{txn.corr_id:<24} {txn.total:>12} "
                + " ".join(f"{txn.categories[name]:>12}" for name in CATEGORIES)
            )
        if top is not None and len(self.transactions) > top:
            lines.append(f"... ({len(self.transactions) - top} more)")
        lines.append("-" * len(header))
        lines.append(
            f"{'TOTAL':<24} {self.total:>12} "
            + " ".join(f"{self.aggregate[name]:>12}" for name in CATEGORIES)
        )
        if self.transactions:
            lines.append(
                f"{len(self.transactions)} transactions, "
                f"mean latency {self.mean_latency:.0f} fs"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "transactions": [txn.to_dict() for txn in self.transactions],
            "aggregate": dict(self.aggregate),
            "total": self.total,
            "mean_latency": self.mean_latency,
        }


def attribute(tracer: SpanTracer) -> AttributionReport:
    """Attribution over every complete transaction in *tracer*."""
    return AttributionReport(
        [TransactionAttribution(root) for root in tracer.complete_transactions()]
    )
