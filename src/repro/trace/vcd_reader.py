"""A small VCD parser.

Reads the dialect :class:`~repro.trace.vcd.VcdTracer` writes (a strict
subset of IEEE-1364 VCD), producing per-signal change histories. Used by
the round-trip tests and handy for diffing dumps from two runs without a
waveform viewer.
"""

from __future__ import annotations

import typing

from ..errors import SimulationError


class VcdSignal:
    """One declared variable."""

    def __init__(self, identifier: str, name: str, width: int, scope: str) -> None:
        self.identifier = identifier
        self.name = name
        self.width = width
        self.scope = scope
        #: (time, value-string) pairs; vectors as MSB-first bit strings.
        self.changes: list[tuple[int, str]] = []

    @property
    def full_name(self) -> str:
        return f"{self.scope}.{self.name}" if self.scope else self.name

    def value_at(self, time: int) -> str:
        """Last committed value at *time* (raises before the first change)."""
        result: str | None = None
        for stamp, value in self.changes:
            if stamp > time:
                break
            result = value
        if result is None:
            raise SimulationError(
                f"{self.full_name}: no value recorded at or before {time}"
            )
        return result


class VcdDump:
    """A parsed dump: metadata + signals keyed by full name."""

    def __init__(self) -> None:
        self.timescale = ""
        self.signals: dict[str, VcdSignal] = {}
        self._by_id: dict[str, VcdSignal] = {}
        self.end_time = 0

    def signal(self, full_name: str) -> VcdSignal:
        try:
            return self.signals[full_name]
        except KeyError:
            raise SimulationError(
                f"no signal {full_name!r} in dump; have "
                f"{sorted(self.signals)[:10]}"
            ) from None


def parse_vcd(text: str) -> VcdDump:
    """Parse VCD *text* into a :class:`VcdDump`.

    :raises SimulationError: on malformed input.
    """
    dump = VcdDump()
    tokens = text.split()
    index = 0
    scope_stack: list[str] = []
    current_time = 0
    in_header = True

    def take_until_end(start: int) -> tuple[list[str], int]:
        words = []
        i = start
        while i < len(tokens) and tokens[i] != "$end":
            words.append(tokens[i])
            i += 1
        if i >= len(tokens):
            raise SimulationError("unterminated $ directive in VCD")
        return words, i + 1

    while index < len(tokens):
        token = tokens[index]
        if token in ("$date", "$version", "$comment"):
            __, index = take_until_end(index + 1)
        elif token == "$timescale":
            words, index = take_until_end(index + 1)
            dump.timescale = " ".join(words)
        elif token == "$scope":
            words, index = take_until_end(index + 1)
            if len(words) != 2:
                raise SimulationError(f"bad $scope: {words}")
            scope_stack.append(words[1])
        elif token == "$upscope":
            __, index = take_until_end(index + 1)
            if not scope_stack:
                raise SimulationError("$upscope without open scope")
            scope_stack.pop()
        elif token == "$var":
            words, index = take_until_end(index + 1)
            if len(words) < 4:
                raise SimulationError(f"bad $var: {words}")
            __, width_text, identifier, name = words[0], words[1], words[2], words[3]
            try:
                width = int(width_text)
            except ValueError:
                raise SimulationError(f"bad $var width: {width_text!r}") from None
            signal = VcdSignal(identifier, name, width, ".".join(scope_stack))
            dump._by_id[identifier] = signal
            dump.signals[signal.full_name] = signal
        elif token == "$enddefinitions":
            __, index = take_until_end(index + 1)
            in_header = False
        elif token in ("$dumpvars", "$end"):
            index += 1
        elif token.startswith("#"):
            try:
                current_time = int(token[1:])
            except ValueError:
                raise SimulationError(f"bad timestamp {token!r}") from None
            dump.end_time = max(dump.end_time, current_time)
            index += 1
        elif token[0] in "01xXzZ" and len(token) > 1 and not in_header:
            # Scalar change: value char glued to the identifier.
            identifier = token[1:]
            _record(dump, identifier, token[0].lower().replace("x", "X")
                    .replace("z", "Z").replace("X", "X"), current_time)
            index += 1
        elif token[0] in ("b", "B") and not in_header:
            value = token[1:].upper()
            index += 1
            if index >= len(tokens):
                raise SimulationError("vector change missing identifier")
            _record(dump, tokens[index], value, current_time)
            index += 1
        elif token[0] in ("s", "S", "r", "R") and not in_header:
            value = token[1:]
            index += 1
            if index >= len(tokens):
                raise SimulationError("string/real change missing identifier")
            _record(dump, tokens[index], value, current_time)
            index += 1
        else:
            raise SimulationError(f"unexpected VCD token {token!r}")
    return dump


def _record(dump: VcdDump, identifier: str, value: str, time: int) -> None:
    try:
        signal = dump._by_id[identifier]
    except KeyError:
        raise SimulationError(f"change for undeclared identifier {identifier!r}") from None
    # Normalise scalar chars to upper-case X/Z, digits as-is.
    if len(value) == 1 and value in "xz":
        value = value.upper()
    signal.changes.append((time, value))


def diff_dumps(
    dump_a: VcdDump,
    dump_b: VcdDump,
    names: typing.Sequence[str] | None = None,
) -> list[str]:
    """Compare value sequences of two parsed dumps (time-abstracted)."""
    if names is None:
        names = sorted(set(dump_a.signals) & set(dump_b.signals))
    problems = []
    for name in names:
        seq_a = [v for __, v in dump_a.signal(name).changes]
        seq_b = [v for __, v in dump_b.signal(name).changes]
        if seq_a != seq_b:
            problems.append(
                f"{name}: {len(seq_a)} vs {len(seq_b)} changes or differing values"
            )
    return problems
