"""Value-change-dump (VCD) writing.

A :class:`VcdTracer` is attached to a :class:`~repro.kernel.simulator.
Simulator` with ``sim.add_tracer(tracer)`` and receives every committed
value change of the signals it was told to watch. The output is standard
IEEE-1364 VCD, loadable in GTKWave — the reproduction of the paper's
Figure 4 artifact.
"""

from __future__ import annotations

import io
import typing

from ..errors import SimulationError
from ..hdl.bitvector import LogicVector
from ..hdl.logic import Logic
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal

#: VCD identifier alphabet (printable ASCII, as the standard allows).
_ID_CHARS = "".join(chr(c) for c in range(33, 127))

Traceable = typing.Union[Signal, ResolvedSignal]


def _make_identifier(index: int) -> str:
    chars = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VcdTracer:
    """Streams signal changes to a VCD file (or any text stream).

    :param path_or_stream: output file path or an open text stream.
    :param timescale: VCD timescale directive (default ``1 fs`` — the
        kernel's native resolution).
    """

    def __init__(
        self,
        path_or_stream: "str | io.TextIOBase",
        timescale: str = "1 fs",
    ) -> None:
        if isinstance(path_or_stream, str):
            self._stream: typing.TextIO = open(path_or_stream, "w", encoding="ascii")
            self._owns_stream = True
        else:
            self._stream = typing.cast(typing.TextIO, path_or_stream)
            self._owns_stream = False
        self._timescale = timescale
        self._signals: dict[int, tuple[Traceable, str]] = {}
        self._initial_values: dict[int, object] = {}
        self._header_written = False
        self._last_time: int | None = None
        self._closed = False

    # -- registration ---------------------------------------------------------

    def add_signal(self, signal: Traceable) -> None:
        """Watch *signal*; must be called before the simulation runs."""
        if self._header_written:
            raise SimulationError("cannot add signals after the VCD header is out")
        if id(signal) not in self._signals:
            identifier = _make_identifier(len(self._signals))
            self._signals[id(signal)] = (signal, identifier)
            # Snapshot now: by header-writing time the first change may
            # already have committed, and $dumpvars must show time zero.
            self._initial_values[id(signal)] = signal.read()

    def add_signals(self, signals: typing.Iterable[Traceable]) -> None:
        for signal in signals:
            self.add_signal(signal)

    def add_module(self, module: typing.Any) -> None:
        """Watch every signal registered beneath *module*'s hierarchy."""
        prefix = module.path + "."
        for name, obj in module.sim.iter_named():
            if name.startswith(prefix) and isinstance(obj, (Signal, ResolvedSignal)):
                self.add_signal(obj)

    # -- header ----------------------------------------------------------------

    def _write_header(self) -> None:
        write = self._stream.write
        write("$date\n    repro library VCD dump\n$end\n")
        write("$version\n    repro 1.0\n$end\n")
        write(f"$timescale {self._timescale} $end\n")
        # Group variables by hierarchical scope.
        tree: dict[str, list[tuple[str, Traceable, str]]] = {}
        for signal, identifier in self._signals.values():
            scope, __, leaf = signal.name.rpartition(".")
            tree.setdefault(scope, []).append((leaf, signal, identifier))
        for scope in sorted(tree):
            for part in scope.split(".") if scope else []:
                write(f"$scope module {part} $end\n")
            for leaf, signal, identifier in sorted(tree[scope]):
                width = _vcd_width(signal)
                write(f"$var wire {width} {identifier} {leaf} $end\n")
            for __ in scope.split(".") if scope else []:
                write("$upscope $end\n")
        write("$enddefinitions $end\n")
        write("$dumpvars\n")
        for key, (signal, identifier) in self._signals.items():
            write(_format_change(self._initial_values[key], identifier))
        write("$end\n")
        self._header_written = True
        self._last_time = 0

    # -- tracer protocol -----------------------------------------------------------

    def record_change(self, time: int, signal: Traceable, value: object) -> None:
        """Called by the simulator on every committed change."""
        entry = self._signals.get(id(signal))
        if entry is None or self._closed:
            return
        if not self._header_written:
            self._write_header()
        if time != self._last_time:
            self._stream.write(f"#{time}\n")
            self._last_time = time
        self._stream.write(_format_change(value, entry[1]))

    def close(self, final_time: int | None = None) -> None:
        """Finish the dump (writes the header even if nothing changed)."""
        if self._closed:
            return
        if not self._header_written:
            self._write_header()
        if final_time is not None and final_time != self._last_time:
            self._stream.write(f"#{final_time}\n")
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
        self._closed = True


def _vcd_width(signal: Traceable) -> int:
    if signal.width is not None:
        return signal.width
    value = signal.read()
    if isinstance(value, (bool, Logic)):
        return 1
    return 64


def _format_change(value: object, identifier: str) -> str:
    if isinstance(value, LogicVector):
        if value.width == 1:
            return f"{_scalar_char(value.bit(0))}{identifier}\n"
        return f"b{str(value).lower()} {identifier}\n"
    if isinstance(value, Logic):
        return f"{_scalar_char(value)}{identifier}\n"
    if isinstance(value, bool):
        return f"{'1' if value else '0'}{identifier}\n"
    if isinstance(value, int):
        return f"b{bin(value & (2**64 - 1))[2:]} {identifier}\n"
    # Fall back to a real-number or string-ish encoding for Python objects.
    text = repr(value).replace(" ", "_")[:64]
    return f"s{text} {identifier}\n"


def _scalar_char(value: Logic) -> str:
    return value.char.lower() if value.char in ("X", "Z") else value.char
