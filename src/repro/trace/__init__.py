"""Tracing: VCD dumping, in-memory capture, ASCII waveform rendering."""

from .ascii_art import render
from .capture import WaveformCapture
from .vcd import VcdTracer
from .vcd_reader import VcdDump, VcdSignal, diff_dumps, parse_vcd

__all__ = [
    "VcdDump",
    "VcdSignal",
    "VcdTracer",
    "WaveformCapture",
    "diff_dumps",
    "parse_vcd",
    "render",
]
