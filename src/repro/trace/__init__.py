"""Tracing: VCD dumping, waveform capture/rendering, transaction spans."""

from .ascii_art import render
from .attribution import AttributionReport, TransactionAttribution, attribute
from .capture import WaveformCapture
from .correlate import SpanDiff, SpanDiffEntry, correlate
from .spans import CriticalPath, Span, SpanTracer, critical_path
from .vcd import VcdTracer
from .vcd_reader import VcdDump, VcdSignal, diff_dumps, parse_vcd

__all__ = [
    "AttributionReport",
    "CriticalPath",
    "Span",
    "SpanDiff",
    "SpanDiffEntry",
    "SpanTracer",
    "TransactionAttribution",
    "VcdDump",
    "VcdSignal",
    "VcdTracer",
    "WaveformCapture",
    "attribute",
    "correlate",
    "critical_path",
    "diff_dumps",
    "parse_vcd",
    "render",
]
