"""Causal transaction spans assembled from the probe bus.

A :class:`SpanTracer` subscribes to the ProbeBus and turns the raw probe
stream into per-transaction **span trees**: one root span per
application-level correlation id (threaded by ``Application.perform``
through ``putCommand``/``getCommand``/``appDataGet``), with child spans
for every guarded-method call, every bus-master operation and — matched
after the run by time/address containment, since monitors cannot see
ids through the wires — every monitor-observed wire transaction,
including its protocol phases (DEVSEL# wait, data-transfer window).

Alongside the span store the tracer records the kernel's causal edges
(which process notified the event that woke which process), the raw
material for :func:`critical_path` extraction.

The same tracer works unchanged on the behavioural specification and on
the synthesized RT model, which is what makes cross-refinement trace
correlation (:mod:`repro.trace.correlate`) possible.
"""

from __future__ import annotations

import typing

from ..instrument.probes import (
    EVENT_NOTIFY,
    METHOD_CALL,
    METHOD_COMPLETE,
    METHOD_GRANT,
    METHOD_QUEUE,
    PROCESS_ACTIVATE,
    TRANSACTION_BEGIN,
    TRANSACTION_END,
    ProbeBus,
)
from ..osss.request import correlation_id_of

#: Span categories, outermost to innermost.
TRANSACTION = "transaction"
METHOD = "method"
BUS = "bus"
WIRE = "wire"
PHASE = "phase"

#: Causal-edge records kept before the tracer starts dropping (bounds
#: memory on very long runs; the critical path degrades gracefully).
MAX_CAUSAL_EDGES = 200_000


class Span:
    """One timed interval in a transaction's journey.

    :param name: short label (method name, bus command, phase name).
    :param category: one of the module's category constants.
    :param start_time: femtosecond start.
    :param source: hierarchical path of the emitting component.
    """

    __slots__ = (
        "name", "category", "start_time", "end_time",
        "corr_id", "txn_id", "source", "meta", "children",
    )

    def __init__(
        self,
        name: str,
        category: str,
        start_time: int,
        source: str = "",
        corr_id: "str | None" = None,
        txn_id: "int | None" = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_time = start_time
        self.end_time: int | None = None
        self.corr_id = corr_id
        self.txn_id = txn_id
        self.source = source
        self.meta: dict = {}
        self.children: list[Span] = []

    @property
    def duration(self) -> int | None:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def complete(self) -> bool:
        return self.end_time is not None

    def add_child(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def walk(self) -> typing.Iterator["Span"]:
        """This span, then every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, category: str, name: "str | None" = None) -> "Span | None":
        """Earliest descendant matching *category* (and *name*, if given)."""
        best: Span | None = None
        for span in self.walk():
            if span is self or span.category != category:
                continue
            if name is not None and span.name != name:
                continue
            if best is None or span.start_time < best.start_time:
                best = span
        return best

    def to_dict(self) -> dict:
        record = {
            "name": self.name,
            "category": self.category,
            "start": self.start_time,
            "end": self.end_time,
            "duration": self.duration,
            "source": self.source,
        }
        if self.corr_id is not None:
            record["corr_id"] = self.corr_id
        if self.txn_id is not None:
            record["txn_id"] = self.txn_id
        if self.meta:
            record["meta"] = {
                key: value for key, value in self.meta.items()
                if isinstance(value, (int, float, str, bool, type(None)))
            }
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    def __repr__(self) -> str:
        return (
            f"Span({self.category}:{self.name} "
            f"[{self.start_time}..{self.end_time}])"
        )


class ActivationRecord:
    """One process activation with its resolved notify→wake edge."""

    __slots__ = ("time", "process", "via_event", "notified_by")

    def __init__(
        self,
        time: int,
        process: str,
        via_event: "str | None",
        notified_by: "str | None",
    ) -> None:
        self.time = time
        self.process = process
        self.via_event = via_event
        self.notified_by = notified_by


def _corr_sort_key(corr_id: str) -> tuple:
    path, _, seq = corr_id.rpartition("#")
    try:
        return (path, int(seq))
    except ValueError:
        return (path, 0)


class SpanTracer:
    """Probe-bus subscriber assembling per-transaction span trees.

    Attach to a bus (``SpanTracer().attach(sim.probes)``), run, then
    call :meth:`finalize` before reading :meth:`transactions`.

    :param causal: also record notify→wake edges for critical-path
        extraction (small per-activation cost while tracing).
    :param max_causal_edges: activation records kept before dropping.
    """

    def __init__(
        self, causal: bool = True, max_causal_edges: int = MAX_CAUSAL_EDGES
    ) -> None:
        self.causal = causal
        self.max_causal_edges = max_causal_edges
        self.roots: dict[str, Span] = {}
        #: Completed spans with no correlation id (background traffic).
        self.orphans: list[Span] = []
        self.activations: list[ActivationRecord] = []
        self.dropped_causal_edges = 0
        self._open_methods: dict[int, Span] = {}
        self._open_transactions: dict[tuple, Span] = {}
        self._wire_spans: list[Span] = []
        self._last_notifier: dict[object, str] = {}
        self._finalized = False
        self._bus: ProbeBus | None = None

    # -- wiring ------------------------------------------------------------

    _SUBSCRIPTIONS = (
        (METHOD_CALL, "_on_method_call"),
        (METHOD_QUEUE, "_on_method_queue"),
        (METHOD_GRANT, "_on_method_grant"),
        (METHOD_COMPLETE, "_on_method_complete"),
        (TRANSACTION_BEGIN, "_on_transaction_begin"),
        (TRANSACTION_END, "_on_transaction_end"),
    )
    _CAUSAL_SUBSCRIPTIONS = (
        (EVENT_NOTIFY, "_on_event_notify"),
        (PROCESS_ACTIVATE, "_on_process_activate"),
    )

    def _subscriptions(self) -> tuple:
        if self.causal:
            return self._SUBSCRIPTIONS + self._CAUSAL_SUBSCRIPTIONS
        return self._SUBSCRIPTIONS

    def attach(self, bus: ProbeBus) -> "SpanTracer":
        for kind, handler in self._subscriptions():
            bus.subscribe(kind, getattr(self, handler))
        self._bus = bus
        return self

    def detach(self) -> None:
        if self._bus is None:
            return
        for kind, handler in self._subscriptions():
            self._bus.unsubscribe(kind, getattr(self, handler))
        self._bus = None

    # -- guarded-method handlers ----------------------------------------------

    def _root_for(self, corr_id: str) -> Span:
        root = self.roots.get(corr_id)
        if root is None:
            root = self.roots[corr_id] = Span(
                corr_id, TRANSACTION, 0, corr_id=corr_id
            )
            root.start_time = -1  # computed from children at finalize
        return root

    def _on_method_call(self, time: int, space: object, request) -> None:
        span = Span(
            request.method,
            METHOD,
            time,
            source=getattr(space, "name", repr(space)),
            corr_id=correlation_id_of(request),
        )
        span.meta["client"] = request.client
        self._open_methods[request.seq] = span

    def _on_method_queue(self, time: int, space: object, request) -> None:
        span = self._open_methods.get(request.seq)
        if span is not None:
            span.meta["queued"] = True

    def _on_method_grant(self, time: int, space: object, request) -> None:
        span = self._open_methods.get(request.seq)
        if span is not None:
            span.meta["grant_time"] = time

    def _on_method_complete(self, time: int, space: object, request) -> None:
        span = self._open_methods.pop(request.seq, None)
        if span is None:
            return
        span.end_time = time
        # The correlation id may only be resolvable now (e.g. the command
        # a get_command call *returned*, or the DataType app_data_get
        # fetched).
        corr_id = span.corr_id or correlation_id_of(request)
        span.corr_id = corr_id
        if corr_id is None:
            self.orphans.append(span)
            return
        root = self._root_for(corr_id)
        root.add_child(span)
        # Observable content for cross-refinement consistency checks.
        if span.name == "put_command":
            for value in request.args:
                if hasattr(value, "signature"):
                    root.meta["command_sig"] = value.signature()
                    break
        elif span.name == "app_data_get" and hasattr(request.result, "signature"):
            root.meta["response_sig"] = request.result.signature()

    # -- transaction handlers ---------------------------------------------------

    @staticmethod
    def _txn_key(source: str, payload: object) -> tuple:
        txn_id = getattr(payload, "txn_id", None)
        return (source, txn_id if txn_id is not None else id(payload))

    @staticmethod
    def _payload_span(time: int, source: str, payload: object) -> Span:
        category = WIRE if hasattr(payload, "terminated_by") else BUS
        name = getattr(payload, "command_name", None) or type(payload).__name__
        span = Span(
            name,
            category,
            time,
            source=source,
            corr_id=getattr(payload, "corr_id", None),
            txn_id=getattr(payload, "txn_id", None),
        )
        address = getattr(payload, "address", None)
        if address is not None:
            span.meta["address"] = address
        count = getattr(payload, "count", None)
        if count is not None:
            span.meta["count"] = count
        return span

    def _on_transaction_begin(self, time: int, source: str, payload: object) -> None:
        span = self._payload_span(time, source, payload)
        self._open_transactions[self._txn_key(source, payload)] = span

    def _on_transaction_end(self, time: int, source: str, payload: object) -> None:
        span = self._open_transactions.pop(self._txn_key(source, payload), None)
        if span is None:
            # Begin-less emission (Wishbone classic cycles terminate in
            # the cycle they are observed): a point-like span.
            span = self._payload_span(time, source, payload)
        span.end_time = time
        grant_time = getattr(payload, "grant_time", None)
        if isinstance(grant_time, int):
            span.meta["grant_time"] = grant_time
        if span.category == WIRE:
            span.meta["terminated_by"] = getattr(payload, "terminated_by", None)
            self._add_wire_phases(span, payload)
            self._wire_spans.append(span)
            return
        self._route(span)

    def _route(self, span: Span) -> None:
        if span.corr_id is not None:
            self._root_for(span.corr_id).add_child(span)
        else:
            self.orphans.append(span)

    @staticmethod
    def _add_wire_phases(span: Span, payload: object) -> None:
        """Child spans for the protocol phases a PCI monitor timestamps."""
        devsel = getattr(payload, "devsel_time", None)
        first_data = getattr(payload, "first_data_time", None)
        if devsel is not None:
            phase = Span("devsel_wait", PHASE, span.start_time, span.source)
            phase.end_time = devsel
            span.add_child(phase)
        if first_data is not None and span.end_time is not None:
            phase = Span(
                "data_transfer", PHASE, first_data, span.source
            )
            phase.end_time = span.end_time
            span.add_child(phase)

    # -- causal-edge handlers ---------------------------------------------------

    def _on_event_notify(self, time: int, event: object, cause: object = None) -> None:
        if cause is not None:
            self._last_notifier[event] = getattr(cause, "name", repr(cause))

    def _on_process_activate(
        self, time: int, process: object, cause: object = None
    ) -> None:
        if len(self.activations) >= self.max_causal_edges:
            self.dropped_causal_edges += 1
            return
        via = getattr(cause, "name", None) if cause is not None else None
        notified_by = self._last_notifier.get(cause) if cause is not None else None
        self.activations.append(
            ActivationRecord(
                time, getattr(process, "name", repr(process)), via, notified_by
            )
        )

    # -- finalisation -----------------------------------------------------------

    def finalize(self) -> "SpanTracer":
        """Match wire spans to bus operations, compute root extents."""
        if self._finalized:
            return self
        self._finalized = True
        bus_spans = [
            span
            for root in self.roots.values()
            for span in root.children
            if span.category == BUS and span.complete
        ]
        for wire in self._wire_spans:
            owner = self._match_wire(wire, bus_spans)
            if owner is not None:
                wire.corr_id = owner.corr_id
                owner.add_child(wire)
            else:
                self.orphans.append(wire)
        self._wire_spans = []
        for root in self.roots.values():
            closed = [c for c in root.children if c.complete]
            if closed:
                root.start_time = min(c.start_time for c in closed)
                root.end_time = max(
                    c.end_time for c in closed if c.end_time is not None
                )
        return self

    @staticmethod
    def _match_wire(wire: Span, bus_spans: list[Span]) -> "Span | None":
        """The bus operation a monitor-observed transaction belongs to.

        Monitors see only wires, so the match is by time containment
        (the master drives the bus strictly inside its operation window)
        plus address-range containment (a burst may be split into
        several wire transactions by retries/disconnects).
        """
        address = wire.meta.get("address")
        best: Span | None = None
        for bus_span in bus_spans:
            if bus_span.end_time is None:
                continue
            if not (bus_span.start_time <= wire.start_time <= bus_span.end_time):
                continue
            base = bus_span.meta.get("address")
            count = bus_span.meta.get("count", 1)
            if address is not None and base is not None:
                if not (base <= address < base + 4 * count):
                    continue
            # Prefer the tightest containing window.
            if best is None or bus_span.start_time > best.start_time:
                best = bus_span
        return best

    # -- access ------------------------------------------------------------------

    def transactions(self) -> list[Span]:
        """Finalized root spans, in deterministic (app, sequence) order."""
        self.finalize()
        return [
            self.roots[corr_id]
            for corr_id in sorted(self.roots, key=_corr_sort_key)
        ]

    def complete_transactions(self) -> list[Span]:
        """Roots whose extent could be computed (≥1 closed child)."""
        return [root for root in self.transactions() if root.complete]

    def to_dict(self) -> dict:
        self.finalize()
        return {
            "transactions": [root.to_dict() for root in self.transactions()],
            "orphans": len(self.orphans),
            "causal_edges": len(self.activations),
            "dropped_causal_edges": self.dropped_causal_edges,
        }

    def chrome_events(self) -> list[dict]:
        """The span forest as Chrome trace-event slices (µs timebase)."""
        self.finalize()
        events: list[dict] = []
        for tid, root in enumerate(self.complete_transactions(), start=1):
            for span in root.walk():
                if not span.complete or span.start_time < 0:
                    continue
                events.append(
                    {
                        "name": f"{span.category}:{span.name}",
                        "cat": span.category,
                        "ph": "X",
                        "ts": span.start_time / 1e9,
                        "dur": (span.end_time - span.start_time) / 1e9,
                        "pid": 1,
                        "tid": tid,
                        "args": {
                            "corr_id": span.corr_id,
                            "source": span.source,
                        },
                    }
                )
        return events


class CriticalPath:
    """The notify→wake chain bounding a run's tail latency."""

    def __init__(self, hops: list[ActivationRecord], truncated: bool) -> None:
        self.hops = hops
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self.hops)

    def render(self) -> str:
        if not self.hops:
            return "critical path: no causal edges recorded"
        lines = ["critical path (latest activation backwards):"]
        for hop in self.hops:
            via = f" via {hop.via_event}" if hop.via_event else ""
            src = f" <- {hop.notified_by}" if hop.notified_by else ""
            lines.append(f"  t={hop.time:>12} fs  {hop.process}{via}{src}")
        if self.truncated:
            lines.append("  ... (truncated)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "hops": [
                {
                    "time": hop.time,
                    "process": hop.process,
                    "via_event": hop.via_event,
                    "notified_by": hop.notified_by,
                }
                for hop in self.hops
            ],
            "truncated": self.truncated,
        }


def critical_path(tracer: SpanTracer, max_hops: int = 20) -> CriticalPath:
    """Walk the recorded notify→wake edges backwards from the end.

    Starting at the last process activation, each hop asks *which
    process notified the event that woke this one* and jumps to that
    process's most recent earlier activation — the chain of causally
    ordered work that bounds end-to-end latency.
    """
    records = tracer.activations
    if not records:
        return CriticalPath([], truncated=False)
    hops: list[ActivationRecord] = []
    index = len(records) - 1
    while index >= 0 and len(hops) < max_hops:
        record = records[index]
        hops.append(record)
        if record.notified_by is None:
            return CriticalPath(hops, truncated=False)
        # The notifier's most recent activation before this one.
        cursor = index - 1
        while cursor >= 0 and records[cursor].process != record.notified_by:
            cursor -= 1
        if cursor < 0:
            return CriticalPath(hops, truncated=False)
        index = cursor
    return CriticalPath(hops, truncated=True)
