"""ASCII waveform rendering.

Turns a :class:`~repro.trace.capture.WaveformCapture` into the textual
equivalent of a waveform-viewer screenshot (the paper's Figure 4). One
character column per sample; scalar signals are drawn with level art,
vectors with their hex value at each change.
"""

from __future__ import annotations

import typing

from ..hdl.bitvector import LogicVector
from ..hdl.logic import Logic
from .capture import WaveformCapture

_HIGH = "#"
_LOW = "_"
_UNKNOWN = "?"
_TRISTATE = "~"


def _level_char(value: object) -> str:
    if isinstance(value, LogicVector) and value.width == 1:
        value = value.bit(0)
    if isinstance(value, Logic):
        if value.char == "1":
            return _HIGH
        if value.char == "0":
            return _LOW
        if value.char == "Z":
            return _TRISTATE
        return _UNKNOWN
    if isinstance(value, bool):
        return _HIGH if value else _LOW
    if isinstance(value, int):
        return _HIGH if value else _LOW
    return _UNKNOWN


def _vector_text(value: object) -> str:
    if isinstance(value, LogicVector):
        return value.to_hex()
    return str(value)


def render(
    capture: WaveformCapture,
    signals: typing.Sequence[str],
    start: int,
    stop: int,
    step: int,
    labels: typing.Mapping[str, str] | None = None,
    time_unit: int | None = None,
) -> str:
    """Render *signals* from *capture* over [start, stop) at *step* fs/column.

    :param labels: optional display name per signal path.
    :param time_unit: divisor for the time ruler (defaults to *step*).
    :returns: a multi-line string; scalar signals as ``_##_`` level art,
        vector signals as right-padded hex values at change columns.
    """
    labels = labels or {}
    unit = time_unit or step
    names = list(signals)
    display = [labels.get(name, name.rsplit(".", 1)[-1]) for name in names]
    label_width = max(len(text) for text in display) if display else 0
    columns = range(start, stop, step)

    lines = []
    ruler_cells = []
    for index, time in enumerate(columns):
        ruler_cells.append(str(time // unit) if index % 5 == 0 else "")
    ruler = " " * (label_width + 2)
    for index, cell in enumerate(ruler_cells):
        # Write the tick label left-aligned at its column.
        if cell:
            position = label_width + 2 + index
            if len(ruler) < position:
                ruler += " " * (position - len(ruler))
            ruler = ruler[:position] + cell + ruler[position + len(cell):]
    lines.append(ruler.rstrip())

    for name, text in zip(names, display):
        samples = [capture.value_at(name, time) for time in columns]
        is_scalar = all(
            isinstance(v, (bool, Logic)) or (isinstance(v, LogicVector) and v.width == 1)
            for v in samples
        )
        if is_scalar:
            art = "".join(_level_char(value) for value in samples)
            lines.append(f"{text.ljust(label_width)}  {art}")
        else:
            cells = []
            previous: object = object()
            run = ""
            for value in samples:
                if value != previous:
                    token = _vector_text(value)
                    run = token + "|"
                    previous = value
                cells.append(run[0] if run else ".")
                run = run[1:]
            lines.append(f"{text.ljust(label_width)}  {''.join(cells)}")
    return "\n".join(lines)
