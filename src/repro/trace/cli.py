"""``python -m repro spans`` — causal transaction tracing.

Two modes:

* **Script mode** (``spans examples/pci_system.py``): executes a script
  with a process-wide probe bus installed (same mechanism as ``profile``)
  and a :class:`~repro.trace.spans.SpanTracer` attached, then prints the
  assembled transaction count, the latency-attribution table and the
  critical path, optionally writing a Chrome trace of the span forest.

* **Diff mode** (``spans --diff pin_accurate post_synthesis``): builds
  two refinement levels of the canonical platform over the *same*
  generated workload, traces both, and prints the per-transaction
  consistency + latency diff (:mod:`repro.trace.correlate`). The bus
  family follows the global ``--bus`` flag (default pci), so
  cross-refinement diffing works for wishbone/axi4lite/tlmgp too.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys

from ..instrument.probes import ProbeBus, set_default_bus
from ..instrument.profiler import write_chrome_trace
from .attribution import attribute
from .correlate import SpanDiff, correlate
from .spans import SpanTracer, critical_path

#: Refinement levels ``--diff`` understands, mapped to builders lazily
#: (flow imports pull in the whole platform stack).
DIFF_LEVELS = ("functional", "pin_accurate", "post_synthesis")

#: Acceptance workload for cross-refinement diffs (EXP-SYN: the same
#: workload bench_synthesis_consistency uses).
DIFF_SEED = 55
DIFF_COMMANDS = 25


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "script", nargs="?", default=None,
        help="Python script to trace (e.g. examples/pci_system.py); "
             "omit when using --diff",
    )
    parser.add_argument(
        "script_args", nargs=argparse.REMAINDER,
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--diff", nargs=2, metavar=("A", "B"), choices=DIFF_LEVELS,
        default=None,
        help="correlate two refinement levels over the same workload "
             f"(levels: {', '.join(DIFF_LEVELS)})",
    )
    parser.add_argument(
        "--n-commands", type=int, default=DIFF_COMMANDS, metavar="N",
        help=f"workload length for --diff (default {DIFF_COMMANDS})",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="rows per table (default 10)",
    )
    parser.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the full span report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--chrome", dest="chrome_path", metavar="PATH", default=None,
        help="write the span forest as a Chrome trace-event file",
    )
    parser.add_argument(
        "--no-causal", action="store_true",
        help="skip notify->wake edge recording (no critical path)",
    )
    parser.add_argument(
        "--quiet-script", action="store_true",
        help="suppress the traced script's stdout",
    )


def _run_script(script: str, script_args: list[str], quiet: bool) -> None:
    saved_argv = sys.argv
    sys.argv = [script, *script_args]
    saved_stdout = sys.stdout
    if quiet:
        import io

        sys.stdout = io.StringIO()
    try:
        runpy.run_path(script, run_name="__main__")
    finally:
        sys.stdout = saved_stdout
        sys.argv = saved_argv


def _diff_workload(args: argparse.Namespace) -> list:
    from ..core.workload import generate_workload

    seed = args.seed if getattr(args, "seed", None) is not None else DIFF_SEED
    return generate_workload(
        seed=seed,
        n_commands=args.n_commands,
        address_span=0x400,
        max_burst=4,
        partial_byte_enable_fraction=0.2,
    )


def trace_level(level: str, workload: list, causal: bool = True,
                bus: str = "pci"):
    """Build one refinement level, run it traced, return the tracer.

    :param bus: pin-level family for the ``pin_accurate`` /
        ``post_synthesis`` levels (``functional`` is always the
        behavioural reference element).
    :returns: ``(tracer, run_result)``; the tracer is finalized.
    """
    from ..flow.platforms import (
        build_functional_platform,
        build_platform,
    )
    from ..kernel.simtime import MS

    if level == "functional":
        bundle = build_functional_platform([workload])
        max_time = 100 * MS
    elif level == "pin_accurate":
        bundle = build_platform([workload], bus=bus)
        max_time = 100 * MS
    elif level == "post_synthesis":
        bundle = build_platform([workload], bus=bus, synthesize=True)
        max_time = 200 * MS
    else:
        raise ValueError(f"unknown refinement level {level!r}")
    tracer = SpanTracer(causal=causal).attach(bundle.handle.sim.probes)
    result = bundle.run(max_time)
    tracer.finalize()
    return tracer, result


def diff_levels(
    level_a: str,
    level_b: str,
    workload: list,
    bus: str = "pci",
) -> "tuple[SpanDiff, SpanTracer, SpanTracer]":
    """Trace both levels over *workload* and correlate the span forests."""
    tracer_a, _ = trace_level(level_a, workload, bus=bus)
    tracer_b, _ = trace_level(level_b, workload, bus=bus)
    return correlate(tracer_a, tracer_b, level_a, level_b), tracer_a, tracer_b


def _run_diff(args: argparse.Namespace) -> int:
    level_a, level_b = args.diff
    # The global --bus flag (parsed by __main__) selects the family;
    # default to pci for direct/legacy invocations of this module.
    bus = getattr(args, "bus", None) or "pci"
    if bus == "functional":
        print("spans: --bus functional is the reference side; pick a "
              "pin-level or transaction family", file=sys.stderr)
        return 2
    workload = _diff_workload(args)
    diff, tracer_a, tracer_b = diff_levels(level_a, level_b, workload, bus)

    print(f"== spans diff: {level_a} vs {level_b} "
          f"(bus {bus}, {len(workload)} commands) ==")
    for level, tracer in ((level_a, tracer_a), (level_b, tracer_b)):
        report = attribute(tracer)
        print()
        print(f"-- {level}: {len(report)} transactions, "
              f"mean latency {report.mean_latency:.0f} fs --")
        print(report.render(args.top))
    print()
    print(diff.render(args.top))

    if args.chrome_path:
        write_chrome_trace(args.chrome_path, tracer_b.chrome_events())
        print(f"\nwrote chrome trace ({level_b}): {args.chrome_path}")
    if args.json_path:
        payload = json.dumps(
            {
                "diff": diff.to_dict(),
                "attribution_a": attribute(tracer_a).to_dict(),
                "attribution_b": attribute(tracer_b).to_dict(),
            },
            indent=2,
        )
        _emit_json(args.json_path, payload)
    return 0 if diff.consistent else 1


def _run_script_mode(args: argparse.Namespace) -> int:
    bus = ProbeBus()
    tracer = SpanTracer(causal=not args.no_causal).attach(bus)
    previous = set_default_bus(bus)
    try:
        _run_script(args.script, args.script_args, args.quiet_script)
    finally:
        set_default_bus(previous)
    tracer.finalize()
    report = attribute(tracer)
    path = critical_path(tracer)

    print()
    print(f"== spans: {args.script} ==")
    print(f"{len(tracer.roots)} transactions assembled "
          f"({len(report)} complete), {len(tracer.orphans)} orphan spans, "
          f"{len(tracer.activations)} causal edges")
    if report.transactions:
        print()
        print(report.render(args.top))
    if not args.no_causal:
        print()
        print(path.render())

    if args.chrome_path:
        events = tracer.chrome_events()
        write_chrome_trace(args.chrome_path, events)
        print(f"\nwrote chrome trace: {args.chrome_path} "
              f"({len(events)} slices)")
    if args.json_path:
        payload = json.dumps(
            {
                "script": args.script,
                "spans": tracer.to_dict(),
                "attribution": report.to_dict(),
                "critical_path": path.to_dict(),
            },
            indent=2,
        )
        _emit_json(args.json_path, payload)
    return 0


def _emit_json(path: str, payload: str) -> None:
    if path == "-":
        print(payload)
    else:
        with open(path, "w") as handle:
            handle.write(payload)
        print(f"wrote json report: {path}")


def run(args: argparse.Namespace) -> int:
    if args.diff is not None:
        return _run_diff(args)
    if args.script is None:
        print("spans: a script path or --diff A B is required",
              file=sys.stderr)
        return 2
    return _run_script_mode(args)
