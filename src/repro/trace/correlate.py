"""Cross-refinement trace correlation.

Running the behavioural specification and the synthesized RT model over
the *same* workload yields two span forests whose roots carry the same
correlation ids (``Application.perform`` assigns them deterministically
per application). Matching root against root gives, per transaction:

* a **consistency verdict** — do the observable command/response
  signatures agree? (the paper's behaviour-consistency check, but at
  transaction rather than whole-trace granularity), and
* a **latency delta** — how much end-to-end latency the refinement step
  added, with the attribution breakdown explaining where it went.
"""

from __future__ import annotations

from ..verify.consistency import ConsistencyReport
from .attribution import CATEGORIES, TransactionAttribution
from .spans import SpanTracer, _corr_sort_key


class SpanDiffEntry:
    """One correlated transaction pair (or an unmatched singleton)."""

    def __init__(self, corr_id: str) -> None:
        self.corr_id = corr_id
        self.attribution_a: TransactionAttribution | None = None
        self.attribution_b: TransactionAttribution | None = None
        self.signature_match: bool | None = None

    @property
    def matched(self) -> bool:
        return self.attribution_a is not None and self.attribution_b is not None

    @property
    def latency_a(self) -> int | None:
        return None if self.attribution_a is None else self.attribution_a.total

    @property
    def latency_b(self) -> int | None:
        return None if self.attribution_b is None else self.attribution_b.total

    @property
    def delta(self) -> int | None:
        if not self.matched:
            return None
        return self.latency_b - self.latency_a

    def category_deltas(self) -> dict:
        if not self.matched:
            return {}
        return {
            name: self.attribution_b.categories[name]
            - self.attribution_a.categories[name]
            for name in CATEGORIES
        }

    def to_dict(self) -> dict:
        return {
            "corr_id": self.corr_id,
            "matched": self.matched,
            "signature_match": self.signature_match,
            "latency_a": self.latency_a,
            "latency_b": self.latency_b,
            "delta": self.delta,
            "category_deltas": self.category_deltas(),
        }


class SpanDiff:
    """Per-transaction diff of two refinement levels over one workload."""

    def __init__(
        self,
        label_a: str,
        label_b: str,
        entries: list[SpanDiffEntry],
        report: ConsistencyReport,
    ) -> None:
        self.label_a = label_a
        self.label_b = label_b
        self.entries = entries
        self.report = report

    @property
    def consistent(self) -> bool:
        return self.report.consistent

    @property
    def matched_entries(self) -> list[SpanDiffEntry]:
        return [entry for entry in self.entries if entry.matched]

    @property
    def mean_delta(self) -> float:
        matched = self.matched_entries
        if not matched:
            return 0.0
        return sum(entry.delta for entry in matched) / len(matched)

    def render(self, top: int | None = None) -> str:
        header = (
            f"{'transaction':<24} {'sig':>5} "
            f"{self.label_a:>14} {self.label_b:>14} {'delta':>14}"
        )
        lines = [
            f"span diff: {self.label_a} -> {self.label_b}",
            header,
            "-" * len(header),
        ]
        rows = self.entries if top is None else self.entries[:top]
        for entry in rows:
            sig = {True: "ok", False: "DIFF", None: "?"}[entry.signature_match]
            lat_a = "-" if entry.latency_a is None else str(entry.latency_a)
            lat_b = "-" if entry.latency_b is None else str(entry.latency_b)
            delta = "-" if entry.delta is None else f"{entry.delta:+d}"
            lines.append(
                f"{entry.corr_id:<24} {sig:>5} {lat_a:>14} {lat_b:>14} {delta:>14}"
            )
        if top is not None and len(self.entries) > top:
            lines.append(f"... ({len(self.entries) - top} more)")
        lines.append("-" * len(header))
        lines.append(
            f"{len(self.matched_entries)}/{len(self.entries)} matched, "
            f"mean latency delta {self.mean_delta:+.0f} fs"
        )
        lines.append(self.report.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label_a": self.label_a,
            "label_b": self.label_b,
            "entries": [entry.to_dict() for entry in self.entries],
            "mean_delta": self.mean_delta,
            "consistency": self.report.to_dict(),
        }


def correlate(
    tracer_a: SpanTracer,
    tracer_b: SpanTracer,
    label_a: str = "spec",
    label_b: str = "rtl",
) -> SpanDiff:
    """Match two tracers' transactions by correlation id.

    Both tracers are finalized. Every correlation id seen on either side
    produces one :class:`SpanDiffEntry`; ids present on only one side
    are reported as consistency mismatches, as are matched transactions
    whose observable command/response signatures differ.
    """
    roots_a = {root.corr_id: root for root in tracer_a.transactions()}
    roots_b = {root.corr_id: root for root in tracer_b.transactions()}
    report = ConsistencyReport(label_a, label_b)
    entries: list[SpanDiffEntry] = []
    for corr_id in sorted(set(roots_a) | set(roots_b), key=_corr_sort_key):
        entry = SpanDiffEntry(corr_id)
        root_a = roots_a.get(corr_id)
        root_b = roots_b.get(corr_id)
        if root_a is not None and root_a.complete:
            entry.attribution_a = TransactionAttribution(root_a)
        if root_b is not None and root_b.complete:
            entry.attribution_b = TransactionAttribution(root_b)
        if root_a is None or root_b is None:
            missing = label_b if root_b is None else label_a
            report.add_mismatch(f"{corr_id}: missing from {missing}")
        else:
            report.compared_streams += 1
            entry.signature_match = True
            for key in ("command_sig", "response_sig"):
                sig_a = root_a.meta.get(key)
                sig_b = root_b.meta.get(key)
                if sig_a is None and sig_b is None:
                    continue
                report.compared_items += 1
                if sig_a != sig_b:
                    entry.signature_match = False
                    report.add_mismatch(
                        f"{corr_id}: {key} {sig_a!r} != {sig_b!r}"
                    )
        entries.append(entry)
    return SpanDiff(label_a, label_b, entries, report)
