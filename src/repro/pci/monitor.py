"""Passive PCI bus monitor.

Watches the wires cycle by cycle, reconstructs :class:`~repro.pci.
transaction.PciTransaction` objects, verifies a set of protocol rules
and checks PAR parity. The monitor never drives anything, so the same
instance validates both the behavioural and the synthesized platform —
it produces the observable trace that consistency checking compares.
"""

from __future__ import annotations


from ..errors import ProtocolError
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from .constants import DEVSEL_TIMEOUT, READ_COMMANDS
from .parity import parity_of_vectors
from .signals import PciBus, is_asserted
from .transaction import PciTransaction


class PciMonitor(Module):
    """Protocol checker + transaction recorder.

    :param strict: raise :class:`~repro.errors.ProtocolError` on rule
        violations (otherwise they are only recorded in
        :attr:`violations`).
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: PciBus,
        clk: Signal,
        strict: bool = True,
    ) -> None:
        super().__init__(parent, name)
        self.bus = bus
        self.clk = clk
        self.strict = strict
        self.transactions: list[PciTransaction] = []
        self.violations: list[str] = []
        self.parity_errors = 0
        self.cycles_observed = 0
        self.busy_cycles = 0
        self._current: PciTransaction | None = None
        self._devsel_seen = False
        self._devsel_wait = 0
        self._last_ad = None
        self._last_cbe = None
        self._ad_was_defined = False
        self.thread(self._watch, "watch")

    # -- helpers ----------------------------------------------------------------

    def _violation(self, message: str) -> None:
        text = f"{self.sim.time_str()}: {message}"
        self.violations.append(text)
        self.sim.report_detection(self.path, text)
        if self.strict:
            raise ProtocolError(f"{self.path}: {text}")

    @property
    def completed_transactions(self) -> list[PciTransaction]:
        return [t for t in self.transactions if t.end_time is not None]

    def signatures(self) -> list[tuple]:
        """Observable content stream for consistency comparison."""
        return [t.signature() for t in self.completed_transactions]

    # -- the watcher process --------------------------------------------------------

    def _watch(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            self.cycles_observed += 1
            frame = is_asserted(bus.frame_n.read())
            irdy = is_asserted(bus.irdy_n.read())
            trdy = is_asserted(bus.trdy_n.read())
            devsel = is_asserted(bus.devsel_n.read())
            stop = is_asserted(bus.stop_n.read())
            ad = bus.ad.read()
            cbe = bus.cbe_n.read()

            if not (frame or irdy):
                busy = False
            else:
                busy = True
                self.busy_cycles += 1

            # Parity check: PAR this cycle covers AD/CBE of the previous one.
            self._check_parity()
            self._last_ad, self._last_cbe = ad, cbe

            if self._current is None:
                if frame:
                    # Address phase.
                    if not ad.is_fully_defined or not cbe.is_fully_defined:
                        self._violation(
                            f"address phase with undefined AD ({ad}) or C/BE ({cbe})"
                        )
                        yield from self._wait_idle()
                        continue
                    self._current = PciTransaction(
                        cbe.to_int(), ad.to_int(), self.sim.time
                    )
                    self._current.txn_id = new_txn_id()
                    self.transactions.append(self._current)
                    probes = self.sim._probes
                    if probes is not None:
                        probes.emit(
                            TRANSACTION_BEGIN,
                            self.sim.time,
                            self.path,
                            self._current,
                        )
                    self._devsel_seen = False
                    self._devsel_wait = 0
                elif irdy:
                    self._violation("IRDY# asserted with no transaction in progress")
                continue

            # A transaction is in progress.
            transaction = self._current
            if not self._devsel_seen:
                if devsel:
                    self._devsel_seen = True
                    transaction.devsel_time = self.sim.time
                elif not frame and not irdy:
                    # Master abort completed.
                    transaction.terminated_by = "master_abort"
                    self._end_transaction()
                    continue
                else:
                    self._devsel_wait += 1
                    if self._devsel_wait > DEVSEL_TIMEOUT + 3:
                        self._violation(
                            "initiator kept the bus despite DEVSEL# timeout"
                        )
                    continue

            if trdy and not devsel:
                self._violation("TRDY# asserted without DEVSEL#")
            if irdy and trdy:
                # Data transfer this cycle.
                if transaction.first_data_time is None:
                    transaction.first_data_time = self.sim.time
                if transaction.command in READ_COMMANDS:
                    if not ad.is_fully_defined:
                        self._violation(f"read data transfer with undefined AD ({ad})")
                    else:
                        transaction.data.append(ad.to_int())
                else:
                    if not ad.is_fully_defined:
                        self._violation(f"write data transfer with undefined AD ({ad})")
                    else:
                        transaction.data.append(ad.to_int())
                if cbe.is_fully_defined:
                    transaction.byte_enables.append(
                        (~cbe.to_int()) & self.bus.byte_enable_mask
                    )
                else:
                    self._violation(f"data transfer with undefined C/BE# ({cbe})")
                if stop:
                    transaction.terminated_by = "disconnect_with_data"
            elif stop and not trdy and transaction.terminated_by == "completion":
                transaction.terminated_by = (
                    "retry" if not transaction.data else "disconnect_without_data"
                )

            if not frame and not irdy:
                # Bus returned to idle: transaction over.
                self._end_transaction()

    def _end_transaction(self) -> None:
        assert self._current is not None
        self._current.end_time = self.sim.time
        probes = self.sim._probes
        if probes is not None:
            probes.emit(
                TRANSACTION_END, self.sim.time, self.path, self._current
            )
        self._current = None

    def _wait_idle(self):
        while True:
            yield self.clk.posedge
            if self.bus.idle:
                return

    def _check_parity(self) -> None:
        if self._last_ad is None or self._last_cbe is None:
            return
        expected = parity_of_vectors(self._last_ad, self._last_cbe)
        if expected is None:
            return
        par = self.bus.par.read()
        if not par.is_fully_defined:
            return
        if par.to_int() != expected:
            self.parity_errors += 1
            if self._current is not None:
                self._current.parity_errors += 1
            self._violation(
                f"PAR={par.to_int()} does not cover previous cycle "
                f"(expected {expected})"
            )
