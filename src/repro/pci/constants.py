"""Simplified-PCI protocol constants.

The paper implements "a simplified version of the PCI bus"; this module
pins down exactly which subset: 32-bit multiplexed AD, the memory
read/write command pair (plus the command encodings of the full spec for
completeness), medium DEVSEL# decode timing, target retry / disconnect
via STOP#, and even parity on PAR.
"""

from __future__ import annotations

#: PCI bus command encodings (C/BE# lines during the address phase).
CMD_INTERRUPT_ACK = 0x0
CMD_SPECIAL_CYCLE = 0x1
CMD_IO_READ = 0x2
CMD_IO_WRITE = 0x3
CMD_MEM_READ = 0x6
CMD_MEM_WRITE = 0x7
CMD_CONFIG_READ = 0xA
CMD_CONFIG_WRITE = 0xB
CMD_MEM_READ_MULTIPLE = 0xC
CMD_MEM_READ_LINE = 0xE
CMD_MEM_WRITE_INVALIDATE = 0xF

COMMAND_NAMES = {
    CMD_INTERRUPT_ACK: "interrupt_ack",
    CMD_SPECIAL_CYCLE: "special_cycle",
    CMD_IO_READ: "io_read",
    CMD_IO_WRITE: "io_write",
    CMD_MEM_READ: "mem_read",
    CMD_MEM_WRITE: "mem_write",
    CMD_CONFIG_READ: "config_read",
    CMD_CONFIG_WRITE: "config_write",
    CMD_MEM_READ_MULTIPLE: "mem_read_multiple",
    CMD_MEM_READ_LINE: "mem_read_line",
    CMD_MEM_WRITE_INVALIDATE: "mem_write_invalidate",
}

#: Commands that read data from a target.
READ_COMMANDS = frozenset(
    {CMD_MEM_READ, CMD_MEM_READ_MULTIPLE, CMD_MEM_READ_LINE, CMD_IO_READ,
     CMD_CONFIG_READ}
)
#: Commands that write data to a target.
WRITE_COMMANDS = frozenset(
    {CMD_MEM_WRITE, CMD_MEM_WRITE_INVALIDATE, CMD_IO_WRITE, CMD_CONFIG_WRITE}
)
#: Memory-space commands our simplified targets decode.
MEMORY_COMMANDS = frozenset(
    {CMD_MEM_READ, CMD_MEM_READ_MULTIPLE, CMD_MEM_READ_LINE, CMD_MEM_WRITE,
     CMD_MEM_WRITE_INVALIDATE}
)

def cbe_width_for(data_width: int) -> int:
    """C/BE# lines for a given AD width (one enable per byte lane)."""
    if data_width < 8 or data_width % 8:
        raise ValueError(
            f"AD width must be a positive multiple of 8, got {data_width}"
        )
    return data_width // 8


def byte_enable_mask(data_width: int) -> int:
    """All byte enables active for a given AD width (0xF at 32 bits)."""
    return (1 << cbe_width_for(data_width)) - 1


def data_mask(data_width: int) -> int:
    """All AD lines high for a given AD width (0xFFFFFFFF at 32 bits)."""
    return (1 << data_width) - 1


#: Bus width of the multiplexed address/data lines (the default
#: elaboration; parameterized buses derive their own masks through the
#: functions above instead of these fixed constants).
AD_WIDTH = 32
#: Width of the command / byte-enable lines, derived from AD_WIDTH.
CBE_WIDTH = cbe_width_for(AD_WIDTH)

#: Clocks a master waits for DEVSEL# before signalling master-abort
#: (fast=1, medium=2, slow=3, subtractive=4 in real PCI; we allow 5).
DEVSEL_TIMEOUT = 5

#: Completion status codes reported on an operation.
STATUS_OK = "ok"
STATUS_MASTER_ABORT = "master_abort"
STATUS_TARGET_ABORT = "target_abort"
STATUS_PENDING = "pending"
