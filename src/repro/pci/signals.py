"""The PCI wire bundle.

:class:`PciBus` owns every shared wire of one bus segment. The shared
control lines (FRAME#, IRDY#, TRDY#, DEVSEL#, STOP#) and the multiplexed
AD / C/BE# / PAR lines are resolved (tri-stateable) signals: agents drive
them through per-agent :class:`~repro.hdl.resolved.BusDriver` handles and
release them to ``Z`` when not the owner, exactly as on the real bus.

Sampling helpers treat an undriven (``Z``) control line as deasserted —
the behaviour the bus pull-ups give on real hardware.
"""

from __future__ import annotations

from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.resolved import ResolvedSignal
from ..hdl.signal import Signal
from ..kernel.simulator import Simulator
from .constants import AD_WIDTH, byte_enable_mask, cbe_width_for, data_mask


def is_asserted(value: LogicVector) -> bool:
    """Active-low control line sampled asserted (driven to 0)."""
    return value.is_fully_defined and value.to_int() == 0


def is_deasserted(value: LogicVector) -> bool:
    """Active-low line deasserted: driven 1 or floating (pull-up)."""
    return not is_asserted(value)


class PciBus(Module):
    """All shared wires of one PCI segment, plus per-master REQ#/GNT#.

    :param n_masters: how many REQ#/GNT# pairs to create.
    :param ad_width: elaboration width of the multiplexed AD lines; the
        C/BE# width and the byte-enable/data masks derive from it.
    """

    def __init__(
        self,
        parent: "Module | Simulator",
        name: str,
        n_masters: int = 1,
        ad_width: int = AD_WIDTH,
    ) -> None:
        super().__init__(parent, name)
        self.n_masters = n_masters
        #: Structural widths/masks the agents elaborate against.
        self.ad_width = ad_width
        self.cbe_width = cbe_width_for(ad_width)
        self.byte_enable_mask = byte_enable_mask(ad_width)
        self.data_mask = data_mask(ad_width)
        self.frame_n = self.resolved_signal("frame_n", 1)
        self.irdy_n = self.resolved_signal("irdy_n", 1)
        self.trdy_n = self.resolved_signal("trdy_n", 1)
        self.devsel_n = self.resolved_signal("devsel_n", 1)
        self.stop_n = self.resolved_signal("stop_n", 1)
        self.ad = self.resolved_signal("ad", ad_width)
        self.cbe_n = self.resolved_signal("cbe_n", self.cbe_width)
        self.par = self.resolved_signal("par", 1)
        self.req_n: list[Signal] = [
            self.signal(f"req_n_{i}", width=1, init=1) for i in range(n_masters)
        ]
        self.gnt_n: list[Signal] = [
            self.signal(f"gnt_n_{i}", width=1, init=1) for i in range(n_masters)
        ]

    # -- sampling helpers (committed values, i.e. as of the clock edge) -------

    @property
    def idle(self) -> bool:
        """Bus idle: FRAME# and IRDY# both deasserted."""
        return is_deasserted(self.frame_n.read()) and is_deasserted(self.irdy_n.read())

    def control_view(self) -> dict[str, bool]:
        """Snapshot of the asserted/deasserted state of the control lines."""
        return {
            "frame": is_asserted(self.frame_n.read()),
            "irdy": is_asserted(self.irdy_n.read()),
            "trdy": is_asserted(self.trdy_n.read()),
            "devsel": is_asserted(self.devsel_n.read()),
            "stop": is_asserted(self.stop_n.read()),
        }

    def shared_signals(self) -> list[ResolvedSignal]:
        """The tri-state wires, in waveform display order."""
        return [
            self.frame_n,
            self.irdy_n,
            self.trdy_n,
            self.devsel_n,
            self.stop_n,
            self.ad,
            self.cbe_n,
            self.par,
        ]


class PciAgentPins:
    """One agent's driver handles on the shared wires.

    Created per master/target so each drives (and releases) its own
    contribution to the resolved lines.
    """

    def __init__(self, bus: PciBus, agent_path: str) -> None:
        self.bus = bus
        self.frame_n = bus.frame_n.get_driver(agent_path)
        self.irdy_n = bus.irdy_n.get_driver(agent_path)
        self.trdy_n = bus.trdy_n.get_driver(agent_path)
        self.devsel_n = bus.devsel_n.get_driver(agent_path)
        self.stop_n = bus.stop_n.get_driver(agent_path)
        self.ad = bus.ad.get_driver(agent_path)
        self.cbe_n = bus.cbe_n.get_driver(agent_path)
        self.par = bus.par.get_driver(agent_path)

    def release_all(self) -> None:
        for driver in (
            self.frame_n,
            self.irdy_n,
            self.trdy_n,
            self.devsel_n,
            self.stop_n,
            self.ad,
            self.cbe_n,
            self.par,
        ):
            driver.release()
