"""PCI parity generation and checking.

PAR carries even parity over the 32 AD lines and the 4 C/BE# lines: the
number of '1's across AD, C/BE# and PAR together is even. PAR lags the
lines it protects by one clock, which is handled by the agents, not here.
"""

from __future__ import annotations

from ..hdl.bitvector import LogicVector


def parity_of(ad_value: int, cbe_value: int) -> int:
    """Even-parity bit over AD[31:0] and C/BE#[3:0]."""
    combined = (ad_value & 0xFFFFFFFF) | ((cbe_value & 0xF) << 32)
    parity = 0
    while combined:
        parity ^= combined & 1
        combined >>= 1
    return parity


def parity_of_vectors(ad: LogicVector, cbe: LogicVector) -> int | None:
    """Parity over sampled vectors; ``None`` when either has X/Z bits."""
    if not ad.is_fully_defined or not cbe.is_fully_defined:
        return None
    return parity_of(ad.to_int(), cbe.to_int())
