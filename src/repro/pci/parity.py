"""PCI parity generation and checking.

PAR carries even parity over the AD lines and the C/BE# lines: the
number of '1's across AD, C/BE# and PAR together is even. PAR lags the
lines it protects by one clock, which is handled by the agents, not
here. The span of lines protected follows the bus elaboration width —
32-bit AD plus 4 C/BE# lines by default.
"""

from __future__ import annotations

from ..hdl.bitvector import LogicVector
from .constants import AD_WIDTH, byte_enable_mask, data_mask


def parity_of(ad_value: int, cbe_value: int, ad_width: int = AD_WIDTH) -> int:
    """Even-parity bit over AD[ad_width-1:0] and its C/BE# lanes."""
    combined = (ad_value & data_mask(ad_width)) | (
        (cbe_value & byte_enable_mask(ad_width)) << ad_width
    )
    parity = 0
    while combined:
        parity ^= combined & 1
        combined >>= 1
    return parity


def parity_of_vectors(ad: LogicVector, cbe: LogicVector) -> int | None:
    """Parity over sampled vectors; ``None`` when either has X/Z bits.

    The protected span is taken from the AD vector itself, so monitors
    and agents on a non-default-width bus check the right lines.
    """
    if not ad.is_fully_defined or not cbe.is_fully_defined:
        return None
    return parity_of(ad.to_int(), cbe.to_int(), ad.width)
