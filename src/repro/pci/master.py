"""Pin-level PCI master (initiator).

The master owns REQ#, FRAME#, IRDY# and drives AD / C/BE# / PAR during
address phases and write data phases. Operations are queued with
:meth:`PciMaster.submit` and executed in order by the engine process;
:meth:`transact` is the blocking helper for thread processes.

Termination handling implemented: normal completion, target retry
(STOP# before data), disconnect with data (STOP# with TRDY#), and
master abort (DEVSEL# timeout).
"""

from __future__ import annotations

from collections import deque

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..instrument.probes import TRANSACTION_BEGIN, TRANSACTION_END, new_txn_id
from ..kernel.event import Event
from .constants import (
    DEVSEL_TIMEOUT,
    STATUS_MASTER_ABORT,
    STATUS_OK,
)
from .parity import parity_of
from .signals import PciAgentPins, PciBus, is_asserted
from .transaction import PciOperation


class PciMaster(Module):
    """A bus initiator with an in-order operation queue.

    :param bus: the wire bundle.
    :param clk: bus clock.
    :param master_index: which REQ#/GNT# pair this master uses.
    :param max_retries: give up (ProtocolError) after this many retry
        terminations of a single operation.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: PciBus,
        clk: Signal,
        master_index: int = 0,
        max_retries: int = 1000,
    ) -> None:
        super().__init__(parent, name)
        if not 0 <= master_index < bus.n_masters:
            raise ProtocolError(
                f"master index {master_index} out of range "
                f"(bus has {bus.n_masters} REQ#/GNT# pairs)"
            )
        self.bus = bus
        self.clk = clk
        self.master_index = master_index
        self.max_retries = max_retries
        self.pins = PciAgentPins(bus, self.path)
        self.req_n = bus.req_n[master_index]
        self.gnt_n = bus.gnt_n[master_index]
        self._queue: deque[tuple[PciOperation, Event]] = deque()
        self._op_available = self.event("op_available")
        self._drove_ad = False
        #: When True, read data phases are checked against the PAR the
        #: target drives one cycle later (PERR#-style detection); a
        #: mismatch flags ``operation.parity_error``.
        self.check_parity = False
        self._parity_pending: tuple[int, PciOperation] | None = None
        # Statistics.
        self.ops_completed = 0
        self.words_transferred = 0
        self.retries_seen = 0
        self.aborts_seen = 0
        self.parity_errors_seen = 0
        self.thread(self._engine, "engine")

    # -- public API ----------------------------------------------------------

    def submit(self, operation: PciOperation) -> Event:
        """Queue *operation*; the returned event fires on completion."""
        done = self.event(f"op_done_{operation.command_name}")
        operation.enqueue_time = self.sim.time
        self._queue.append((operation, done))
        self._op_available.notify()
        return done

    def transact(self, operation: PciOperation):
        """Blocking helper: ``yield from master.transact(op)`` returns *op*."""
        done = self.submit(operation)
        yield done
        return operation

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- engine process ----------------------------------------------------------

    def _engine(self):
        while True:
            if not self._queue:
                self.req_n.write(1)
                yield self._op_available
                continue
            operation, done = self._queue.popleft()
            yield from self._run_operation(operation)
            done.notify_delta()

    def _run_operation(self, operation: PciOperation):
        operation.start_time = self.sim.time
        if operation.txn_id is None:
            operation.txn_id = new_txn_id()
        probes = self.sim._probes
        if probes is not None:
            probes.emit(TRANSACTION_BEGIN, self.sim.time, self.path, operation)
        words_done = 0
        while True:
            outcome, words_done = yield from self._attempt(operation, words_done)
            if outcome == "abort":
                operation.status = STATUS_MASTER_ABORT
                self.aborts_seen += 1
                break
            if words_done >= operation.count:
                # Either a clean completion or a disconnect that landed
                # exactly on the final word.
                operation.status = STATUS_OK
                self.ops_completed += 1
                break
            # Retried or disconnected with words remaining: go again.
            operation.retries += 1
            self.retries_seen += 1
            if operation.retries > self.max_retries:
                raise ProtocolError(
                    f"{self.path}: {operation!r} exceeded {self.max_retries} retries"
                )
        operation.complete_time = self.sim.time
        if probes is not None:
            probes.emit(TRANSACTION_END, self.sim.time, self.path, operation)

    # -- one arbitration + transaction attempt --------------------------------------

    def _attempt(self, operation: PciOperation, words_done: int):
        bus = self.bus
        pins = self.pins
        remaining = operation.count - words_done
        address = operation.address + 4 * words_done

        # Arbitration: request, wait for grant on an idle bus.
        self.req_n.write(0)
        while True:
            yield self.clk.posedge
            self._parity_duty()
            if is_asserted(self.gnt_n.read()) and bus.idle:
                break
        if operation.grant_time is None:
            operation.grant_time = self.sim.time

        # Address phase.
        pins.frame_n.write(0)
        pins.irdy_n.write(1)
        pins.ad.write(LogicVector(bus.ad_width, address))
        pins.cbe_n.write(LogicVector(bus.cbe_width, operation.command))
        self._drive_ad_flag(True)
        yield self.clk.posedge
        self._parity_duty()

        # First data phase.
        wire_enables = (~operation.byte_enables) & bus.byte_enable_mask
        pins.cbe_n.write(LogicVector(bus.cbe_width, wire_enables))
        pins.irdy_n.write(0)
        if operation.is_write:
            pins.ad.write(LogicVector(bus.ad_width, operation.data[words_done]))
            self._drive_ad_flag(True)
        else:
            pins.ad.release()
            self._drive_ad_flag(False)
        if remaining == 1:
            pins.frame_n.write(1)
        frame_low = remaining > 1

        devsel_seen = False
        devsel_wait = 0
        transferred = 0
        while True:
            yield self.clk.posedge
            self._parity_duty()
            trdy = is_asserted(bus.trdy_n.read())
            devsel = is_asserted(bus.devsel_n.read())
            stop = is_asserted(bus.stop_n.read())

            if not devsel_seen:
                if devsel:
                    devsel_seen = True
                else:
                    devsel_wait += 1
                    if devsel_wait > DEVSEL_TIMEOUT:
                        yield from self._back_off(frame_low)
                        return "abort", words_done
                    continue

            transfer_now = trdy  # our IRDY# is asserted throughout
            if transfer_now:
                if operation.is_read:
                    data = bus.ad.read()
                    if not data.is_fully_defined:
                        raise ProtocolError(
                            f"{self.path}: read data undefined ({data}) at "
                            f"{self.sim.time_str()}"
                        )
                    operation.data.append(data.to_int())
                    if self.check_parity:
                        cbe = bus.cbe_n.read()
                        if cbe.is_fully_defined:
                            self._parity_pending = (
                                parity_of(data.to_int(), cbe.to_int(),
                                          self.bus.ad_width),
                                operation,
                            )
                transferred += 1
                words_done += 1
                self.words_transferred += 1

            if stop:
                yield from self._back_off(frame_low)
                return "stopped", words_done

            if transfer_now:
                if transferred == remaining:
                    # Final transfer done (FRAME# was already deasserted).
                    pins.irdy_n.write(1)
                    pins.ad.release()
                    self._drive_ad_flag(False)
                    pins.cbe_n.release()
                    yield self.clk.posedge
                    self._parity_duty()
                    self._release_bus()
                    return "done", words_done
                # Set up the next data phase.
                if operation.is_write:
                    pins.ad.write(LogicVector(bus.ad_width, operation.data[words_done]))
                    self._drive_ad_flag(True)
                if remaining - transferred == 1:
                    pins.frame_n.write(1)
                    frame_low = False

    def _back_off(self, frame_still_low: bool):
        """Orderly termination: FRAME# up, then IRDY# up, then release."""
        pins = self.pins
        if frame_still_low:
            pins.frame_n.write(1)
            yield self.clk.posedge
            self._parity_duty()
        pins.irdy_n.write(1)
        pins.ad.release()
        self._drive_ad_flag(False)
        pins.cbe_n.release()
        yield self.clk.posedge
        self._parity_duty()
        self._release_bus()

    def _release_bus(self) -> None:
        self.pins.release_all()
        self._drove_ad = False

    # -- parity -----------------------------------------------------------------------

    def _drive_ad_flag(self, driving: bool) -> None:
        self._drove_ad = driving

    def _parity_duty(self) -> None:
        """Drive PAR for the cycle that just ended if we owned AD in it.

        Also the check point for read-data parity: PAR lags AD by one
        cycle, so the expectation recorded at a data transfer is compared
        against the wire here, one posedge later.
        """
        pending = self._parity_pending
        if pending is not None:
            self._parity_pending = None
            expected, operation = pending
            par = self.bus.par.read()
            if par.is_fully_defined and par.to_int() != expected:
                operation.parity_error = True
                self.parity_errors_seen += 1
        if self._drove_ad:
            ad = self.bus.ad.read()
            cbe = self.bus.cbe_n.read()
            if ad.is_fully_defined and cbe.is_fully_defined:
                self.pins.par.write(
                    parity_of(ad.to_int(), cbe.to_int(), self.bus.ad_width)
                )
                return
        self.pins.par.release()
