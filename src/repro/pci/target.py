"""Pin-level PCI target.

A :class:`PciTarget` claims memory transactions that hit its base
address register, answers with configurable DEVSEL# decode latency and
per-word wait states, and can terminate early with retry or disconnect
via STOP#. Data lives in any :class:`~repro.tlm.interfaces.TlmTarget`
(functional memory, register block, DMA...), so the same IP model serves
both the functional and the pin-accurate platform — the substitution at
the heart of the paper's refinement flow.

Wire conventions (real PCI): the command is carried unencoded on C/BE#
during the address phase; during data phases C/BE# carry *active-low*
byte enables (lane enabled = 0 on the wire). Reads insert the mandatory
turnaround cycle between the address phase and the first data phase.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..hdl.bitvector import LogicVector
from ..hdl.module import Module
from ..hdl.signal import Signal
from ..tlm.interfaces import TlmTarget
from .config_space import PciConfigSpace
from .constants import (
    CMD_CONFIG_READ,
    CMD_CONFIG_WRITE,
    MEMORY_COMMANDS,
    READ_COMMANDS,
)
from .parity import parity_of
from .signals import PciAgentPins, PciBus, is_asserted, is_deasserted


class _MasterWentIdle(Exception):
    """Internal: the initiator abandoned the transaction."""


class PciTarget(Module):
    """A memory-mapped target device on the bus.

    :param bus: the wire bundle.
    :param clk: bus clock signal.
    :param store: the functional model behind this target.
    :param base: BAR base byte address (word aligned).
    :param size: BAR window size in bytes.
    :param decode_latency: clocks from address phase to DEVSEL# (1 =
        fast, 2 = medium, ...).
    :param wait_states: TRDY# delay inserted before every data phase.
    :param retry_count: force this many retry terminations at the start
        of every new transaction (then accept it).
    :param disconnect_after: accept at most this many words per
        transaction, then disconnect with data (None = unlimited).
    :param config_space: optional :class:`PciConfigSpace`. When present,
        the memory window comes from the programmable BAR0 (the static
        *base*/*size* become irrelevant once software reprograms it) and
        the target claims type-0 configuration cycles addressed to it.
    :param idsel_index: which AD line (16 + index) acts as this
        device's IDSEL during configuration cycles.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: PciBus,
        clk: Signal,
        store: TlmTarget,
        base: int,
        size: int,
        decode_latency: int = 1,
        wait_states: int = 0,
        retry_count: int = 0,
        disconnect_after: int | None = None,
        config_space: PciConfigSpace | None = None,
        idsel_index: int = 0,
    ) -> None:
        super().__init__(parent, name)
        if base % 4 or size <= 0 or size % 4:
            raise ProtocolError(f"bad BAR base={base:#x} size={size:#x}")
        if decode_latency < 1:
            raise ProtocolError("decode latency must be >= 1 clock")
        if wait_states < 0:
            raise ProtocolError("wait states must be >= 0")
        if disconnect_after is not None and disconnect_after < 1:
            raise ProtocolError("disconnect_after must be >= 1 word")
        self.bus = bus
        self.clk = clk
        self.store = store
        self.base = base
        self.size = size
        self.decode_latency = decode_latency
        self.wait_states = wait_states
        self.retry_count = retry_count
        self.disconnect_after = disconnect_after
        if not 0 <= idsel_index <= 15:
            raise ProtocolError(f"idsel_index must be 0..15, got {idsel_index}")
        self.config_space = config_space
        self.idsel_index = idsel_index
        self.pins = PciAgentPins(bus, self.path)
        self._drove_ad = False
        # Statistics.
        self.transactions_claimed = 0
        self.words_served = 0
        self.retries_issued = 0
        self.disconnects_issued = 0
        self._retries_left = retry_count
        self.thread(self._run, "protocol")

    def decodes(self, address: int) -> bool:
        if self.config_space is not None:
            return self.config_space.decodes_memory(address)
        return self.base <= address < self.base + self.size

    def _idsel_hit(self, address: int) -> bool:
        """Configuration cycle addressed to this device's IDSEL line."""
        return bool(address & (1 << (16 + self.idsel_index)))

    # -- protocol engine ----------------------------------------------------------

    def _run(self):
        bus = self.bus
        while True:
            yield self.clk.posedge
            self._parity_duty()
            if not is_asserted(bus.frame_n.read()):
                continue
            ad = bus.ad.read()
            cbe = bus.cbe_n.read()
            if not (ad.is_fully_defined and cbe.is_fully_defined):
                yield from self._wait_bus_idle()
                continue
            address = ad.to_int()
            command = cbe.to_int()
            if command in MEMORY_COMMANDS and self.decodes(address):
                window = (
                    self.config_space.bar0_base
                    if self.config_space is not None else self.base
                )
                read_fn = lambda a: self.store.read_word(a - window)
                write_fn = lambda a, d, e: self.store.write_word(
                    a - window, d, e
                )
            elif (
                command in (CMD_CONFIG_READ, CMD_CONFIG_WRITE)
                and self.config_space is not None
                and self._idsel_hit(address)
            ):
                space = self.config_space
                read_fn = lambda a: space.config_read(a & 0xFF)
                write_fn = lambda a, d, e: space.config_write(a & 0xFF, d, e)
            else:
                yield from self._wait_bus_idle()
                continue
            try:
                yield from self._claimed_transaction(
                    address, command, read_fn, write_fn
                )
            except _MasterWentIdle:
                pass
            self.pins.release_all()
            self._drove_ad = False

    def _wait_bus_idle(self):
        """Sit out a transaction addressed to someone else."""
        while True:
            yield self.clk.posedge
            if self.bus.idle:
                return

    def _tick(self):
        """One clock: advance, fulfil parity duty, detect master abandon."""
        yield self.clk.posedge
        self._parity_duty()
        if self.bus.idle:
            raise _MasterWentIdle()

    def _claimed_transaction(self, address: int, command: int, read_fn,
                             write_fn):
        pins = self.pins
        bus = self.bus
        self.transactions_claimed += 1
        is_read = command in READ_COMMANDS

        # DEVSEL# appears decode_latency clocks after the address phase.
        for __ in range(self.decode_latency - 1):
            yield from self._tick()
        pins.devsel_n.write(0)

        if self._retries_left > 0:
            self._retries_left -= 1
            self.retries_issued += 1
            yield from self._terminate(retry=True)
            return
        self._retries_left = self.retry_count

        if is_read:
            # Mandatory bus turnaround before the target may drive AD.
            pins.trdy_n.write(1)
            yield from self._tick()

        current_address = address
        words_done = 0
        while True:
            for __ in range(self.wait_states):
                pins.trdy_n.write(1)
                if self._drove_ad:
                    pins.ad.release()
                    self._drove_ad = False
                yield from self._tick()

            stopping = (
                self.disconnect_after is not None
                and words_done + 1 >= self.disconnect_after
            )
            if is_read:
                value = read_fn(current_address)
                pins.ad.write(LogicVector(bus.ad_width, value))
                self._drove_ad = True
            pins.trdy_n.write(0)
            if stopping:
                pins.stop_n.write(0)

            # Wait for the transfer edge (IRDY# and TRDY# sampled low).
            while True:
                yield from self._tick()
                if is_asserted(bus.irdy_n.read()) and is_asserted(bus.trdy_n.read()):
                    break
            frame_still = is_asserted(bus.frame_n.read())
            if not is_read:
                data = bus.ad.read()
                cbe = bus.cbe_n.read()
                if not data.is_fully_defined or not cbe.is_fully_defined:
                    raise ProtocolError(
                        f"{self.path}: write data phase with undefined AD/CBE "
                        f"at {self.sim.time_str()}"
                    )
                enables = (~cbe.to_int()) & bus.byte_enable_mask
                write_fn(current_address, data.to_int(), enables)
            self.words_served += 1
            words_done += 1
            current_address += 4

            if stopping:
                self.disconnects_issued += 1
                yield from self._terminate(retry=False)
                return
            if not frame_still:
                # That was the final data phase; hand the bus back.
                yield from self._final_parity()
                return

    def _terminate(self, retry: bool):
        """STOP# termination; hold STOP# until the master backs off."""
        pins = self.pins
        pins.trdy_n.write(1)
        pins.stop_n.write(0)
        if self._drove_ad:
            pins.ad.release()
            self._drove_ad = False
        while True:
            yield self.clk.posedge
            self._parity_duty()
            if is_deasserted(self.bus.frame_n.read()) and is_deasserted(
                self.bus.irdy_n.read()
            ):
                return

    def _final_parity(self):
        """One extra cycle to drive PAR for the last read data phase."""
        pins = self.pins
        pins.trdy_n.write(1)
        pins.devsel_n.write(1)
        if self._drove_ad:
            pins.ad.release()
            # The flag stays set so _parity_duty covers the final cycle.
        yield self.clk.posedge
        self._parity_duty()
        self._drove_ad = False

    # -- parity ----------------------------------------------------------------------

    def _parity_duty(self) -> None:
        """Drive PAR for the cycle that just ended if we owned AD in it."""
        if self._drove_ad:
            ad = self.bus.ad.read()
            cbe = self.bus.cbe_n.read()
            if ad.is_fully_defined and cbe.is_fully_defined:
                self.pins.par.write(
                    parity_of(ad.to_int(), cbe.to_int(), self.bus.ad_width)
                )
                return
        self.pins.par.release()
