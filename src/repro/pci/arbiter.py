"""Central PCI bus arbiter (REQ#/GNT# rotation).

Implements hidden (overlapped) arbitration: GNT# can move to the next
requester while the current transaction is still in progress; a granted
master additionally waits for bus idle before starting its address phase.
"""

from __future__ import annotations

from ..hdl.module import Module
from ..hdl.signal import Signal
from .signals import PciBus


class PciCentralArbiter(Module):
    """Round-robin arbiter over the bus's REQ#/GNT# pairs.

    The grant parks on the current owner while its REQ# stays asserted;
    when the owner deasserts (or never asserts), the grant rotates to the
    next requesting master.
    """

    def __init__(
        self,
        parent: Module,
        name: str,
        bus: PciBus,
        clk: Signal,
    ) -> None:
        super().__init__(parent, name)
        self.bus = bus
        self.clk = clk
        self._owner: int | None = None
        self._rotation = 0
        self._was_busy = False
        self.grant_changes = 0
        self.thread(self._arbitrate, "arbitrate")

    def _requesting(self, index: int) -> bool:
        value = self.bus.req_n[index].read()
        return value.is_fully_defined and value.to_int() == 0

    def _arbitrate(self):
        while True:
            yield self.clk.posedge
            n_masters = self.bus.n_masters
            busy = not self.bus.idle
            if busy:
                if not self._was_busy and self._owner is not None:
                    # A transaction just started: next arbitration favours
                    # the master after the current owner (fair rotation).
                    self._rotation = (self._owner + 1) % n_masters
            else:
                chosen: int | None = None
                for step in range(n_masters):
                    candidate = (self._rotation + step) % n_masters
                    if self._requesting(candidate):
                        chosen = candidate
                        break
                if chosen != self._owner:
                    self.grant_changes += 1
                    self._owner = chosen
                for index in range(n_masters):
                    self.bus.gnt_n[index].write(0 if index == chosen else 1)
            self._was_busy = busy
