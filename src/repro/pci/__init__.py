"""Pin-level simplified PCI bus substrate."""

from .arbiter import PciCentralArbiter
from .config_space import (
    CMD_MEMORY_ENABLE,
    PciConfigSpace,
    REG_BAR0,
    REG_COMMAND_STATUS,
    REG_ID,
)
from .enumeration import FoundDevice, config_read, config_write, enumerate_bus
from .constants import (
    AD_WIDTH,
    CBE_WIDTH,
    CMD_CONFIG_READ,
    CMD_CONFIG_WRITE,
    CMD_IO_READ,
    CMD_IO_WRITE,
    CMD_MEM_READ,
    CMD_MEM_READ_LINE,
    CMD_MEM_READ_MULTIPLE,
    CMD_MEM_WRITE,
    CMD_MEM_WRITE_INVALIDATE,
    COMMAND_NAMES,
    DEVSEL_TIMEOUT,
    MEMORY_COMMANDS,
    READ_COMMANDS,
    STATUS_MASTER_ABORT,
    STATUS_OK,
    STATUS_PENDING,
    STATUS_TARGET_ABORT,
    WRITE_COMMANDS,
)
from .master import PciMaster
from .monitor import PciMonitor
from .parity import parity_of, parity_of_vectors
from .signals import PciAgentPins, PciBus, is_asserted, is_deasserted
from .target import PciTarget
from .transaction import PciOperation, PciTransaction

__all__ = [
    "AD_WIDTH",
    "CBE_WIDTH",
    "CMD_MEMORY_ENABLE",
    "FoundDevice",
    "PciConfigSpace",
    "REG_BAR0",
    "REG_COMMAND_STATUS",
    "REG_ID",
    "config_read",
    "config_write",
    "enumerate_bus",
    "CMD_CONFIG_READ",
    "CMD_CONFIG_WRITE",
    "CMD_IO_READ",
    "CMD_IO_WRITE",
    "CMD_MEM_READ",
    "CMD_MEM_READ_LINE",
    "CMD_MEM_READ_MULTIPLE",
    "CMD_MEM_WRITE",
    "CMD_MEM_WRITE_INVALIDATE",
    "COMMAND_NAMES",
    "DEVSEL_TIMEOUT",
    "MEMORY_COMMANDS",
    "PciAgentPins",
    "PciBus",
    "PciCentralArbiter",
    "PciMaster",
    "PciMonitor",
    "PciOperation",
    "PciTarget",
    "PciTransaction",
    "READ_COMMANDS",
    "STATUS_MASTER_ABORT",
    "STATUS_OK",
    "STATUS_PENDING",
    "STATUS_TARGET_ABORT",
    "WRITE_COMMANDS",
    "parity_of",
    "parity_of_vectors",
    "is_asserted",
    "is_deasserted",
]
