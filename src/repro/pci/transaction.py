"""PCI operation requests and observed bus transactions.

:class:`PciOperation` is what an initiator *asks for* (the unit queued at
a master); :class:`PciTransaction` is what a bus monitor *observes* on
the wires. Consistency checking compares streams of the latter.
"""

from __future__ import annotations

import typing

from ..errors import ProtocolError
from .constants import (
    CMD_MEM_READ,
    CMD_MEM_WRITE,
    COMMAND_NAMES,
    READ_COMMANDS,
    STATUS_PENDING,
    WRITE_COMMANDS,
)


class PciOperation:
    """One requested bus operation (possibly a burst).

    :param command: a PCI command code (``CMD_*``).
    :param address: 32-bit, word-aligned start byte address.
    :param data: words to write (write commands only).
    :param count: words to read (read commands only).
    :param byte_enables: active-high 4-bit lane mask applied to every
        data phase (hardware drives the inverted C/BE# lines).
    """

    def __init__(
        self,
        command: int,
        address: int,
        data: typing.Sequence[int] | None = None,
        count: int = 1,
        byte_enables: int = 0xF,
    ) -> None:
        if command not in COMMAND_NAMES:
            raise ProtocolError(f"unknown PCI command {command:#x}")
        if address % 4 or not 0 <= address < 2**32:
            raise ProtocolError(f"bad PCI address {address:#x}")
        if not 0 <= byte_enables <= 0xF:
            raise ProtocolError(f"bad byte enables {byte_enables:#x}")
        self.command = command
        self.address = address
        self.byte_enables = byte_enables
        if command in WRITE_COMMANDS:
            if not data:
                raise ProtocolError("write operation needs data words")
            self.data: list[int] = [self._check_word(w) for w in data]
            self.count = len(self.data)
        elif command in READ_COMMANDS:
            if data is not None:
                raise ProtocolError("read operation must not carry data")
            if count <= 0:
                raise ProtocolError(f"read count must be positive, got {count}")
            self.data = []
            self.count = count
        else:
            self.data = list(data or [])
            self.count = count
        # Result fields, filled in by the master.
        self.status = STATUS_PENDING
        self.retries = 0
        #: Read-data PAR mismatch observed (PERR#-style detection). Only
        #: populated when the master runs with ``check_parity`` enabled;
        #: the status may still be ``ok`` — corrupted data was accepted.
        self.parity_error = False
        self.enqueue_time: int | None = None
        self.start_time: int | None = None
        #: Time the arbiter first granted the bus for this operation.
        self.grant_time: int | None = None
        self.complete_time: int | None = None
        #: Correlation id inherited from the issuing CommandType.
        self.corr_id: str | None = None
        #: Stable id for transaction.begin/end probe pairing.
        self.txn_id: int | None = None

    @staticmethod
    def _check_word(word: int) -> int:
        if not 0 <= word < 2**32:
            raise ProtocolError(f"data word {word:#x} does not fit in 32 bits")
        return word

    @classmethod
    def read(cls, address: int, count: int = 1, byte_enables: int = 0xF) -> "PciOperation":
        return cls(CMD_MEM_READ, address, count=count, byte_enables=byte_enables)

    @classmethod
    def write(
        cls, address: int, data: "int | typing.Sequence[int]", byte_enables: int = 0xF
    ) -> "PciOperation":
        words = [data] if isinstance(data, int) else list(data)
        return cls(CMD_MEM_WRITE, address, data=words, byte_enables=byte_enables)

    @property
    def is_read(self) -> bool:
        return self.command in READ_COMMANDS

    @property
    def is_write(self) -> bool:
        return self.command in WRITE_COMMANDS

    @property
    def command_name(self) -> str:
        return COMMAND_NAMES[self.command]

    @property
    def latency(self) -> int | None:
        """Enqueue-to-completion time in fs (None while pending)."""
        if self.complete_time is None or self.enqueue_time is None:
            return None
        return self.complete_time - self.enqueue_time

    def __repr__(self) -> str:
        return (
            f"PciOperation({self.command_name} @{self.address:#010x} "
            f"x{self.count} [{self.status}])"
        )


class PciTransaction:
    """A transaction reconstructed from the wires by a bus monitor."""

    def __init__(
        self,
        command: int,
        address: int,
        start_time: int,
    ) -> None:
        self.command = command
        self.address = address
        self.start_time = start_time
        self.end_time: int | None = None
        self.data: list[int] = []
        self.byte_enables: list[int] = []
        self.terminated_by: str = "completion"
        self.parity_errors = 0
        #: Stable id for transaction.begin/end probe pairing.
        self.txn_id: int | None = None
        #: Correlation id adopted from the matching master operation
        #: (monitors cannot see ids through the wires; the span layer
        #: back-fills this by time/address containment).
        self.corr_id: str | None = None
        #: First cycle DEVSEL# was observed asserted.
        self.devsel_time: int | None = None
        #: First data-transfer cycle (IRDY# and TRDY# both asserted).
        self.first_data_time: int | None = None

    @property
    def command_name(self) -> str:
        return COMMAND_NAMES.get(self.command, f"cmd_{self.command:#x}")

    @property
    def word_count(self) -> int:
        return len(self.data)

    @property
    def duration(self) -> int | None:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def signature(self) -> tuple:
        """Order-stable observable content, used for trace comparison."""
        return (self.command, self.address, tuple(self.data), tuple(self.byte_enables))

    def __repr__(self) -> str:
        return (
            f"PciTransaction({self.command_name} @{self.address:#010x} "
            f"{self.word_count} words, {self.terminated_by})"
        )
