"""PCI configuration space (type-0 header, simplified).

Gives targets the discoverable/relocatable behaviour real PCI devices
have: a vendor/device identity, a command register with a memory-space
enable bit, and a size-encoded BAR0 that system software can probe
(write all-ones, read back the size mask) and program with a base
address. :func:`repro.pci.enumeration.enumerate_bus` is the matching
software side.

Register map (byte offsets, 32-bit registers):

====  ==========================================
0x00  device_id[31:16] | vendor_id[15:0]
0x04  status[31:16]    | command[15:0]
0x08  class_code[31:8] | revision[7:0]
0x10  BAR0 (memory, 32-bit, size-encoded)
====  ==========================================
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..tlm.interfaces import apply_byte_enables

#: Command-register bit: respond to memory-space accesses.
CMD_MEMORY_ENABLE = 0x0002

#: Offsets.
REG_ID = 0x00
REG_COMMAND_STATUS = 0x04
REG_CLASS_REV = 0x08
REG_BAR0 = 0x10

#: Value an empty slot's read returns (bus pull-ups / master abort).
EMPTY_SLOT_ID = 0xFFFFFFFF


class PciConfigSpace:
    """One function's configuration registers.

    :param vendor_id / device_id: identity (16 bits each).
    :param class_code: 24-bit class code.
    :param revision: 8-bit revision id.
    :param bar0_size: BAR0 window size in bytes; must be a power of two
        >= 16 (the PCI minimum for memory BARs).
    :param bar0_base: initial base address (0 = not yet programmed).
    """

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        bar0_size: int,
        class_code: int = 0x058000,  # memory controller, by default
        revision: int = 0x01,
        bar0_base: int = 0,
    ) -> None:
        if not 0 <= vendor_id <= 0xFFFF or not 0 <= device_id <= 0xFFFF:
            raise ProtocolError("vendor/device ids are 16-bit")
        if bar0_size < 16 or bar0_size & (bar0_size - 1):
            raise ProtocolError(
                f"BAR0 size must be a power of two >= 16, got {bar0_size}"
            )
        if bar0_base % bar0_size:
            raise ProtocolError(
                f"BAR0 base {bar0_base:#x} not aligned to size {bar0_size:#x}"
            )
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.class_code = class_code & 0xFFFFFF
        self.revision = revision & 0xFF
        self.bar0_size = bar0_size
        self.bar0_base = bar0_base
        self.command = 0
        self.status = 0x0200  # DEVSEL timing: medium
        self._bar0_probing = False
        self.config_reads = 0
        self.config_writes = 0

    # -- decode helpers ------------------------------------------------------

    @property
    def memory_enabled(self) -> bool:
        return bool(self.command & CMD_MEMORY_ENABLE)

    def decodes_memory(self, address: int) -> bool:
        """Memory decode: enabled and inside the programmed BAR0 window."""
        if not self.memory_enabled:
            return False
        return self.bar0_base <= address < self.bar0_base + self.bar0_size

    # -- register access -----------------------------------------------------

    def config_read(self, offset: int) -> int:
        self.config_reads += 1
        register = offset & 0xFC
        if register == REG_ID:
            return (self.device_id << 16) | self.vendor_id
        if register == REG_COMMAND_STATUS:
            return (self.status << 16) | self.command
        if register == REG_CLASS_REV:
            return (self.class_code << 8) | self.revision
        if register == REG_BAR0:
            if self._bar0_probing:
                # Size probe: ones in the size-mask bits, zeros below.
                return (~(self.bar0_size - 1)) & 0xFFFFFFFF
            return self.bar0_base & 0xFFFFFFFF
        # Unimplemented registers read as zero (per common practice).
        return 0

    def config_write(self, offset: int, data: int, byte_enables: int = 0xF) -> None:
        self.config_writes += 1
        register = offset & 0xFC
        if register == REG_COMMAND_STATUS:
            merged = apply_byte_enables(self.command, data, byte_enables & 0x3)
            self.command = merged & 0xFFFF
        elif register == REG_BAR0:
            merged = apply_byte_enables(
                self.bar0_base if not self._bar0_probing else 0xFFFFFFFF,
                data,
                byte_enables,
            )
            if merged == 0xFFFFFFFF:
                # Size-probe handshake: next read returns the size mask.
                self._bar0_probing = True
            else:
                self._bar0_probing = False
                self.bar0_base = merged & ~(self.bar0_size - 1) & 0xFFFFFFF0
        # Identity and class registers are read-only: writes ignored.
