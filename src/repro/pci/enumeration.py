"""PCI bus enumeration — the software side of configuration space.

Implements what platform firmware does at boot: probe each slot's
IDSEL, read the identity, size each BAR by the all-ones handshake,
assign base addresses from an allocator, and enable memory decoding.
Runs as a generator on a :class:`~repro.pci.master.PciMaster`.
"""

from __future__ import annotations


from ..errors import ProtocolError
from .config_space import CMD_MEMORY_ENABLE, REG_BAR0, REG_COMMAND_STATUS, REG_ID
from .constants import CMD_CONFIG_READ, CMD_CONFIG_WRITE, STATUS_OK
from .master import PciMaster
from .transaction import PciOperation


class FoundDevice:
    """One enumerated function."""

    def __init__(
        self,
        slot: int,
        vendor_id: int,
        device_id: int,
        bar0_size: int,
        bar0_base: int,
    ) -> None:
        self.slot = slot
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.bar0_size = bar0_size
        self.bar0_base = bar0_base

    def __repr__(self) -> str:
        return (
            f"FoundDevice(slot {self.slot}: {self.vendor_id:04x}:"
            f"{self.device_id:04x}, BAR0 {self.bar0_size:#x} bytes "
            f"@ {self.bar0_base:#010x})"
        )


def _config_address(slot: int, register: int) -> int:
    """Type-0 configuration address: IDSEL on AD[16+slot], register in
    AD[7:2]."""
    if not 0 <= slot <= 15:
        raise ProtocolError(f"slot must be 0..15, got {slot}")
    return (1 << (16 + slot)) | (register & 0xFC)


def config_read(master: PciMaster, slot: int, register: int):
    """Generator: one configuration read; returns (ok, value)."""
    operation = PciOperation(
        CMD_CONFIG_READ, _config_address(slot, register), count=1
    )
    yield from master.transact(operation)
    if operation.status != STATUS_OK:
        return False, 0
    return True, operation.data[0]


def config_write(master: PciMaster, slot: int, register: int, value: int):
    """Generator: one configuration write; returns ok."""
    operation = PciOperation(
        CMD_CONFIG_WRITE, _config_address(slot, register), data=[value]
    )
    yield from master.transact(operation)
    return operation.status == STATUS_OK


def enumerate_bus(
    master: PciMaster,
    n_slots: int = 4,
    allocation_base: int = 0x4000_0000,
):
    """Generator: probe *n_slots*, program BARs, enable memory decode.

    :returns: list of :class:`FoundDevice` (empty slots master-abort and
        are skipped, exactly as on real hardware).
    """
    found: list[FoundDevice] = []
    next_base = allocation_base
    for slot in range(n_slots):
        ok, identity = yield from config_read(master, slot, REG_ID)
        if not ok or identity == 0xFFFFFFFF:
            continue  # empty slot: master abort / pull-ups
        vendor_id = identity & 0xFFFF
        device_id = (identity >> 16) & 0xFFFF

        # BAR sizing: write all-ones, read back the size mask.
        yield from config_write(master, slot, REG_BAR0, 0xFFFFFFFF)
        ok, mask = yield from config_read(master, slot, REG_BAR0)
        if not ok:
            continue
        size = (~mask + 1) & 0xFFFFFFFF
        if size == 0:
            raise ProtocolError(
                f"slot {slot}: BAR0 size probe returned mask {mask:#x}"
            )

        # Allocate an aligned window and program the BAR.
        base = (next_base + size - 1) & ~(size - 1)
        next_base = base + size
        yield from config_write(master, slot, REG_BAR0, base)

        # Enable memory decoding.
        ok, command_status = yield from config_read(
            master, slot, REG_COMMAND_STATUS
        )
        command = (command_status & 0xFFFF) | CMD_MEMORY_ENABLE
        yield from config_write(master, slot, REG_COMMAND_STATUS, command)

        found.append(FoundDevice(slot, vendor_id, device_id, size, base))
    return found
