"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause
while still being able to distinguish kernel, modeling, protocol and
synthesis problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A violation of the discrete-event kernel's rules.

    Examples: running a finished simulator, waiting on a negative delay,
    or a process yielding an object that is not a wait specification.
    """


class ElaborationError(ReproError):
    """The design hierarchy could not be elaborated.

    Raised for unbound ports, duplicate instance names, processes added
    after elaboration, and similar structural mistakes.
    """


class LogicValueError(ReproError, ValueError):
    """An invalid logic literal or an undefined value conversion.

    Converting a vector containing ``X`` or ``Z`` bits to an integer
    raises this error rather than silently producing a number.
    """


class WidthError(ReproError, ValueError):
    """A bit-vector width mismatch in an operation or assignment."""


class MultipleDriverError(ReproError):
    """An unresolved signal was written by more than one process."""


class ProtocolError(ReproError):
    """A bus protocol rule was violated (detected by a monitor/checker)."""


class ArbitrationError(ReproError):
    """A scheduling algorithm misbehaved (e.g. granted a non-requester)."""


class GuardTimeoutError(ReproError):
    """A guarded method call did not complete within the allotted time."""


class CheckpointError(ReproError):
    """A kernel checkpoint could not be taken, restored or verified.

    Raised for non-quiescent snapshots (pending guarded calls), restores
    onto an incompatible hierarchy, and replay divergence — a rebuilt
    platform that does not reproduce the checkpoint it was rolled back to.
    """


class JournalError(ReproError):
    """A campaign journal could not be created, read or resumed.

    Raised for mid-file corruption (a line whose checksum does not match
    anywhere but the torn tail), a missing or unreadable header, and a
    spec-hash mismatch on resume — a journal written for a different
    campaign must be refused, never silently recomputed.
    """


class SynthesisError(ReproError):
    """The communication synthesis tool rejected or mis-lowered a design."""


class ConsistencyError(ReproError):
    """Pre- and post-synthesis observable traces disagree."""


class RefinementError(ReproError):
    """A communication refinement step could not be applied."""


class CoverageError(ReproError):
    """A functional-coverage goal definition is invalid."""
